#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build --release =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== attest pipeline conformance (segcache / imagecache / golden vectors / session model) =="
cargo test -q --test segcache_coherence --test imagecache_coherence --test golden_vectors --test session_state_machine

echo "== chaos soak (short deterministic gate) =="
cargo run --release -q -p proverguard-bench --bin fleet_soak -- --ci

echo "== telemetry trace report (phase table vs cycle model) =="
cargo run --release -q -p proverguard-bench --bin trace_report -- --ci

echo "== gateway bench (socket-free loopback gate) =="
cargo run --release -q -p proverguard-bench --bin gateway_bench -- --ci

echo "== segcache bench (incremental attestation gate, emits BENCH_segcache.json) =="
cargo run --release -q -p proverguard-bench --bin segcache_bench -- --ci

echo "== campaign soak (staged OTA rollout gate, emits BENCH_campaign.json) =="
cargo run --release -q -p proverguard-bench --bin campaign_soak -- --ci

echo "== toctou bench (epoch-log transient-malware gate, emits BENCH_toctou.json) =="
cargo run --release -q -p proverguard-bench --bin toctou_bench -- --ci

echo "== session bench (attested-session amortization + adversary gauntlet, emits BENCH_session.json) =="
cargo run --release -q -p proverguard-bench --bin session_bench -- --ci

echo "== gateway scale (event-driven reactor concurrency gate, emits BENCH_gateway_scale.json) =="
cargo run --release -q -p proverguard-bench --bin gateway_scale -- --ci

echo "== fleet verify bench (shared digest cache gate, emits BENCH_fleet_verify.json) =="
cargo run --release -q -p proverguard-bench --bin fleet_verify_bench -- --ci

echo "CI green."
