#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test run.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build --release =="
cargo build --release

echo "== tier-1: test =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== chaos soak (short deterministic gate) =="
cargo run --release -q -p proverguard-bench --bin fleet_soak -- --ci

echo "== telemetry trace report (phase table vs cycle model) =="
cargo run --release -q -p proverguard-bench --bin trace_report -- --ci

echo "== gateway bench (socket-free loopback gate) =="
cargo run --release -q -p proverguard-bench --bin gateway_bench -- --ci

echo "CI green."
