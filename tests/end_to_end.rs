//! Cross-crate integration: the full attestation protocol across every
//! configuration axis the paper discusses.

use proverguard_attest::auth::AuthMethod;
use proverguard_attest::clock::ClockKind;
use proverguard_attest::error::RejectReason;
use proverguard_attest::freshness::FreshnessKind;
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;
use proverguard_crypto::mac::MacAlgorithm;
use proverguard_mcu::map;

const KEY: [u8; 16] = [0x42; 16];

fn pair(config: &ProverConfig) -> (Prover, Verifier) {
    let prover = Prover::provision(config.clone(), &KEY, b"integration image").expect("provision");
    let verifier = Verifier::new(config, &KEY).expect("verifier");
    (prover, verifier)
}

#[test]
fn every_auth_method_completes_a_round() {
    for auth in [
        AuthMethod::None,
        AuthMethod::Mac(MacAlgorithm::HmacSha1),
        AuthMethod::Mac(MacAlgorithm::Aes128Cbc),
        AuthMethod::Mac(MacAlgorithm::Speck64Cbc),
        AuthMethod::Ecdsa,
    ] {
        let config = ProverConfig {
            auth,
            ..ProverConfig::recommended()
        };
        let (mut prover, mut verifier) = pair(&config);
        let req = verifier.make_request().expect("request");
        let resp = prover
            .handle_request(&req)
            .unwrap_or_else(|e| panic!("{auth}: {e}"));
        assert!(
            verifier.check_response(&req, &resp, prover.expected_memory()),
            "{auth}"
        );
    }
}

#[test]
fn every_freshness_policy_completes_rounds() {
    for freshness in [
        FreshnessKind::None,
        FreshnessKind::NonceHistory,
        FreshnessKind::Counter,
        FreshnessKind::Timestamp,
    ] {
        let config = ProverConfig {
            freshness,
            clock: if freshness == FreshnessKind::Timestamp {
                ClockKind::Hw64
            } else {
                ClockKind::None
            },
            ..ProverConfig::recommended()
        };
        let (mut prover, mut verifier) = pair(&config);
        for round in 0..3 {
            prover.advance_time_ms(100).expect("advance");
            verifier.advance_time_ms(100);
            let req = verifier.make_request().expect("request");
            prover
                .handle_request(&req)
                .unwrap_or_else(|e| panic!("{freshness} round {round}: {e}"));
            // Wall time spent computing the response elapses for both
            // parties (cf. `World::deliver`).
            verifier.advance_time_ms(prover.last_cost().total_ms().round() as u64);
        }
        assert_eq!(prover.stats().accepted, 3, "{freshness}");
    }
}

#[test]
fn every_clock_kind_supports_timestamps() {
    for clock in [ClockKind::Hw64, ClockKind::Hw32Div, ClockKind::Software] {
        let config = ProverConfig {
            freshness: FreshnessKind::Timestamp,
            clock,
            ..ProverConfig::recommended()
        };
        let (mut prover, mut verifier) = pair(&config);
        prover.advance_time_ms(2000).expect("advance");
        verifier.advance_time_ms(2000);
        let req = verifier.make_request().expect("request");
        prover
            .handle_request(&req)
            .unwrap_or_else(|e| panic!("{clock:?}: {e}"));
    }
}

#[test]
fn response_binds_the_challenge() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let req = verifier.make_request().expect("request");
    let resp = prover.handle_request(&req).expect("accepted");
    // The same response presented for a different request must fail.
    let other = verifier.make_request().expect("request");
    assert!(!verifier.check_response(&other, &resp, prover.expected_memory()));
}

#[test]
fn response_detects_post_hoc_memory_change() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let req = verifier.make_request().expect("request");
    let resp = prover.handle_request(&req).expect("accepted");
    let golden = prover.expected_memory().to_vec();
    assert!(verifier.check_response(&req, &resp, &golden));

    // Malware scribbles over RAM afterwards; the *next* round catches it.
    prover
        .mcu_mut()
        .bus_write(map::APP_RAM.start, b"rootkit", map::APP_CODE)
        .expect("open app ram");
    let req2 = verifier.make_request().expect("request");
    let resp2 = prover.handle_request(&req2).expect("accepted");
    // Expected memory (stale golden from before infection, with the new
    // counter folded in) no longer matches.
    let mut stale = golden;
    proverguard_attest::freshness::patch_expected_image(&mut stale, &req2.freshness);
    assert!(!verifier.check_response(&req2, &resp2, &stale));
}

#[test]
fn serialized_requests_survive_the_wire() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, mut verifier) = pair(&config);
    prover.advance_time_ms(1000).expect("advance");
    verifier.advance_time_ms(1000);
    let req = verifier.make_request().expect("request");
    // Round-trip through bytes, as the channel does.
    let wire = req.to_bytes();
    let parsed = proverguard_attest::message::AttestRequest::from_bytes(&wire).expect("parse");
    assert_eq!(parsed, req);
    prover.handle_request(&parsed).expect("accepted");
}

#[test]
fn open_and_protected_provers_differ_exactly_in_tamper_resistance() {
    for protection in [Protection::Open, Protection::EaMac] {
        let config = ProverConfig {
            protection,
            ..ProverConfig::recommended()
        };
        let (mut prover, mut verifier) = pair(&config);
        // Protocol works identically…
        let req = verifier.make_request().expect("request");
        prover.handle_request(&req).expect("accepted");
        // …but only the EA-MAC device resists tampering.
        let tamper =
            prover
                .mcu_mut()
                .bus_write(map::COUNTER_R.start, &0u64.to_le_bytes(), map::APP_CODE);
        match protection {
            Protection::Open => assert!(tamper.is_ok()),
            Protection::EaMac => assert!(tamper.is_err()),
        }
    }
}

#[test]
fn ecdsa_auth_rejects_bad_signatures_and_accepts_good_ones() {
    let config = ProverConfig {
        auth: AuthMethod::Ecdsa,
        ..ProverConfig::recommended()
    };
    let (mut prover, mut verifier) = pair(&config);
    let good = verifier.make_request().expect("request");
    prover.handle_request(&good).expect("accepted");

    let mut bad = verifier.make_request().expect("request");
    bad.auth[5] ^= 0xff;
    let err = prover.handle_request(&bad).expect_err("rejected");
    assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
    // The rejection still cost the full ECDSA verification — the paradox.
    assert!(prover.last_cost().total_ms() > 100.0);
}

#[test]
fn nonce_history_grows_while_counter_stays_flat() {
    let counter_cfg = ProverConfig::recommended();
    let nonce_cfg = ProverConfig {
        freshness: FreshnessKind::NonceHistory,
        ..ProverConfig::recommended()
    };
    let (mut counter_prover, mut counter_verifier) = pair(&counter_cfg);
    let (mut nonce_prover, mut nonce_verifier) = pair(&nonce_cfg);
    for _ in 0..10 {
        let req = counter_verifier.make_request().expect("request");
        counter_prover.handle_request(&req).expect("accepted");
        let req = nonce_verifier.make_request().expect("request");
        nonce_prover.handle_request(&req).expect("accepted");
    }
    assert_eq!(counter_prover.policy().storage_bytes(), 8);
    assert_eq!(nonce_prover.policy().storage_bytes(), 160);
}
