//! Integration: the admission controller sheds floods *before* the
//! pipeline spends anything expensive.
//!
//! The scenario the tentpole exists for: an attacker floods the gated
//! command port with forged `UpdateFirmware` requests. Flash programming
//! is the most expensive thing a prover can be asked to do, and even the
//! auth check that protects it costs a primitive block. With a small
//! admission bucket the flood must be shed with `Throttled` after a few
//! dozen cycles each — the flash is never touched and the bucket bounds
//! total spend, whatever the flood's size.

use proverguard_attest::admission::AdmissionPolicy;
use proverguard_attest::error::{AttestError, RejectReason};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::services::Command;
use proverguard_attest::services::CommandRequest;
use proverguard_attest::verifier::Verifier;
use proverguard_crypto::sha1::Sha1;
use proverguard_mcu::energy::{Battery, DEFAULT_NJ_PER_CYCLE};

const KEY: [u8; 16] = [0x42; 16];
const IMAGE: &[u8] = b"genuine app image v1";

/// A bucket big enough for ~90 auth checks, then empty; refill is a
/// glacial 0.1 % duty cycle so the flood cannot outwait it.
fn tiny_bucket() -> AdmissionPolicy {
    AdmissionPolicy {
        burst_cycles: 60_000,
        duty_per_mille: 1,
        reserve_cycles: 20_000,
        degraded_battery_fraction: 0.2,
    }
}

fn forged_update(counter: u64) -> CommandRequest {
    CommandRequest {
        counter,
        command: Command::UpdateFirmware {
            image: vec![0xEE; 4096],
        },
        auth: vec![0u8; 8], // garbage — the attacker has no key
    }
}

#[test]
fn forged_update_flood_is_throttled_before_flash_cost() {
    let config = ProverConfig::recommended();
    let mut defended = Prover::provision(config.clone(), &KEY, IMAGE).unwrap();
    defended.set_admission_policy(Some(tiny_bucket()));
    let mut undefended = Prover::provision(config, &KEY, IMAGE).unwrap();

    let flash_before = defended.mcu().physical_memory().flash().to_vec();
    let defended_start = defended.mcu().clock().cycles();
    let undefended_start = undefended.mcu().clock().cycles();

    for i in 1..=1000u64 {
        let bogus = forged_update(i);
        let defended_result = defended.handle_command(&bogus);
        assert!(defended_result.is_err(), "forgery {i} must not execute");
        assert!(undefended.handle_command(&bogus).is_err());
        // Every defended rejection is pre-MAC-gate: throttled once the
        // bucket empties, BadAuth while it still admits.
        match defended_result.unwrap_err() {
            AttestError::Rejected(RejectReason::Throttled | RejectReason::BadAuth) => {}
            other => panic!("unexpected rejection for forgery {i}: {other}"),
        }
    }

    // The bucket shed the overwhelming majority of the flood...
    let stats = defended.stats();
    assert!(
        stats.rejected_throttled >= 800,
        "only {} of 1000 forgeries were throttled",
        stats.rejected_throttled
    );
    // ...so the defended prover spent far fewer cycles than one paying
    // the auth check for every forgery.
    let defended_spend = defended.mcu().clock().cycles() - defended_start;
    let undefended_spend = undefended.mcu().clock().cycles() - undefended_start;
    assert!(
        defended_spend * 2 < undefended_spend,
        "throttling saved nothing: {defended_spend} vs {undefended_spend} cycles"
    );
    // And the flash — the cost the gate protects — was never touched.
    assert_eq!(defended.mcu().physical_memory().flash(), &flash_before[..]);
    // The admission budget bounds total spend: bucket plus per-request
    // shed overhead, nowhere near the flood's nominal auth cost.
    assert!(
        defended_spend < tiny_bucket().burst_cycles + 1000 * 100,
        "spend {defended_spend} exceeds the admission budget's bound"
    );
}

#[test]
fn genuine_update_still_lands_after_refill() {
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, IMAGE).unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();
    prover.set_admission_policy(Some(tiny_bucket()));

    // Empty the bucket with a short forged flood.
    for i in 1..=200u64 {
        let _ = prover.handle_command(&forged_update(i));
    }
    // A genuine command right now is shed like everything else...
    let new_image = b"genuine app image v2".to_vec();
    let request = verifier.make_command(Command::UpdateFirmware {
        image: new_image.clone(),
    });
    assert!(matches!(
        prover.handle_command(&request),
        Err(AttestError::Rejected(RejectReason::Throttled))
    ));
    // ...but after idle wall time the 0.1 % duty cycle has refilled the
    // reserve, and the same verifier retries successfully.
    prover.advance_time_ms(2_000).unwrap();
    let retry = verifier.make_command(Command::UpdateFirmware {
        image: new_image.clone(),
    });
    let receipt = prover
        .handle_command(&retry)
        .expect("refilled bucket admits");
    let mut expected_flash = new_image.clone();
    expected_flash.resize(prover.mcu().physical_memory().flash().len(), 0);
    assert!(verifier.check_command_receipt(
        &receipt,
        &retry.command,
        &Sha1::digest(&expected_flash)
    ));
    assert_eq!(
        &prover.mcu().physical_memory().flash()[..new_image.len()],
        &new_image[..]
    );
}

#[test]
fn degraded_mode_admits_only_fresh_counters() {
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, IMAGE).unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();
    prover.set_admission_policy(Some(AdmissionPolicy::recommended()));

    // Put the battery at ~10 %: below the 20 % degraded threshold.
    prover
        .mcu_mut()
        .set_battery(Battery::new(0.001, DEFAULT_NJ_PER_CYCLE));
    prover.mcu_mut().advance_active(720_000);
    assert!(prover.mcu().battery().remaining_fraction() < 0.2);

    // A genuine attestation with a fresh counter is admitted and runs.
    let fresh = verifier.make_request().unwrap();
    let response = prover.handle_request(&fresh).unwrap();
    assert!(verifier.check_response(&fresh, &response, prover.expected_memory()));

    // Replaying it is shed by the degraded gate — before the auth check,
    // so cheaper than even the normal StaleCounter rejection.
    assert!(matches!(
        prover.handle_request(&fresh),
        Err(AttestError::Rejected(RejectReason::DegradedMode))
    ));
    assert_eq!(prover.stats().rejected_degraded, 1);

    // A forged "fresh" counter passes the peek but still dies at auth:
    // degraded mode narrows the pipe, it does not replace the MAC check.
    // (Idle first so the bucket refills past the reserve the genuine
    // attestation consumed — otherwise the gate says Throttled instead.)
    prover.advance_time_ms(5_000).unwrap();
    let mut forged = verifier.make_request().unwrap();
    forged.auth = vec![0u8; forged.auth.len()];
    assert!(matches!(
        prover.handle_request(&forged),
        Err(AttestError::Rejected(RejectReason::BadAuth))
    ));
}
