//! Property tests for the wire format: encoding round-trips, and the
//! parsers never panic — on arbitrary bytes, on truncated encodings, on
//! bit-flipped encodings. The prover's cheap-reject guarantee rests on
//! `from_bytes` being total, so this is the contract that backs
//! `Prover::handle_wire_request`.

use proptest::prelude::*;
use proverguard_attest::message::{
    AttestRequest, AttestResponse, FreshnessField, CHALLENGE_SIZE, NONCE_SIZE,
};

/// Builds a request from raw generated material, covering every
/// freshness kind.
fn request_from(
    kind: u8,
    word: u64,
    nonce: [u8; NONCE_SIZE],
    challenge: [u8; CHALLENGE_SIZE],
    auth: Vec<u8>,
) -> AttestRequest {
    let freshness = match kind % 4 {
        0 => FreshnessField::None,
        1 => FreshnessField::Nonce(nonce),
        2 => FreshnessField::Counter(word),
        _ => FreshnessField::Timestamp(word),
    };
    AttestRequest {
        freshness,
        challenge,
        auth,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(
        kind in 0u8..4,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let request = request_from(kind, word, nonce, challenge, auth);
        let parsed = AttestRequest::from_bytes(&request.to_bytes());
        prop_assert_eq!(parsed.ok(), Some(request));
    }

    #[test]
    fn response_roundtrips(report in proptest::collection::vec(any::<u8>(), 0..64)) {
        let response = AttestResponse { report };
        let parsed = AttestResponse::from_bytes(&response.to_bytes());
        prop_assert_eq!(parsed.ok(), Some(response));
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // A parse error is fine; a panic is the bug. Both parsers must be
        // total functions of the input bytes.
        let _ = AttestRequest::from_bytes(&bytes);
        let _ = AttestResponse::from_bytes(&bytes);
    }

    #[test]
    fn truncated_requests_error_instead_of_panicking(
        kind in 0u8..4,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
        cut_seed in any::<u16>(),
    ) {
        let encoded = request_from(kind, word, nonce, challenge, auth).to_bytes();
        let cut = cut_seed as usize % encoded.len();
        // Every strict prefix must be rejected cleanly: the encoding is
        // self-delimiting, so no prefix of a valid message is valid.
        prop_assert!(AttestRequest::from_bytes(&encoded[..cut]).is_err());
    }

    #[test]
    fn bitflipped_requests_parse_or_error_but_never_panic(
        kind in 0u8..4,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
        bit_seed in any::<u32>(),
    ) {
        let request = request_from(kind, word, nonce, challenge, auth);
        let mut encoded = request.to_bytes();
        let bit = bit_seed as usize % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        // A flip in the freshness word, challenge or auth still parses —
        // but it must parse to a *different* message, so authentication
        // will catch it downstream.
        if let Ok(parsed) = AttestRequest::from_bytes(&encoded) {
            prop_assert_ne!(parsed, request);
        }
    }

    #[test]
    fn bitflipped_responses_parse_or_error_but_never_panic(
        report in proptest::collection::vec(any::<u8>(), 1..64),
        bit_seed in any::<u32>(),
    ) {
        let response = AttestResponse { report };
        let mut encoded = response.to_bytes();
        let bit = bit_seed as usize % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        if let Ok(parsed) = AttestResponse::from_bytes(&encoded) {
            prop_assert_ne!(parsed, response);
        }
    }
}
