//! Property tests for the wire format: encoding round-trips, and the
//! parsers never panic — on arbitrary bytes, on truncated encodings, on
//! bit-flipped encodings. The prover's cheap-reject guarantee rests on
//! `from_bytes` being total, so this is the contract that backs
//! `Prover::handle_wire_request`.

use proptest::prelude::*;
use proverguard_attest::auth::RequestSigner;
use proverguard_attest::channel::{
    self, HandshakeAccept, HandshakeInit, Role, SecureChannel, SessionKeys, CHANNEL_VERSION,
    SESSION_NONCE_SIZE,
};
use proverguard_attest::gateway::GatewayMsg;
use proverguard_attest::message::{
    AttestRequest, AttestResponse, AttestScope, FreshnessField, CHALLENGE_SIZE, NONCE_SIZE,
};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::HistoryReport;
use proverguard_attest::verifier::Verifier;
use proverguard_attest::RejectReason;
use proverguard_transport::frame::{
    decode_datagram, encode_frame, FrameDecoder, DEFAULT_MAX_FRAME, FRAME_VERSION, HEADER_LEN,
    MAGIC0, MAGIC1,
};
use proverguard_transport::TransportError;

/// Builds a request from raw generated material, covering every
/// freshness kind and all three scopes (`History` carries a `since_round`
/// parameter derived from the same word pool).
fn request_from(
    kind: u8,
    word: u64,
    nonce: [u8; NONCE_SIZE],
    challenge: [u8; CHALLENGE_SIZE],
    auth: Vec<u8>,
) -> AttestRequest {
    let freshness = match kind % 4 {
        0 => FreshnessField::None,
        1 => FreshnessField::Nonce(nonce),
        2 => FreshnessField::Counter(word),
        _ => FreshnessField::Timestamp(word),
    };
    let scope = match (kind / 4) % 3 {
        0 => AttestScope::Whole,
        1 => AttestScope::Segmented,
        _ => AttestScope::History {
            since_round: word.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        },
    };
    AttestRequest {
        scope,
        freshness,
        challenge,
        auth,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(
        kind in 0u8..12,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let request = request_from(kind, word, nonce, challenge, auth);
        let parsed = AttestRequest::from_bytes(&request.to_bytes());
        prop_assert_eq!(parsed.ok(), Some(request));
    }

    #[test]
    fn response_roundtrips(report in proptest::collection::vec(any::<u8>(), 0..64)) {
        let response = AttestResponse { report };
        let parsed = AttestResponse::from_bytes(&response.to_bytes());
        prop_assert_eq!(parsed.ok(), Some(response));
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // A parse error is fine; a panic is the bug. Both parsers must be
        // total functions of the input bytes.
        let _ = AttestRequest::from_bytes(&bytes);
        let _ = AttestResponse::from_bytes(&bytes);
    }

    #[test]
    fn truncated_requests_error_instead_of_panicking(
        kind in 0u8..12,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
        cut_seed in any::<u16>(),
    ) {
        let encoded = request_from(kind, word, nonce, challenge, auth).to_bytes();
        let cut = cut_seed as usize % encoded.len();
        // Every strict prefix must be rejected cleanly: the encoding is
        // self-delimiting, so no prefix of a valid message is valid.
        prop_assert!(AttestRequest::from_bytes(&encoded[..cut]).is_err());
    }

    #[test]
    fn bitflipped_requests_parse_or_error_but_never_panic(
        kind in 0u8..12,
        word in 0u64..,
        nonce in any::<[u8; NONCE_SIZE]>(),
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..40),
        bit_seed in any::<u32>(),
    ) {
        let request = request_from(kind, word, nonce, challenge, auth);
        let mut encoded = request.to_bytes();
        let bit = bit_seed as usize % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        // A flip in the freshness word, challenge or auth still parses —
        // but it must parse to a *different* message, so authentication
        // will catch it downstream.
        if let Ok(parsed) = AttestRequest::from_bytes(&encoded) {
            prop_assert_ne!(parsed, request);
        }
    }

    #[test]
    fn bitflipped_responses_parse_or_error_but_never_panic(
        report in proptest::collection::vec(any::<u8>(), 1..64),
        bit_seed in any::<u32>(),
    ) {
        let response = AttestResponse { report };
        let mut encoded = response.to_bytes();
        let bit = bit_seed as usize % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        if let Ok(parsed) = AttestResponse::from_bytes(&encoded) {
            prop_assert_ne!(parsed, response);
        }
    }
}

/// Builds a gateway message from raw generated material, covering every
/// wire tag (including the secure-session ones).
fn gateway_msg_from(kind: u8, word: u64, body: Vec<u8>) -> GatewayMsg {
    match kind % 12 {
        0 => GatewayMsg::Hello { device_id: word },
        1 => GatewayMsg::AttReq(body),
        2 => GatewayMsg::AttResp(body),
        3 => GatewayMsg::Reject(match word % 13 {
            0 => RejectReason::BadAuth,
            1 => RejectReason::NonceReused,
            2 => RejectReason::StaleCounter,
            3 => RejectReason::TimestampNotMonotonic,
            4 => RejectReason::TimestampOutOfWindow,
            5 => RejectReason::FreshnessKindMismatch,
            6 => RejectReason::Malformed,
            7 => RejectReason::Throttled,
            8 => RejectReason::DegradedMode,
            9 => RejectReason::ScopeUnsupported,
            10 => RejectReason::SessionExpired,
            11 => RejectReason::SessionReplay,
            _ => RejectReason::SessionAuth,
        }),
        4 => GatewayMsg::Busy,
        5 => GatewayMsg::Bye {
            verified: word & 1 == 1,
        },
        6 => GatewayMsg::SessHello {
            device_id: word,
            session_id: if word & 1 == 1 {
                Some((word.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_be_bytes())
            } else {
                None
            },
        },
        7 => GatewayMsg::SessInit(body),
        8 => GatewayMsg::SessAccept(body),
        9 => GatewayMsg::SessFrame(body),
        10 => GatewayMsg::Command(body),
        _ => GatewayMsg::Receipt(body),
    }
}

// The transport frame codec and the gateway's session protocol share the
// same totality contract as the attestation parsers above: arbitrary,
// truncated or oversized bytes must come back as errors, never as panics
// — and an oversized *declared* length must be rejected from the 8-byte
// header alone, before any payload allocation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frames_roundtrip_through_stream_decoder(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        cut_seed in any::<u16>(),
    ) {
        let frame = encode_frame(&payload, DEFAULT_MAX_FRAME).unwrap();
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        // Feed in two arbitrary slices: stream reads don't respect frame
        // boundaries, so neither may the decoder.
        let cut = cut_seed as usize % (frame.len() + 1);
        decoder.extend(&frame[..cut]);
        let early = decoder.next_frame().unwrap();
        if cut < frame.len() {
            prop_assert_eq!(early, None);
            decoder.extend(&frame[cut..]);
            prop_assert_eq!(decoder.next_frame().unwrap(), Some(payload));
        } else {
            prop_assert_eq!(early, Some(payload));
        }
        prop_assert_eq!(decoder.next_frame().unwrap(), None);
        prop_assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn frames_roundtrip_as_datagrams(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let frame = encode_frame(&payload, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(decode_datagram(&frame, DEFAULT_MAX_FRAME).unwrap(), payload);
    }

    #[test]
    fn frame_decoder_never_panics_on_arbitrary_bytes(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..8,
        ),
    ) {
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        for chunk in &chunks {
            decoder.extend(chunk);
            // Errors are fine (and poison the decoder); panics are the bug.
            let _ = decoder.next_frame();
        }
        let _ = decode_datagram(chunks.concat().as_slice(), DEFAULT_MAX_FRAME);
    }

    #[test]
    fn oversize_declared_length_rejected_from_header_alone(
        excess in 1u64..u32::MAX as u64,
        max in 0usize..4096,
    ) {
        // A hostile header declaring more than `max`: the decoder must
        // refuse from the 8 header bytes, before buffering any payload.
        let declared = (max as u64 + excess).min(u32::MAX as u64);
        prop_assume!(declared > max as u64);
        let mut header = vec![MAGIC0, MAGIC1, FRAME_VERSION, 0];
        header.extend_from_slice(&(declared as u32).to_be_bytes());
        prop_assert_eq!(header.len(), HEADER_LEN);

        let mut decoder = FrameDecoder::new(max);
        decoder.extend(&header);
        prop_assert_eq!(
            decoder.next_frame(),
            Err(TransportError::TooLarge { declared, max })
        );
        // The refusal consumed only the header — nothing was allocated or
        // buffered for the declared payload, and the decoder is poisoned.
        prop_assert!(decoder.pending() <= HEADER_LEN);
        prop_assert!(decoder.next_frame().is_err());
        // Same contract on the datagram path.
        prop_assert_eq!(
            decode_datagram(&header, max),
            Err(TransportError::TooLarge { declared, max })
        );
    }

    #[test]
    fn truncated_frames_wait_and_padded_datagrams_error(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        cut_seed in any::<u16>(),
    ) {
        let frame = encode_frame(&payload, DEFAULT_MAX_FRAME).unwrap();
        let cut = cut_seed as usize % frame.len();
        // Stream: a strict prefix is an incomplete frame, not an error.
        let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME);
        decoder.extend(&frame[..cut]);
        prop_assert_eq!(decoder.next_frame().unwrap(), None);
        // Datagram: the same prefix is a truncated packet and must error.
        prop_assert!(decode_datagram(&frame[..cut], DEFAULT_MAX_FRAME).is_err());
        // And a padded datagram (trailing junk) must error too.
        let mut padded = frame.clone();
        padded.push(0xAA);
        prop_assert!(decode_datagram(&padded, DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn gateway_msgs_roundtrip(
        kind in 0u8..12,
        word in any::<u64>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let msg = gateway_msg_from(kind, word, body);
        prop_assert_eq!(GatewayMsg::decode(&msg.encode()).ok(), Some(msg));
    }

    #[test]
    fn gateway_decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = GatewayMsg::decode(&bytes);
    }
}

// ---------------------------------------------------------------------------
// History-scope rejection contracts on a live prover: unknown scope bytes
// and future `since_round` windows are shed before any digest work.
// ---------------------------------------------------------------------------

const KEY: [u8; 16] = [0x42; 16];

fn segmented_pair() -> (Prover, Verifier) {
    let config = ProverConfig::recommended_segmented();
    let prover =
        Prover::provision(config.clone(), &KEY, b"wire robustness app").expect("provision");
    let verifier = Verifier::new(&config, &KEY).expect("verifier");
    (prover, verifier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A scope byte past every known scope is `Malformed` at the parse
    /// stage — even under a valid MAC, and at zero response cycles.
    #[test]
    fn unknown_scope_bytes_reject_as_malformed_before_digest_work(
        scope_byte in 3u8..,
        word in 0u64..,
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
    ) {
        let (mut prover, verifier) = segmented_pair();
        let signer = RequestSigner::new(verifier.auth_method(), &KEY).expect("signer");
        let mut request = AttestRequest {
            scope: AttestScope::Whole,
            freshness: FreshnessField::Counter(word),
            challenge,
            auth: Vec::new(),
        };
        request.auth = signer.sign(&request.signed_bytes());
        let mut bytes = request.to_bytes();
        bytes[1] = scope_byte;
        prop_assert!(AttestRequest::from_bytes(&bytes).is_err());
        let err = prover.handle_wire_request(&bytes).unwrap_err();
        prop_assert_eq!(err.reject_reason(), Some(RejectReason::Malformed));
        prop_assert_eq!(prover.last_cost().response_cycles, 0);
        prop_assert_eq!(prover.stats().rejected_malformed, 1);
    }

    /// A `since_round` the prover has not reached yet is `BadAuth` after
    /// authentication but before freshness or digest work — so the same
    /// counter re-dials at a servable window.
    #[test]
    fn future_since_round_rejects_as_bad_auth_before_digest_work(
        future in 1u64..,
        challenge in any::<[u8; CHALLENGE_SIZE]>(),
    ) {
        // A freshly provisioned prover is at the reset round (1), so every
        // since_round >= 1 names a window that does not exist yet.
        let (mut prover, verifier) = segmented_pair();
        let signer = RequestSigner::new(verifier.auth_method(), &KEY).expect("signer");
        let mut request = AttestRequest {
            scope: AttestScope::History { since_round: future },
            freshness: FreshnessField::Counter(1),
            challenge,
            auth: Vec::new(),
        };
        request.auth = signer.sign(&request.signed_bytes());
        let err = prover.handle_request(&request).unwrap_err();
        prop_assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
        prop_assert_eq!(prover.last_cost().response_cycles, 0);
        // No freshness state burned: the same counter re-dials fine.
        request.scope = AttestScope::History { since_round: 0 };
        request.auth = signer.sign(&request.signed_bytes());
        prop_assert!(prover.handle_request(&request).is_ok());
    }
}

// ---------------------------------------------------------------------------
// The History report codec: strict canonical decoding, total on arbitrary
// bytes.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn history_report_roundtrips_with_trailing_tag(
        round in 1u64..,
        modified in proptest::collection::vec(any::<bool>(), 0..200),
        tag in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let report = HistoryReport { round, modified };
        let mut bytes = report.encode();
        prop_assert_eq!(bytes.len(), report.encoded_len());
        bytes.extend_from_slice(&tag);
        let (parsed, rest) =
            HistoryReport::decode(&bytes, report.modified.len().max(1)).expect("canonical");
        prop_assert_eq!(&parsed, &report);
        prop_assert_eq!(rest, &tag[..]);
    }

    #[test]
    fn history_report_decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = HistoryReport::decode(&bytes, 4096);
    }

    /// Non-zero padding bits in the final bitmap byte are non-canonical:
    /// two encodings of the same set must not both decode.
    #[test]
    fn history_report_nonzero_padding_rejected(
        round in 1u64..,
        len in 1usize..200,
    ) {
        prop_assume!(len % 8 != 0);
        let report = HistoryReport { round, modified: vec![false; len] };
        let mut bytes = report.encode();
        let last = bytes.len() - 1;
        bytes[last] |= 1 << (len % 8);
        prop_assert!(HistoryReport::decode(&bytes, len).is_none());
    }

    /// A count above the verifier's segment bound is refused before the
    /// bitmap is touched.
    #[test]
    fn history_report_count_beyond_max_rejected(count in 1usize..512) {
        let report = HistoryReport { round: 1, modified: vec![false; count] };
        let bytes = report.encode();
        prop_assert!(HistoryReport::decode(&bytes, count - 1).is_none());
        prop_assert!(HistoryReport::decode(&bytes, count).is_some());
    }
}

// ---------------------------------------------------------------------------
// Secure-session wire surface: handshake codecs and sealed frames under
// truncation, bit flips, replay and version skew. The contract mirrors
// the attestation parsers above — mangled input is rejected cheaply
// (before any HKDF work, gated on `channel::key_derivations()`) and
// burns no channel state, so the pristine traffic still flows after.
// ---------------------------------------------------------------------------

/// A deterministic established channel pair (no handshake: keys derived
/// directly, which is the only derivation this section performs).
fn channel_pair() -> (SecureChannel, SecureChannel) {
    let keys = SessionKeys::derive(&[7u8; 16], b"wire robustness transcript");
    (
        SecureChannel::new(keys.clone(), Role::Verifier, 0),
        SecureChannel::new(keys, Role::Prover, 0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_codecs_total_and_strict(
        nonce in any::<[u8; SESSION_NONCE_SIZE]>(),
        rekey_after in any::<u32>(),
        request in proptest::collection::vec(any::<u8>(), 0..96),
        response in proptest::collection::vec(any::<u8>(), 0..96),
        cut_seed in any::<u16>(),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let init = HandshakeInit {
            version: CHANNEL_VERSION,
            verifier_nonce: nonce,
            rekey_after,
            request,
        };
        let bytes = init.encode();
        prop_assert_eq!(HandshakeInit::decode(&bytes).ok(), Some(init));
        // Every strict prefix is rejected (self-delimiting encoding) …
        let cut = cut_seed as usize % bytes.len();
        prop_assert!(HandshakeInit::decode(&bytes[..cut]).is_err());
        // … and a wrong version byte dies at decode, before any
        // pipeline or key-schedule work could be reachable.
        let mut skewed = bytes.clone();
        skewed[0] = skewed[0].wrapping_add(1);
        prop_assert!(HandshakeInit::decode(&skewed).is_err());

        let accept = HandshakeAccept {
            version: CHANNEL_VERSION,
            prover_nonce: nonce,
            response,
        };
        let bytes = accept.encode();
        prop_assert_eq!(HandshakeAccept::decode(&bytes).ok(), Some(accept));
        let cut = cut_seed as usize % bytes.len();
        prop_assert!(HandshakeAccept::decode(&bytes[..cut]).is_err());

        // Arbitrary junk never panics either parser.
        let _ = HandshakeInit::decode(&junk);
        let _ = HandshakeAccept::decode(&junk);
    }

    /// Truncated, bit-flipped, version-skewed and replayed session
    /// frames: all rejected without a single HKDF derivation and without
    /// poisoning the replay window — the pristine frame still opens
    /// exactly once afterwards.
    #[test]
    fn mangled_session_frames_reject_cheaply_and_burn_no_state(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut_seed in any::<u16>(),
        bit_seed in any::<u32>(),
    ) {
        let (mut v, mut p) = channel_pair();
        let frame = v.seal_next(&payload);
        let derives_before = channel::key_derivations();

        // Truncation: every strict prefix dies at the length ladder.
        let cut = cut_seed as usize % frame.len();
        prop_assert!(p.open(&frame[..cut]).is_err());

        // Version skew: first byte is the channel version.
        let mut skewed = frame.clone();
        skewed[0] = skewed[0].wrapping_add(1);
        prop_assert!(p.open(&skewed).is_err());

        // Bit flip anywhere: header flips die at the ladder, payload/tag
        // flips die at the MAC — never at a panic, never accepted.
        let mut flipped = frame.clone();
        let bit = bit_seed as usize % (frame.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(p.open(&flipped).is_err());

        // None of the rejects derived keys or advanced the window: the
        // pristine frame still opens, exactly once.
        prop_assert_eq!(channel::key_derivations() - derives_before, 0);
        prop_assert_eq!(p.open(&frame).ok(), Some(payload));
        let derives_before = channel::key_derivations();
        prop_assert_eq!(
            p.open(&frame).unwrap_err().reject_reason(),
            Some(RejectReason::SessionReplay),
            "replayed frame must bounce off the window"
        );
        prop_assert_eq!(channel::key_derivations() - derives_before, 0);
    }
}
