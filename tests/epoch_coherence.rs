//! Property test for the per-segment last-write epoch log: under
//! arbitrary interleavings of application writes, History attestations,
//! EA-MPU probe attempts, clock glitches and sealed-store reboots, a
//! verified History round's modified set must contain **every** segment
//! actually written since the round it quotes — the never-stale-trusted
//! invariant. The bitmap may conservatively over-report (a reboot stamps
//! everything); it must never under-report, because an omitted segment is
//! exactly a TOCTOU blind spot.
//!
//! A second block pins the sealed record itself: capture → seal → open is
//! the identity, and any bit flip (content or tag) refuses to open.

use std::collections::BTreeSet;

use proptest::prelude::*;
use proverguard_attest::persist::{EpochLogRecord, InMemoryNvStore};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::SegmentedParams;
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_crypto::mac::{MacAlgorithm, MacKey};
use proverguard_mcu::map;

const KEY: [u8; 16] = [0x5A; 16];

/// Segment lengths exercised (same spread as the segcache coherence
/// suite).
const SEGMENT_LENS: [u32; 3] = [4 * 1024, 8 * 1024, 64 * 1024];

fn pair(segment_len: u32) -> (Prover, Verifier) {
    let config = ProverConfig {
        segmented: Some(SegmentedParams { segment_len }),
        ..ProverConfig::recommended()
    };
    let mut prover =
        Prover::provision(config.clone(), &KEY, b"epoch coherence").expect("provision");
    prover.attach_epoch_log_store(Box::new(InMemoryNvStore::new()));
    let mut verifier = Verifier::new(&config, &KEY).expect("verifier");
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
    (prover, verifier)
}

/// One History round with the oracle check: every segment in `pending`
/// (written since the last verified round) must land in the authenticated
/// modified set. Clears `pending` on success.
fn attest_and_check(
    prover: &mut Prover,
    verifier: &mut Verifier,
    pending: &mut BTreeSet<usize>,
) -> Result<(), String> {
    let request = verifier.make_request().map_err(|e| e.to_string())?;
    let response = prover.handle_request(&request).map_err(|e| {
        verifier.note_failed(&request);
        e.to_string()
    })?;
    let expected = prover.expected_memory().to_vec();
    if !verifier.check_response(&request, &response, &expected) {
        verifier.note_failed(&request);
        return Err("history response failed verification".to_string());
    }
    verifier.note_verified(&request, &response, &expected);
    if let Some(outcome) = verifier.last_history() {
        let modified: BTreeSet<usize> = outcome.modified.iter().copied().collect();
        if let Some(missing) = pending.difference(&modified).next() {
            return Err(format!(
                "segment {missing} was written after round {} but the modified \
                 set {:?} omits it — stale-trusted",
                outcome.since_round, outcome.modified
            ));
        }
    }
    pending.clear();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn modified_set_never_omits_a_written_segment(
        seg_choice in 0usize..3,
        ops in proptest::collection::vec(any::<u64>(), 4..24),
    ) {
        let seg_len = SEGMENT_LENS[seg_choice];
        let (mut prover, mut verifier) = pair(seg_len);
        let seg_count = prover.segment_cache().expect("segmented").segment_count();
        let mut pending: BTreeSet<usize> = BTreeSet::new();

        for word in &ops {
            match word % 7 {
                // Application writes at arbitrary offsets and lengths,
                // including runs straddling segment boundaries.
                0..=2 => {
                    let span = map::RAM.end - map::APP_RAM.start;
                    let off = map::APP_RAM.start + ((word >> 3) % u64::from(span - 512)) as u32;
                    let len = 1 + ((word >> 40) % 511) as usize;
                    prover
                        .mcu_mut()
                        .bus_write(off, &vec![(word >> 16) as u8; len], map::APP_CODE)
                        .expect("app RAM is open to app code");
                    let first = ((off - map::RAM.start) / seg_len) as usize;
                    let last = ((off - map::RAM.start) as usize + len - 1) / seg_len as usize;
                    pending.extend(first..=last.min(seg_count - 1));
                }
                // Attest: the invariant checkpoint.
                3 => prop_assert_eq!(
                    attest_and_check(&mut prover, &mut verifier, &mut pending),
                    Ok(())
                ),
                // Reboot: RAM wiped and rebuilt, so *every* segment was
                // written; the sealed log restores the round register so
                // History keeps working without a full re-anchor.
                4 => {
                    prover.reboot().expect("reboot");
                    prop_assert!(!prover.history_suspended(), "sealed log must restore");
                    pending.extend(0..seg_count);
                }
                // A compromised app probes the protected counter word:
                // EA-MPU fault, no write lands, no epoch moves.
                5 => {
                    let _ = prover
                        .mcu_mut()
                        .bus_write(map::COUNTER_R.start, &[0xFF; 8], map::APP_CODE);
                }
                // Clock glitch.
                _ => prover.advance_time_ms((word >> 8) % 5000).expect("advance"),
            }
        }

        // Always end on an attestation so every generated suffix of
        // writes/faults/reboots is checked at least once.
        prop_assert_eq!(
            attest_and_check(&mut prover, &mut verifier, &mut pending),
            Ok(())
        );
    }

    /// The sealed epoch-log record: capture → seal → open is the
    /// identity, and any single bit flip — in the payload or the tag —
    /// refuses to open. A rolled-back or forged log is indistinguishable
    /// from a corrupt one; both force the conservative full round.
    #[test]
    fn sealed_epoch_record_roundtrips_and_rejects_every_bitflip(
        seg_choice in 0usize..3,
        writes in proptest::collection::vec(any::<u64>(), 0..6,),
        bit_seed in any::<u32>(),
    ) {
        let (mut prover, mut verifier) = pair(SEGMENT_LENS[seg_choice]);
        let mut pending = BTreeSet::new();
        // Advance a couple of rounds and scatter writes so the captured
        // epochs are non-trivial.
        prop_assert_eq!(attest_and_check(&mut prover, &mut verifier, &mut pending), Ok(()));
        for word in &writes {
            let off = map::APP_RAM.start + (word % 0x6000) as u32;
            prover
                .mcu_mut()
                .bus_write(off, &[*word as u8], map::APP_CODE)
                .expect("app write");
        }
        prop_assert_eq!(attest_and_check(&mut prover, &mut verifier, &mut BTreeSet::new()), Ok(()));

        let key = MacKey::new(MacAlgorithm::Speck64Cbc, &KEY).expect("key");
        let record = EpochLogRecord::capture(prover.mcu_mut());
        let sealed = record.seal(&key);
        prop_assert_eq!(EpochLogRecord::open_sealed(&sealed, &key), Some(record));

        let mut tampered = sealed.clone();
        let bit = bit_seed as usize % (tampered.len() * 8);
        tampered[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(EpochLogRecord::open_sealed(&tampered, &key), None);
    }
}
