//! Integration tests for the §7 future-work extensions: secure clock
//! synchronization and gated security services, end to end through the
//! prover's authenticate-then-freshness gate.

use proverguard_attest::error::RejectReason;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::services::{erased_app_ram_digest, Command};
use proverguard_attest::verifier::Verifier;
use proverguard_crypto::sha1::Sha1;
use proverguard_mcu::map;

const KEY: [u8; 16] = [0x42; 16];

fn pair(config: &ProverConfig) -> (Prover, Verifier) {
    let prover = Prover::provision(config.clone(), &KEY, b"extensions image").expect("provision");
    let verifier = Verifier::new(config, &KEY).expect("verifier");
    (prover, verifier)
}

// ---- clock synchronization ---------------------------------------------------

#[test]
fn clock_sync_corrects_skew_end_to_end() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, mut verifier) = pair(&config);
    // The prover's oscillator "lost" 2 s relative to true time.
    prover.advance_time_ms(8_000).expect("advance");
    verifier.advance_time_ms(10_000);
    assert_eq!(prover.synced_now_ms().unwrap(), Some(8_000));

    let sync = verifier.make_sync_request();
    let outcome = prover.handle_sync(&sync).expect("sync accepted");
    assert_eq!(outcome.measured_skew_ms, 2_000);
    assert_eq!(outcome.applied_ms, 2_000);
    assert_eq!(prover.synced_now_ms().unwrap(), Some(10_000));

    // Timestamped attestation now works despite the oscillator error.
    let req = verifier.make_request().expect("request");
    prover.handle_request(&req).expect("accepted");
}

#[test]
fn forged_sync_rejected() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, mut verifier) = pair(&config);
    prover.advance_time_ms(1_000).expect("advance");
    verifier.advance_time_ms(5_000);
    let mut sync = verifier.make_sync_request();
    sync.auth = vec![0; sync.auth.len()];
    let err = prover.handle_sync(&sync).expect_err("rejected");
    assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
    // No correction happened.
    assert_eq!(prover.synced_now_ms().unwrap(), Some(1_000));
}

#[test]
fn replayed_sync_rejected_and_offset_survives() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, mut verifier) = pair(&config);
    prover.advance_time_ms(1_000).expect("advance");
    verifier.advance_time_ms(1_500);
    let sync = verifier.make_sync_request();
    prover.handle_sync(&sync).expect("first accepted");
    assert_eq!(prover.synced_now_ms().unwrap(), Some(1_500));
    let err = prover.handle_sync(&sync).expect_err("replay rejected");
    assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
    assert_eq!(prover.synced_now_ms().unwrap(), Some(1_500));
}

#[test]
fn malware_cannot_touch_the_sync_offset() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, _) = pair(&config);
    // Adv_roam tries to plant a huge offset directly.
    let result = prover.mcu_mut().bus_write(
        map::TRUST_STATE.start,
        &i64::MAX.to_le_bytes(),
        map::APP_CODE,
    );
    assert!(result.is_err(), "trust-state rule must deny malware");
}

#[test]
fn sync_requires_a_clock() {
    let config = ProverConfig::recommended(); // no clock
    let (mut prover, mut verifier) = pair(&config);
    let sync = verifier.make_sync_request();
    let err = prover.handle_sync(&sync).expect_err("no clock");
    assert!(matches!(err, proverguard_attest::AttestError::MissingClock));
}

// ---- gated services ----------------------------------------------------------

#[test]
fn secure_erase_end_to_end() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    prover
        .mcu_mut()
        .bus_write(map::APP_RAM.start, b"residual secrets", map::APP_CODE)
        .expect("write");

    let request = verifier.make_command(Command::EraseAppRam);
    let receipt = prover.handle_command(&request).expect("executed");
    assert!(verifier.check_command_receipt(
        &receipt,
        &Command::EraseAppRam,
        &erased_app_ram_digest()
    ));
}

#[test]
fn secure_update_end_to_end() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let image = b"sensor firmware v2".to_vec();
    let request = verifier.make_command(Command::UpdateFirmware {
        image: image.clone(),
    });
    let receipt = prover.handle_command(&request).expect("executed");

    // The verifier knows what the flash should hash to.
    let mut expected_flash = vec![0u8; map::FLASH.len() as usize];
    expected_flash[..image.len()].copy_from_slice(&image);
    let expected = Sha1::digest(&expected_flash);
    assert!(verifier.check_command_receipt(
        &receipt,
        &Command::UpdateFirmware { image },
        &expected
    ));
}

#[test]
fn forged_command_rejected_cheaply() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let cycles_before = prover.mcu().clock().cycles();
    let mut request = verifier.make_command(Command::EraseAppRam);
    request.auth = vec![0; request.auth.len()];
    let err = prover.handle_command(&request).expect_err("rejected");
    assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
    // Rejection cost one block check, not half a megabyte of erasure.
    assert!(prover.mcu().clock().cycles() - cycles_before < 1_000);
    // And the RAM was not erased (the counter word is still intact, and
    // nothing else changed — probe a canary).
    prover
        .mcu_mut()
        .bus_write(map::APP_RAM.start, b"canary", map::APP_CODE)
        .expect("write");
}

#[test]
fn replayed_command_rejected() {
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let request = verifier.make_command(Command::Ping);
    prover.handle_command(&request).expect("first");
    let err = prover.handle_command(&request).expect_err("replay");
    assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
}

#[test]
fn command_attestation_and_sync_counters_are_independent_streams() {
    let config = ProverConfig::timestamp_hw64();
    let (mut prover, mut verifier) = pair(&config);
    prover.advance_time_ms(1_000).expect("advance");
    verifier.advance_time_ms(1_000);

    // Interleave all three protocols.
    let cmd = verifier.make_command(Command::Ping);
    prover.handle_command(&cmd).expect("command");
    let sync = verifier.make_sync_request();
    prover.handle_sync(&sync).expect("sync");
    let att = verifier.make_request().expect("request");
    prover.handle_request(&att).expect("attestation");
}
