//! Integration tests pinning the hardware-evaluation numbers: Table 3,
//! the §6.3 overheads and the clock wrap-around arithmetic.

use proverguard_hw::components::{Component, EaMpu, HardwareClock, SiskiyouPeak};
use proverguard_hw::design::{ClockKind, Design};
use proverguard_hw::Resources;

#[test]
fn table3_rows_exact() {
    assert_eq!(SiskiyouPeak.cost(), Resources::new(5528, 14361));
    assert_eq!(EaMpu::new(0).cost(), Resources::new(278, 417));
    assert_eq!(EaMpu::rule_cost(), Resources::new(116, 182));
    assert_eq!(HardwareClock::wide64().cost(), Resources::new(64, 64));
    assert_eq!(HardwareClock::divided32().cost(), Resources::new(32, 32));
}

#[test]
fn section_6_3_baseline_exact() {
    // 5528 + 278 + 116·2 = 6038 registers; 14361 + 417 + 182·2 = 15142 LUTs.
    let report = Design::baseline().synthesize();
    assert_eq!(report.total(), Resources::new(6038, 15142));
}

#[test]
fn section_6_3_overheads_exact() {
    let baseline = Design::baseline().synthesize();
    let cases = [
        (
            Design::with_clock(ClockKind::Wide64),
            Resources::new(180, 246),
            (2.98, 1.62),
        ),
        (
            Design::with_clock(ClockKind::Divided32),
            Resources::new(148, 214),
            (2.45, 1.41),
        ),
        (
            Design::full(ClockKind::Software),
            Resources::new(348, 546),
            (5.76, 3.61),
        ),
    ];
    for (design, delta, (reg_pct, lut_pct)) in cases {
        let report = design.synthesize();
        assert_eq!(
            report.delta_vs(&baseline),
            delta,
            "{}",
            report.design_name()
        );
        let (r, l) = report.overhead_vs(&baseline);
        assert!((r - reg_pct).abs() < 0.01, "{}: {r}", report.design_name());
        assert!((l - lut_pct).abs() < 0.01, "{}: {l}", report.design_name());
    }
}

#[test]
fn clock_sizing_claims() {
    // 64-bit at 24 MHz: ~24,372.6 years (the paper uses 365-day years).
    let years64 = HardwareClock::wide64().wraparound_seconds(24e6) / (365.0 * 86_400.0);
    assert!((years64 - 24_372.6).abs() < 1.0, "{years64}");
    // Raw 32-bit: ~3 minutes.
    let min32 = HardwareClock::custom(32, 0).wraparound_seconds(24e6) / 60.0;
    assert!((min32 - 2.98).abs() < 0.05, "{min32}");
    // Divided 32-bit: ~6 years at ~42 ms resolution.
    let divided = HardwareClock::divided32();
    let years32 = divided.wraparound_seconds(24e6) / (365.0 * 86_400.0);
    assert!((5.5..6.5).contains(&years32), "{years32}");
    let res_ms = divided.resolution_seconds(24e6) * 1e3;
    assert!((42.0..45.0).contains(&res_ms), "{res_ms}");
}

#[test]
fn protection_cost_stays_below_six_percent() {
    // The paper's headline: full Adv_roam protection costs < 6% registers.
    let baseline = Design::baseline().synthesize();
    for clock in [ClockKind::Wide64, ClockKind::Divided32, ClockKind::Software] {
        let (reg_pct, lut_pct) = Design::full(clock).synthesize().overhead_vs(&baseline);
        assert!(reg_pct < 6.0, "{clock}: {reg_pct}%");
        assert!(lut_pct < 4.0, "{clock}: {lut_pct}%");
    }
}

#[test]
fn mpu_cost_linear_in_rules() {
    let c2 = EaMpu::new(2).cost();
    let c3 = EaMpu::new(3).cost();
    let c10 = EaMpu::new(10).cost();
    assert_eq!(c3.registers - c2.registers, 116);
    assert_eq!(c10.registers - c2.registers, 8 * 116);
    assert_eq!(c10.luts - c2.luts, 8 * 182);
}
