//! Acceptance matrix for the robustness layer: every prover preset, run
//! by the verifier's retry/backoff [`SessionDriver`] over a deterministic
//! fault schedule (drop, duplicate, corrupt, delay, reboot), must still
//! complete its attestation sessions — and the recovery properties of the
//! persisted freshness record must hold.

use proverguard_adversary::fault::{FaultConfig, FaultyLink};
use proverguard_adversary::world::World;
use proverguard_attest::error::RejectReason;
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::session::{RetryPolicy, SessionDriver};
use proverguard_attest::{FreshnessRecord, InMemoryNvStore, RecoveryOutcome, SharedNvStore};

/// Fixed seed — the whole matrix is reproducible bit for bit.
const SEED: u64 = 0x0DAC_2016;

fn presets() -> Vec<(&'static str, ProverConfig)> {
    vec![
        ("recommended", ProverConfig::recommended()),
        ("timestamp_hw64", ProverConfig::timestamp_hw64()),
        ("timestamp_sw_clock", ProverConfig::timestamp_sw_clock()),
        ("unprotected", ProverConfig::unprotected()),
    ]
}

fn driver() -> SessionDriver {
    SessionDriver::new(RetryPolicy {
        timeout_ms: 1000,
        max_retries: 8,
        backoff_base_ms: 250,
        backoff_factor: 2,
        ..RetryPolicy::default()
    })
}

fn world_for(config: &ProverConfig) -> World {
    let mut world = World::new(config.clone()).expect("provision");
    // Let clocks get off zero so timestamp freshness has room to move.
    world.advance_ms(5_000).expect("advance");
    if config.protection == Protection::EaMac {
        world
            .prover
            .attach_nv_store(Box::new(InMemoryNvStore::new()))
            .expect("attach store");
    }
    world
}

/// Every request lands in exactly one stats bucket: accepted or one of
/// the reject tallies. A request that is double-counted (or dropped from
/// the accounting entirely) would silently skew every experiment built
/// on [`ProverStats`], so the matrix asserts the partition after each
/// scenario.
fn assert_stats_partition(world: &World, label: &str) {
    let stats = world.prover.stats();
    assert_eq!(
        stats.requests_seen,
        stats.accepted + stats.rejected_total(),
        "{label}: {} seen != {} accepted + {} rejected",
        stats.requests_seen,
        stats.accepted,
        stats.rejected_total(),
    );
}

/// A named fault mode: label plus a seed-to-config constructor.
type FaultMode = (&'static str, fn(u64) -> FaultConfig);

#[test]
fn every_preset_recovers_under_every_recoverable_fault() {
    let fault_modes: &[FaultMode] = &[
        ("clean", FaultConfig::none),
        ("lossy(drop+delay)", FaultConfig::lossy),
        ("corrupting(truncate+bitflip)", FaultConfig::corrupting),
        ("rebooting(reboot+clock-glitch)", FaultConfig::rebooting),
        ("duplicating", |seed| FaultConfig {
            duplicate_per_mille: 400,
            ..FaultConfig::none(seed)
        }),
    ];

    for (config_label, config) in presets() {
        for (fault_label, fault_config) in fault_modes {
            let mut link = FaultyLink::new(world_for(&config), fault_config(SEED));
            for session in 0..3 {
                let report = driver().run(&mut link);
                assert!(
                    report.succeeded(),
                    "{config_label} under {fault_label}, session {session}: \
                     attempts {:#?}, faults {:#?}",
                    report.attempts,
                    link.events(),
                );
            }
            assert_stats_partition(&link.world, &format!("{config_label} under {fault_label}"));
        }
    }
}

#[test]
fn fault_schedule_is_deterministic() {
    let run = || {
        let mut link = FaultyLink::new(
            world_for(&ProverConfig::recommended()),
            FaultConfig::lossy(SEED),
        );
        let reports: Vec<_> = (0..3).map(|_| driver().run(&mut link)).collect();
        (reports, link.events().to_vec())
    };
    assert_eq!(run(), run());
}

#[test]
fn malformed_bytes_rejected_under_a_millisecond_on_every_preset() {
    let garbage: &[&[u8]] = &[
        &[],
        &[0x00],
        &[0xff; 3],
        &[0xde, 0xad, 0xbe, 0xef],
        &[0x41; 512],
    ];
    for (label, config) in presets() {
        let mut world = World::new(config).expect("provision");
        for (i, blob) in garbage.iter().enumerate() {
            let err = world.prover.handle_wire_request(blob).expect_err(label);
            assert_eq!(
                err.reject_reason(),
                Some(RejectReason::Malformed),
                "{label}, blob {i}"
            );
            assert!(
                world.prover.last_cost().total_ms() < 1.0,
                "{label}, blob {i}: {} ms",
                world.prover.last_cost().total_ms()
            );
        }
        assert_eq!(
            world.prover.stats().rejected_malformed,
            garbage.len() as u64
        );
        assert_eq!(world.prover.stats().accepted, 0);
        assert_stats_partition(&world, label);
    }
}

#[test]
fn sealed_counter_survives_reboot() {
    let mut world = World::new(ProverConfig::recommended()).expect("provision");
    world
        .prover
        .attach_nv_store(Box::new(InMemoryNvStore::new()))
        .expect("attach");
    let request = world.verifier.make_request().expect("request");
    world.deliver(&request).expect("genuine request accepted");

    let outcome = world.prover.reboot().expect("reboot");
    assert!(matches!(
        outcome,
        RecoveryOutcome::Restored(r) if r.counter_r == 1
    ));
    // The replayed request is still dead: freshness state survived the
    // power cycle.
    let err = world.prover.handle_request(&request).expect_err("replay");
    assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
    // And a fresh request still works.
    let next = world.verifier.make_request().expect("request");
    world.deliver(&next).expect("post-reboot request accepted");
    assert_eq!(world.prover.stats().reboots, 1);
    assert_eq!(world.prover.stats().recovery_failures, 0);
    assert_stats_partition(&world, "sealed_counter_survives_reboot");
}

#[test]
fn baseline_without_store_rolls_back_on_reboot() {
    // Same counter policy, but nothing persisted: an honest power cycle
    // already re-arms the §5 replay.
    let mut world = World::new(ProverConfig::recommended()).expect("provision");
    let request = world.verifier.make_request().expect("request");
    world.deliver(&request).expect("genuine request accepted");
    let err = world.prover.handle_request(&request).expect_err("replay");
    assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));

    assert_eq!(
        world.prover.reboot().expect("reboot"),
        RecoveryOutcome::NoStore
    );
    // counter_R rolled back to zero: the same recorded request is now
    // accepted again.
    world
        .prover
        .handle_request(&request)
        .expect("rollback: replay accepted after reboot");
}

#[test]
fn open_baseline_accepts_a_tampered_store_but_eamac_detects_it() {
    // The Open-protection prover persists its record in the clear; an
    // adversary with the flash chip rewrites it and the prover cannot
    // tell.
    let open_config = ProverConfig {
        protection: Protection::Open,
        ..ProverConfig::recommended()
    };
    let store = SharedNvStore::new();
    let mut world = World::new(open_config).expect("provision");
    world
        .prover
        .attach_nv_store(Box::new(store.clone()))
        .expect("attach");
    let request = world.verifier.make_request().expect("request");
    world.deliver(&request).expect("accepted");

    // Adv_roam rewrites the plain record with a zeroed counter.
    store.overwrite(Some(FreshnessRecord::default().encode()));
    let outcome = world.prover.reboot().expect("reboot");
    assert!(matches!(
        outcome,
        RecoveryOutcome::Restored(r) if r.counter_r == 0
    ));
    world
        .prover
        .handle_request(&request)
        .expect("rollback: tampered plain record re-armed the replay");
    assert_eq!(world.prover.stats().recovery_failures, 0, "silent rollback");

    // The EA-MAC prover refuses the identical forgery: the record is
    // sealed, so a crafted replacement fails validation and is counted.
    let store = SharedNvStore::new();
    let mut world = World::new(ProverConfig::recommended()).expect("provision");
    world
        .prover
        .attach_nv_store(Box::new(store.clone()))
        .expect("attach");
    let request = world.verifier.make_request().expect("request");
    world.deliver(&request).expect("accepted");
    store.overwrite(Some(FreshnessRecord::default().encode()));
    assert_eq!(
        world.prover.reboot().expect("reboot"),
        RecoveryOutcome::TamperDetected
    );
    assert_eq!(world.prover.stats().recovery_failures, 1);
}

#[test]
fn rebooted_timestamp_prover_resyncs_through_the_recovery_hook() {
    // A reboot without persisted state zeroes the hardware clock; the
    // driver's recovery hook (authenticated §7 sync) brings the prover
    // back inside the freshness window within the retry budget.
    let mut world = World::new(ProverConfig::timestamp_hw64()).expect("provision");
    world.advance_ms(5_000).expect("advance");
    let request = world.verifier.make_request().expect("request");
    world.deliver(&request).expect("accepted");

    assert_eq!(
        world.prover.reboot().expect("reboot"),
        RecoveryOutcome::NoStore
    );
    assert_eq!(world.prover.now_ms().expect("clock"), Some(0));

    let mut link = FaultyLink::new(world, FaultConfig::none(SEED));
    let report = driver().run(&mut link);
    assert!(report.succeeded(), "attempts: {:#?}", report.attempts);
}
