//! Key-hygiene properties of the attested-session key schedule
//! ([`proverguard_attest::channel`]): session keys are pairwise distinct
//! across sessions, never collide with the long-term device key they are
//! derived from, and react to every single transcript bit.

use proptest::prelude::*;

use proverguard_attest::channel::{self, SessionKeys};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;

proptest! {
    #[test]
    fn distinct_transcripts_distinct_keys(
        ikm in any::<[u8; 16]>(),
        t1 in proptest::collection::vec(any::<u8>(), 1..128),
        t2 in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let k1 = SessionKeys::derive(&ikm, &t1);
        let k2 = SessionKeys::derive(&ikm, &t2);
        if t1 != t2 {
            prop_assert_ne!(k1.session_id, k2.session_id);
            prop_assert_ne!(k1.to_prover, k2.to_prover);
            prop_assert_ne!(k1.to_verifier, k2.to_verifier);
        } else {
            prop_assert_eq!(k1, k2);
        }
    }

    #[test]
    fn derived_keys_never_equal_device_key(
        ikm in any::<[u8; 16]>(),
        transcript in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let mut keys = SessionKeys::derive(&ikm, &transcript);
        // Across the handshake epoch and several ratchets: no direction
        // key ever equals the device key or its sibling, and each
        // ratchet replaces both.
        for _ in 0..4 {
            prop_assert_ne!(keys.to_prover, ikm);
            prop_assert_ne!(keys.to_verifier, ikm);
            prop_assert_ne!(keys.to_prover, keys.to_verifier);
            let before = keys.clone();
            keys.ratchet();
            prop_assert_ne!(keys.to_prover, before.to_prover);
            prop_assert_ne!(keys.to_verifier, before.to_verifier);
            prop_assert_eq!(keys.session_id, before.session_id);
            prop_assert_eq!(keys.epoch, before.epoch + 1);
        }
    }

    #[test]
    fn one_bit_transcript_flip_changes_every_key(
        ikm in any::<[u8; 16]>(),
        transcript in proptest::collection::vec(any::<u8>(), 1..96),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut flipped = transcript.clone();
        let idx = byte as usize % flipped.len();
        flipped[idx] ^= 1 << bit;
        let k1 = SessionKeys::derive(&ikm, &transcript);
        let k2 = SessionKeys::derive(&ikm, &flipped);
        prop_assert_ne!(k1.session_id, k2.session_id);
        prop_assert_ne!(k1.to_prover, k2.to_prover);
        prop_assert_ne!(k1.to_verifier, k2.to_verifier);
    }
}

/// Two real sequential handshakes from the *same* device: fresh nonces
/// and an advanced freshness counter change the transcript, so the
/// second session's keys are unrelated to the first's — and neither
/// session ever hands out the long-term device key.
#[test]
fn real_handshakes_yield_pairwise_distinct_keys() {
    const KEY: [u8; 16] = [0x42; 16];
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, b"key hygiene").expect("provision");
    let mut verifier = Verifier::new(&config, &KEY).expect("verifier");

    let mut sessions = Vec::new();
    for _ in 0..3 {
        let (init, request) = channel::verifier_begin(&mut verifier, 4).expect("begin");
        let (accept, _prover_chan) = channel::prover_accept(&mut prover, &init).expect("accept");
        let expected = prover.expected_memory().to_vec();
        let chan = channel::verifier_confirm(&mut verifier, &init, &request, &accept, &expected)
            .expect("confirm");
        sessions.push(chan.keys().clone());
    }
    for (i, a) in sessions.iter().enumerate() {
        assert_ne!(a.to_prover, KEY, "session {i} leaked the device key");
        assert_ne!(a.to_verifier, KEY, "session {i} leaked the device key");
        for (j, b) in sessions.iter().enumerate().skip(i + 1) {
            assert_ne!(a.session_id, b.session_id, "sessions {i}/{j} share an id");
            assert_ne!(a.to_prover, b.to_prover, "sessions {i}/{j} share a key");
            assert_ne!(a.to_verifier, b.to_verifier, "sessions {i}/{j} share a key");
        }
    }
}
