//! Integration tests pinning the paper's security claims: Table 2, the §5
//! roaming-adversary results, and the §6 mitigations.

use proverguard_adversary::ext::{run_attack, ExtAttack, MitigationMatrix};
use proverguard_adversary::roam::{run_roam_attack, RoamAttack};
use proverguard_adversary::world::World;
use proverguard_attest::clock::ClockKind;
use proverguard_attest::freshness::{FreshnessKind, DEFAULT_MAX_DELAY_MS};
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::ProverConfig;

fn config(freshness: FreshnessKind, clock: ClockKind, protection: Protection) -> ProverConfig {
    ProverConfig {
        freshness,
        clock,
        protection,
        ..ProverConfig::recommended()
    }
}

#[test]
fn table2_complete_matrix() {
    let m = MitigationMatrix::generate().expect("matrix");
    // 3 policies x 3 attacks.
    assert_eq!(m.cells().len(), 9);
    let expected = [
        // (policy, replay, reorder, delay) — the paper's checkmarks.
        (FreshnessKind::NonceHistory, true, false, false),
        (FreshnessKind::Counter, true, true, false),
        (FreshnessKind::Timestamp, true, true, true),
    ];
    for (policy, replay, reorder, delay) in expected {
        assert_eq!(
            m.mitigated(policy, &ExtAttack::Replay),
            Some(replay),
            "{policy} replay"
        );
        assert_eq!(
            m.mitigated(policy, &ExtAttack::Reorder),
            Some(reorder),
            "{policy} reorder"
        );
        assert_eq!(
            m.mitigated(policy, &ExtAttack::Delay { delay_ms: 0 }),
            Some(delay),
            "{policy} delay"
        );
    }
}

#[test]
fn forgery_blocked_by_every_mac() {
    use proverguard_attest::auth::AuthMethod;
    use proverguard_crypto::mac::MacAlgorithm;
    for alg in MacAlgorithm::ALL {
        let cfg = ProverConfig {
            auth: AuthMethod::Mac(alg),
            ..ProverConfig::recommended()
        };
        let mut world = World::new(cfg).expect("world");
        let outcome = run_attack(&mut world, ExtAttack::Forge).expect("attack");
        assert!(outcome.detected, "{alg}");
    }
}

#[test]
fn section5_all_roam_attacks_succeed_on_open_devices() {
    let cases = [
        (
            RoamAttack::CounterRollback,
            FreshnessKind::Counter,
            ClockKind::None,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Hw64,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Hw32Div,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::IdtHijack,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::TimerKill,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::KeyExtraction,
            FreshnessKind::Counter,
            ClockKind::None,
        ),
    ];
    for (attack, freshness, clock) in cases {
        let mut world = World::new(config(freshness, clock, Protection::Open)).expect("world");
        let outcome = run_roam_attack(&mut world, attack, 5000).expect("scenario");
        assert!(
            outcome.tampering.iter().all(|t| t.succeeded),
            "{attack}: tampering should succeed on open device: {:?}",
            outcome.tampering
        );
        assert!(
            outcome.replay_accepted,
            "{attack}: DoS should succeed on open device"
        );
    }
}

#[test]
fn section6_all_roam_attacks_blocked_by_eamac() {
    let cases = [
        (
            RoamAttack::CounterRollback,
            FreshnessKind::Counter,
            ClockKind::None,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Hw64,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Hw32Div,
        ),
        (
            RoamAttack::ClockReset,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::IdtHijack,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::TimerKill,
            FreshnessKind::Timestamp,
            ClockKind::Software,
        ),
        (
            RoamAttack::KeyExtraction,
            FreshnessKind::Counter,
            ClockKind::None,
        ),
    ];
    for (attack, freshness, clock) in cases {
        let mut world = World::new(config(freshness, clock, Protection::EaMac)).expect("world");
        let outcome = run_roam_attack(&mut world, attack, 5000).expect("scenario");
        assert!(
            outcome.fully_blocked(),
            "{attack}: tampering must be denied: {:?}",
            outcome.tampering
        );
        assert!(
            !outcome.replay_accepted,
            "{attack}: replay must be rejected"
        );
    }
}

#[test]
fn section5_counter_rollback_is_trace_free_but_clock_reset_is_not() {
    // Counter rollback: no clock, no evidence.
    let mut world = World::new(config(
        FreshnessKind::Counter,
        ClockKind::None,
        Protection::Open,
    ))
    .expect("world");
    let counter_outcome =
        run_roam_attack(&mut world, RoamAttack::CounterRollback, 5000).expect("scenario");
    assert!(counter_outcome.replay_accepted);
    assert_eq!(counter_outcome.clock_lag_ms, None, "no clock, no footprint");

    // Clock reset: the prover's clock remains behind by ~δ.
    let mut world = World::new(config(
        FreshnessKind::Timestamp,
        ClockKind::Hw64,
        Protection::Open,
    ))
    .expect("world");
    let clock_outcome =
        run_roam_attack(&mut world, RoamAttack::ClockReset, 5000).expect("scenario");
    assert!(clock_outcome.replay_accepted);
    let lag = clock_outcome.clock_lag_ms.expect("clock installed");
    assert!(lag > 3000, "clock should lag by roughly δ, got {lag} ms");
}

#[test]
fn delay_attack_bounded_by_window() {
    // Within the window: indistinguishable from slow delivery, accepted.
    let mut world = World::new(config(
        FreshnessKind::Timestamp,
        ClockKind::Hw64,
        Protection::EaMac,
    ))
    .expect("world");
    let inside = run_attack(
        &mut world,
        ExtAttack::Delay {
            delay_ms: DEFAULT_MAX_DELAY_MS / 2,
        },
    )
    .expect("attack");
    assert!(!inside.detected);

    // Beyond the window: rejected.
    let mut world = World::new(config(
        FreshnessKind::Timestamp,
        ClockKind::Hw64,
        Protection::EaMac,
    ))
    .expect("world");
    let outside = run_attack(
        &mut world,
        ExtAttack::Delay {
            delay_ms: DEFAULT_MAX_DELAY_MS * 3,
        },
    )
    .expect("attack");
    assert!(outside.detected);
}

#[test]
fn rejected_attacks_cost_less_than_answered_ones() {
    let mut protected = World::new(ProverConfig::recommended()).expect("world");
    let detected = run_attack(&mut protected, ExtAttack::Forge).expect("attack");
    let mut open = World::new(ProverConfig::unprotected()).expect("world");
    let undetected = run_attack(&mut open, ExtAttack::Forge).expect("attack");
    assert!(detected.detected && !undetected.detected);
    // >10,000x asymmetry between rejecting and answering.
    assert!(undetected.prover_cycles_wasted > 10_000 * detected.prover_cycles_wasted);
}
