//! Exhaustive convergence check for the OTA campaign state machine: a
//! 5-device campaign is driven over *every* assignment of scripted
//! device behaviours (ok / flaky / deaf / wrong-image / roaming — 5⁵ =
//! 3,125 campaigns) and the terminal state of every device is compared
//! against an independently written reference model of the per-device
//! rollout FSM. The reference model is a direct simulation of one
//! device's behaviour stream — no shared code with
//! [`CampaignController`] beyond the outcome vocabulary.

use proverguard_attest::campaign::{
    CampaignAction, CampaignConfig, CampaignController, CampaignPhase, DeviceOutcome, DeviceState,
};

const DEVICES: usize = 5;
const MAX_ATTEMPTS: u32 = 3;
const ROAM_RETURN_TICKS: u64 = 3;

/// The scripted behaviours a device can be assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Behavior {
    /// Every action succeeds.
    Ok,
    /// The first two actions time out, everything after succeeds.
    Flaky,
    /// Every action times out: the retry budget must fail the device.
    Deaf,
    /// The flash succeeds but every attestation is a valid MAC over the
    /// wrong image: the device must be quarantined.
    Wrong,
    /// The first action finds the device roaming; it returns
    /// [`ROAM_RETURN_TICKS`] later and then behaves like `Ok`.
    Roam,
}

const BEHAVIORS: [Behavior; 5] = [
    Behavior::Ok,
    Behavior::Flaky,
    Behavior::Deaf,
    Behavior::Wrong,
    Behavior::Roam,
];

/// Per-device script interpreter: stateful, consumed one action at a
/// time by the campaign driver.
struct Script {
    behavior: Behavior,
    actions_seen: u32,
    offline_until: Option<u64>,
    parked_pending: bool,
}

impl Script {
    fn new(behavior: Behavior) -> Self {
        Script {
            behavior,
            actions_seen: 0,
            offline_until: None,
            parked_pending: false,
        }
    }

    /// The device's reply to one campaign action at tick `now`.
    fn respond(&mut self, action: CampaignAction, now: u64) -> DeviceOutcome {
        self.actions_seen += 1;
        match self.behavior {
            Behavior::Ok => ok_outcome(action),
            Behavior::Flaky => {
                if self.actions_seen <= 2 {
                    DeviceOutcome::Timeout
                } else {
                    ok_outcome(action)
                }
            }
            Behavior::Deaf => DeviceOutcome::Timeout,
            Behavior::Wrong => match action {
                CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
                CampaignAction::Attest { .. } => DeviceOutcome::AttestedOther,
            },
            Behavior::Roam => {
                if self.actions_seen == 1 {
                    self.offline_until = Some(now + ROAM_RETURN_TICKS);
                    self.parked_pending = true;
                    DeviceOutcome::Offline
                } else {
                    ok_outcome(action)
                }
            }
        }
    }

    /// Whether the parked device has returned by `now` (drained once).
    fn returns_at(&mut self, now: u64) -> bool {
        if let Some(until) = self.offline_until {
            if self.parked_pending && now >= until {
                self.parked_pending = false;
                return true;
            }
        }
        false
    }
}

fn ok_outcome(action: CampaignAction) -> DeviceOutcome {
    match action {
        CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
        CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
    }
}

/// The independent reference model: simulate one device's rollout FSM
/// directly — flash stage then verify stage, each with a bounded retry
/// budget — against the behaviour's outcome stream, and predict the
/// terminal [`DeviceState`].
fn reference_final_state(behavior: Behavior) -> DeviceState {
    // Timeouts charge the *current* stage's budget; a behaviour's
    // timeouts all land before any success, so the worst case is easy to
    // fold: `Flaky` spends 2 of MAX_ATTEMPTS in the flash stage and
    // still lands both stages; `Deaf` exhausts the flash stage.
    match behavior {
        Behavior::Ok | Behavior::Roam => DeviceState::Healthy,
        Behavior::Flaky => {
            if 2 < MAX_ATTEMPTS {
                DeviceState::Healthy
            } else {
                DeviceState::Failed
            }
        }
        Behavior::Deaf => DeviceState::Failed,
        Behavior::Wrong => DeviceState::Quarantined,
    }
}

/// A campaign config with the halt thresholds disarmed, so every script
/// assignment must run to `Complete` and terminal states are per-device
/// properties (the halt path is exercised separately below).
fn no_halt_config() -> CampaignConfig {
    CampaignConfig {
        canary_size: 1,
        wave_growth: 2,
        max_attempts: MAX_ATTEMPTS,
        halt_failure_ewma: 1.0, // EWMA can never strictly exceed 1.0
        ewma_alpha: 0.5,
        min_halt_samples: 1,
        breaker_trip_halt: u64::MAX,
        wave_deadline: 2,
        max_inflight: 16,
        ..CampaignConfig::default()
    }
}

/// Drives one scripted campaign to a terminal phase. Returns the tick
/// count; panics (with context) if the campaign fails to converge.
fn drive(controller: &mut CampaignController, scripts: &mut [Script], budget: u64) -> u64 {
    for now in 0..budget {
        for (i, script) in scripts.iter_mut().enumerate() {
            if script.returns_at(now) {
                controller.report(i, DeviceOutcome::CameOnline, now);
            }
        }
        let actions = controller.tick(now);
        if controller.phase().is_terminal() {
            return now;
        }
        // Invariant: at most one in-flight action per device per tick.
        let mut seen = [false; DEVICES];
        for action in actions {
            let device = action.device();
            assert!(
                !seen[device],
                "device {device} dispatched twice in one tick"
            );
            seen[device] = true;
            let outcome = scripts[device].respond(action, now);
            controller.report(device, outcome, now);
        }
    }
    panic!("campaign did not converge within {budget} ticks");
}

#[test]
fn exhaustive_scripted_campaigns_match_reference_model() {
    // Every one of the 5^DEVICES behaviour assignments.
    for assignment in 0..BEHAVIORS.len().pow(DEVICES as u32) {
        let behaviors: Vec<Behavior> = (0..DEVICES)
            .map(|d| BEHAVIORS[(assignment / BEHAVIORS.len().pow(d as u32)) % BEHAVIORS.len()])
            .collect();
        let mut scripts: Vec<Script> = behaviors.iter().map(|&b| Script::new(b)).collect();
        let mut controller = CampaignController::new(DEVICES, no_halt_config());
        drive(&mut controller, &mut scripts, 200);

        assert_eq!(
            controller.phase(),
            CampaignPhase::Complete,
            "assignment {behaviors:?} must complete with halts disarmed"
        );
        for (i, &behavior) in behaviors.iter().enumerate() {
            let expected = reference_final_state(behavior);
            assert_eq!(
                controller.device_state(i),
                expected,
                "assignment {behaviors:?}: device {i} ({behavior:?}) diverged from the \
                 reference model"
            );
        }
    }
}

#[test]
fn scripted_bad_canary_matches_halt_model() {
    // With the EWMA armed and the canary deaf-failing its attestations,
    // the reference prediction is: halt during wave 1, then every
    // non-quarantined device re-attests the old image.
    let config = CampaignConfig {
        halt_failure_ewma: 0.4,
        breaker_trip_halt: u64::MAX,
        ..no_halt_config()
    };
    let mut controller = CampaignController::new(DEVICES, config);
    let mut scripts: Vec<Script> = vec![
        Script::new(Behavior::Wrong), // canary: quarantined, EWMA 0.5 > 0.4
        Script::new(Behavior::Ok),
        Script::new(Behavior::Ok),
        Script::new(Behavior::Ok),
        Script::new(Behavior::Ok),
    ];
    drive(&mut controller, &mut scripts, 200);
    assert_eq!(controller.phase(), CampaignPhase::RolledBack);
    assert_eq!(controller.device_state(0), DeviceState::Quarantined);
    for i in 1..DEVICES {
        assert_eq!(
            controller.device_state(i),
            DeviceState::RolledBack,
            "device {i} must have re-attested the old image"
        );
    }
    assert_eq!(controller.stats().healthy, 0);
}
