//! End-to-end attestation over real OS sockets on 127.0.0.1: the full
//! gateway stack on TCP, and the raw framed protocol on UDP datagrams.
//! Everything binds port 0, so runs never collide.

use std::thread;
use std::time::Duration;

use proverguard_attest::gateway::{DeviceDirectory, Gateway, GatewayConfig, ProverAgent};
use proverguard_attest::message::{AttestRequest, AttestResponse};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_transport::{udp_pair, TcpAcceptor, TcpTransport, Transport, DEFAULT_MAX_FRAME};

fn provision(index: u64) -> (Prover, Verifier) {
    let config = ProverConfig::recommended();
    let mut key = [0x42u8; 16];
    key[0] ^= index as u8;
    let prover = Prover::provision(config.clone(), &key, b"app v1").expect("provision prover");
    let verifier = Verifier::new(&config, &key).expect("provision verifier");
    (prover, verifier)
}

/// The whole stack over TCP: gateway accept loop, bounded queue, worker
/// pool, framed session protocol — and two provers dialing in over real
/// sockets, each verifying twice.
#[test]
fn gateway_attests_provers_over_tcp() {
    let mut directory = DeviceDirectory::new();
    let mut agents = Vec::new();
    for d in 0..2u64 {
        let (prover, verifier) = provision(d);
        let id = directory.register(verifier, prover.expected_memory().to_vec());
        agents.push(ProverAgent::new(prover, id));
    }

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback tcp");
    let addr = acceptor.local_addr();
    let handle = Gateway::start(
        Box::new(acceptor),
        directory,
        GatewayConfig {
            workers: 2,
            queue_depth: 4,
            retry: RetryPolicy {
                timeout_ms: 10_000,
                ..GatewayConfig::default().retry
            },
            ..GatewayConfig::default()
        },
    );

    let clients: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            thread::spawn(move || {
                let policy = RetryPolicy {
                    timeout_ms: 10_000,
                    max_retries: 10,
                    backoff_base_ms: 5,
                    backoff_factor: 1,
                    jitter_per_mille: 500,
                    jitter_seed: 0x7c9,
                };
                (0..2)
                    .filter(|_| {
                        agent
                            .attest_with_retry(
                                || {
                                    TcpTransport::connect(addr)
                                        .map(|conn| Box::new(conn) as Box<dyn Transport>)
                                },
                                &policy,
                                Duration::from_secs(30),
                                50,
                            )
                            .is_verified()
                    })
                    .count()
            })
        })
        .collect();

    let verified: usize = clients
        .into_iter()
        .map(|c| c.join().expect("tcp client panicked"))
        .sum();
    let report = handle.shutdown();

    assert_eq!(verified, 4, "all four TCP sessions must verify");
    assert_eq!(report.stats.sessions_ok, 4);
    assert!(report.stats.partition_holds());
    assert_eq!(report.dropped_spans, 0);
    assert!(
        report.metrics.counter("transport.bytes_in").unwrap_or(0) > 0,
        "gateway-side byte counters must see real socket traffic"
    );
}

/// The framed attestation protocol over UDP datagrams: one request per
/// datagram, the prover's cheap-reject ladder and memory MAC on one side,
/// the verifier's expected-image check on the other. The prover side
/// snapshots its RAM after each request, because committing counter
/// freshness mutates the attested image before the MAC runs.
#[test]
fn attestation_roundtrips_over_udp_datagrams() {
    const SESSIONS: usize = 2;
    let (mut prover, mut verifier) = provision(7);

    let (mut prover_end, mut verifier_end) =
        udp_pair(DEFAULT_MAX_FRAME).expect("bind loopback udp pair");
    prover_end
        .set_deadline(Some(Duration::from_secs(10)))
        .expect("prover deadline");
    verifier_end
        .set_deadline(Some(Duration::from_secs(10)))
        .expect("verifier deadline");

    let service = thread::spawn(move || {
        let mut snapshots = Vec::new();
        for _ in 0..SESSIONS {
            let request = prover_end.recv().expect("prover recv");
            let reply = prover
                .handle_wire_request(&request)
                .expect("honest request accepted");
            snapshots.push(prover.expected_memory().to_vec());
            prover_end.send(&reply).expect("prover send");
        }
        snapshots
    });

    let mut exchanges = Vec::new();
    for _ in 0..SESSIONS {
        let request = verifier.make_request().expect("make request");
        verifier_end
            .send(&request.to_bytes())
            .expect("verifier send");
        let reply = verifier_end.recv().expect("verifier recv");
        exchanges.push((request, reply));
    }
    let snapshots = service.join().expect("prover thread panicked");

    for (round, ((request, reply), expected)) in exchanges.iter().zip(snapshots.iter()).enumerate()
    {
        let request = AttestRequest::from_bytes(&request.to_bytes()).expect("request reparses");
        let response = AttestResponse::from_bytes(reply).expect("response parses");
        assert!(
            verifier.check_response(&request, &response, expected),
            "UDP session {round} must verify against the post-commit image"
        );
    }
}
