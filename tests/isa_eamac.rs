//! Integration tests running real (tiny-ISA) programs against the EA-MPU:
//! instruction-granular enforcement, exactly as SMART/TrustLite do it.

use proverguard_attest::clock::ClockKind;
use proverguard_attest::profile::{rules_for, Protection};
use proverguard_mcu::boot::{image_digest, SecureBoot};
use proverguard_mcu::device::Mcu;
use proverguard_mcu::isa::{assemble_at, Cpu};
use proverguard_mcu::map;
use proverguard_mcu::McuError;

/// Builds a secure-booted device with the EA-MAC rule set and `program`
/// in flash.
fn protected_device(program: &str, clock: ClockKind) -> Mcu {
    let mut mcu = Mcu::new();
    mcu.provision_attest_key(&[0xaa; 16]).expect("key");
    let image = assemble_at(program, map::FLASH.start).expect("assembles");
    mcu.program_flash(&image).expect("flash");
    mcu.install_entry_point(map::ATTEST_CODE, map::ATTEST_CODE.start);
    let reference = image_digest(mcu.physical_memory().flash());
    SecureBoot::new(reference)
        .run(&mut mcu, &rules_for(Protection::EaMac, clock))
        .expect("boot");
    mcu
}

#[test]
fn benign_program_runs_to_completion() {
    let mut mcu = protected_device(
        "ldi r1, 100
         ldi r2, 23
         add r3, r1, r2
         halt",
        ClockKind::None,
    );
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert!(outcome.halted);
    assert_eq!(cpu.reg(3), 123);
}

#[test]
fn key_read_faults_at_the_exact_instruction() {
    let program = format!(
        "nop
         nop
         ldi r1, {:#x}
         ldb r2, [r1]
         halt",
        map::ATTEST_KEY.start
    );
    let mut mcu = protected_device(&program, ClockKind::None);
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert_eq!(outcome.steps, 3, "two nops and the ldi execute");
    assert!(matches!(
        outcome.fault,
        Some(McuError::MpuViolation { pc, .. }) if pc == map::FLASH.start + 12
    ));
    assert_eq!(cpu.reg(2), 0);
}

#[test]
fn counter_write_faults_but_app_ram_write_succeeds() {
    let program = format!(
        "lui r1, {:#x}
         ldi r2, {:#x}
         or r1, r1, r2        ; r1 = APP_RAM
         ldi r3, 7
         st r3, [r1]          ; allowed: plain RAM
         lui r4, {:#x}
         ldi r5, {:#x}
         or r4, r4, r5        ; r4 = counter_R
         st r3, [r4]          ; denied: protected word
         halt",
        map::APP_RAM.start >> 16,
        map::APP_RAM.start & 0xffff,
        map::COUNTER_R.start >> 16,
        map::COUNTER_R.start & 0xffff,
    );
    let mut mcu = protected_device(&program, ClockKind::None);
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert!(matches!(outcome.fault, Some(McuError::MpuViolation { .. })));
    // The benign store went through before the fault.
    let mut buf = [0u8; 4];
    mcu.bus_read(map::APP_RAM.start, &mut buf, map::APP_CODE)
        .expect("read");
    assert_eq!(u32::from_le_bytes(buf), 7);
}

#[test]
fn idt_overwrite_faults_on_sw_clock_device() {
    let program = format!(
        "lui r1, {:#x}
         ldi r2, {:#x}
         or r1, r1, r2        ; r1 = IDT base
         ldi r3, 0
         st r3, [r1]          ; denied: IDT is write-locked
         halt",
        map::IDT.start >> 16,
        map::IDT.start & 0xffff,
    );
    let mut mcu = protected_device(&program, ClockKind::Software);
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert!(matches!(outcome.fault, Some(McuError::MpuViolation { .. })));
}

#[test]
fn jump_into_middle_of_code_attest_faults() {
    // §6.2: "Runtime attacks on Code_Attest can be addressed, e.g., by
    // limiting code entry points". Malware tries to jump past the checks
    // into the body of the trust anchor.
    let mid_attest = map::ATTEST_CODE.start + 0x80;
    let program = format!(
        "nop
         jmp {mid_attest:#x}   ; illegal: not the entry point
         halt"
    );
    let mut mcu = protected_device(&program, ClockKind::None);
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert!(matches!(
        outcome.fault,
        Some(McuError::EntryPointViolation { to, .. }) if to == mid_attest
    ));
}

#[test]
fn call_to_code_attest_entry_is_legal() {
    // Entering at the designated entry point passes the control-flow
    // check: execution proceeds inside ROM (zeroed ROM words decode as
    // `nop`, so the CPU just marches forward until the step budget runs
    // out — with no entry-point or MPU fault).
    let entry = map::ATTEST_CODE.start;
    let program = format!("call {entry:#x}\nhalt");
    let mut mcu = protected_device(&program, ClockKind::None);
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 50);
    assert!(
        outcome.fault.is_none(),
        "transfer must be legal, got {:?}",
        outcome.fault
    );
    assert!(
        map::ATTEST_CODE.contains(cpu.pc()),
        "pc {:#x} should be inside Code_Attest",
        cpu.pc()
    );
}

#[test]
fn same_program_succeeds_on_open_device() {
    // Sanity check that the faults above are EA-MPU effects, not ISA bugs.
    let program = format!(
        "ldi r1, {:#x}
         ldb r2, [r1]
         halt",
        map::ATTEST_KEY.start
    );
    let mut mcu = Mcu::new();
    mcu.provision_attest_key(&[0xaa; 16]).expect("key");
    let image = assemble_at(&program, map::FLASH.start).expect("assembles");
    mcu.program_flash(&image).expect("flash");
    // No secure boot, no rules: the strawman.
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(&mut mcu, 100);
    assert!(outcome.halted);
    assert_eq!(cpu.reg(2), 0xaa, "open device leaks the key byte");
}

#[test]
fn fault_log_records_isa_violations() {
    let program = format!(
        "ldi r1, {:#x}
         ldb r2, [r1]
         halt",
        map::ATTEST_KEY.start
    );
    let mut mcu = protected_device(&program, ClockKind::None);
    assert!(mcu.fault_log().is_empty());
    let mut cpu = Cpu::new(map::FLASH.start);
    let _ = cpu.run(&mut mcu, 100);
    assert_eq!(mcu.fault_log().len(), 1);
}

#[test]
fn secure_boot_refuses_tampered_program() {
    let mut mcu = Mcu::new();
    let image = assemble_at("halt", map::FLASH.start).expect("assembles");
    mcu.program_flash(&image).expect("flash");
    let reference = image_digest(mcu.physical_memory().flash());
    // Tamper after the reference was taken.
    let evil = assemble_at("nop\nhalt", map::FLASH.start).expect("assembles");
    mcu.program_flash(&evil).expect("flash");
    let result = SecureBoot::new(reference).run(&mut mcu, &[]);
    assert!(matches!(result, Err(McuError::BootImageRejected { .. })));
}
