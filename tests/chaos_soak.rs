//! Integration: the deterministic CI chaos soak and its liveness
//! invariants (the gate `ci.sh` also runs via the `fleet_soak` binary).
//!
//! One fixed-seed scenario, the full stack: a 4-device fleet (one
//! compromised, one behind a lossy radio that heals mid-run) under a
//! per-round forgery flood, driven by the verifier-side fleet controller
//! with admission control on every prover. The invariants are the
//! robustness story in one assertion each: batteries stay above the
//! floor, honest devices attest, breakers re-close when faults clear,
//! compromised devices are quarantined.

use proverguard_adversary::soak::{run_soak, DeviceRole, SoakConfig};

#[test]
fn ci_soak_holds_every_liveness_invariant() {
    let cfg = SoakConfig::ci();
    let report = run_soak(&cfg).expect("ci soak provisions");

    assert!(
        report.liveness_ok(),
        "liveness violations: {:#?}",
        report.violations
    );
    assert_eq!(report.devices.len(), 4);
    assert_eq!(report.rounds, 10);
    assert!(report.total_flood >= 400, "flood never ran");
    assert!(report.total_successes > 0);

    for device in &report.devices {
        match device.role {
            DeviceRole::Compromised => {
                // Quarantined: never verified, breaker tripped, and the
                // health score collapsed.
                assert_eq!(device.successes, 0);
                assert!(device.breaker_trips >= 1);
                assert!(device.health_score < 0.5);
            }
            DeviceRole::Faulty => {
                // Attested despite the lossy radio, and once the faults
                // cleared the breaker ended the run closed.
                assert!(device.successes >= 1);
                assert!(device.breaker_closed);
            }
            DeviceRole::Honest => {
                assert!(device.successes >= 1);
                assert!(device.breaker_closed);
                assert!(device.health_score > 0.5);
            }
            DeviceRole::Transient => unreachable!("ci() has no transient devices"),
        }
        // The admission bucket kept every battery near full even though
        // every device ate the whole flood.
        assert!(
            device.min_battery_fraction >= cfg.energy_floor_fraction,
            "device {} fell to {}",
            device.index,
            device.min_battery_fraction
        );
    }
}

#[test]
fn ci_history_soak_catches_transient_malware() {
    // The epoch-log gate: a History-mostly scope policy over a segmented
    // fleet, with one device running infect/act/restore strikes between
    // rounds. Every digest that device ever presents verifies — the only
    // evidence is the authenticated modified set, and the soak grades that
    // it was seen (and that no honest device was falsely flagged).
    let cfg = SoakConfig::ci_history();
    let report = run_soak(&cfg).expect("ci history soak provisions");

    assert!(
        report.liveness_ok(),
        "liveness violations: {:#?}",
        report.violations
    );
    assert_eq!(report.devices.len(), 5);

    let transient: Vec<_> = report
        .devices
        .iter()
        .filter(|d| d.role == DeviceRole::Transient)
        .collect();
    assert_eq!(transient.len(), 1);
    assert!(
        transient[0].successes >= 1,
        "restored memory keeps verifying — the attack beats content sweeps"
    );
    assert!(
        transient[0].toctou_flags >= 1,
        "the write events must surface through the History rounds"
    );
    for device in &report.devices {
        if device.role != DeviceRole::Transient {
            assert_eq!(
                device.toctou_flags, 0,
                "false TOCTOU alarm on device {}",
                device.index
            );
        }
    }
}
