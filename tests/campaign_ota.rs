//! End-to-end OTA campaign mechanics on the *real* prover stack: the
//! segment-cache invalidation regression, the gateway `Command`/`Receipt`
//! wire round-trip, and the torn-flash property (a reboot at an
//! arbitrary byte offset mid-flash never yields a valid MAC for either
//! image, and the campaign layer routes it to retry — not rollback, not
//! healthy).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;

use proverguard_adversary::toctou::immutable_segments;
use proverguard_attest::campaign::{
    CampaignAction, CampaignConfig, CampaignController, DeviceOutcome, DeviceState,
};
use proverguard_attest::freshness::{patch_expected_command_counter, patch_expected_image};
use proverguard_attest::gateway::{DeviceDirectory, GatewayMsg, ProverAgent};
use proverguard_attest::imagecache::ImageCache;
use proverguard_attest::persist::InMemoryNvStore;
use proverguard_attest::prover::{BootHealth, Prover, ProverConfig};
use proverguard_attest::segcache::segment_digests;
use proverguard_attest::services::{updated_flash_digest, Command};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_attest::AttestError;
use proverguard_mcu::map;
use proverguard_transport::{Acceptor, LoopbackHub, DEFAULT_MAX_FRAME};

const KEY: [u8; 16] = [0x42; 16];

/// The campaign's starting image — every byte non-zero, so a torn
/// prefix-over-zeros can never alias it.
fn old_image() -> Vec<u8> {
    (0..64u32).map(|i| 0x11 + (i % 200) as u8).collect()
}

/// The rollout target — longer, different, every byte non-zero.
fn new_image() -> Vec<u8> {
    (0..96u32)
        .map(|i| 0x91_u8.wrapping_add((i % 100) as u8) | 1)
        .collect()
}

/// Provisions a prover + verifier pair on `image` with an update
/// journal attached (the OTA-managed configuration).
fn managed_pair(config: ProverConfig, image: &[u8]) -> (Prover, Verifier) {
    let mut prover = Prover::provision(config.clone(), &KEY, image).expect("provision");
    prover
        .attach_update_journal(Box::new(InMemoryNvStore::new()))
        .expect("journal");
    let verifier = Verifier::new(&config, &KEY).expect("verifier");
    (prover, verifier)
}

/// Drives one `UpdateFirmware` through the real command pipeline and
/// checks the receipt.
fn update(prover: &mut Prover, verifier: &mut Verifier, image: &[u8]) -> Result<(), AttestError> {
    let request = verifier.make_command(Command::UpdateFirmware {
        image: image.to_vec(),
    });
    let command = request.command.clone();
    let receipt = prover.handle_command(&request)?;
    assert!(
        verifier.check_command_receipt(&receipt, &command, &updated_flash_digest(image)),
        "update receipt must verify against the post-update flash digest"
    );
    Ok(())
}

/// One attestation round against the prover's live RAM (ground truth).
fn attest_ok(prover: &mut Prover, verifier: &mut Verifier) -> bool {
    let request = verifier.make_request().expect("request");
    let response = prover.handle_request(&request).expect("accepted");
    verifier.check_response(&request, &response, prover.expected_memory())
}

// ---------------------------------------------------------------------------
// Satellite 1 regression: a successful update must invalidate the
// prover's segment-digest cache.
// ---------------------------------------------------------------------------

/// Attest (old image) → UpdateFirmware → attest (new image), on the
/// segmented prover. The firmware DMA fills the RAM mirror *behind* the
/// dirty tracker, so without the explicit post-update invalidation the
/// second attestation serves stale cached digests for the mirror
/// segments and fails verification.
#[test]
fn update_invalidates_segment_cache() {
    let (mut prover, mut verifier) =
        managed_pair(ProverConfig::recommended_segmented(), &old_image());

    // Round 1: warm the cache over the pre-update RAM.
    assert!(attest_ok(&mut prover, &mut verifier), "pre-update attest");

    // The update DMA-installs the new image's RAM mirror.
    update(&mut prover, &mut verifier, &new_image()).expect("update");

    // Round 2: the response must reflect the *new* RAM — and the cache
    // must agree with a from-scratch recomputation.
    assert!(
        attest_ok(&mut prover, &mut verifier),
        "post-update attest must verify against the updated RAM mirror"
    );
    let cache = prover.segment_cache().expect("segmented prover");
    let oracle = segment_digests(prover.expected_memory(), cache.segment_len());
    assert_eq!(
        cache.all().expect("cache complete"),
        oracle,
        "segment cache must have recomputed the mirror segments"
    );

    // And the mirror region really is the new image.
    let mirror_off = (map::APP_IMAGE_MIRROR.start - map::RAM.start) as usize;
    let ram = prover.expected_memory();
    assert_eq!(
        &ram[mirror_off..mirror_off + new_image().len()],
        &new_image()[..],
        "RAM mirror must hold the new image after the update"
    );
}

// ---------------------------------------------------------------------------
// Satellite regression: the update DMA bypasses the per-write epoch
// tracker, so the commit path must bump the epochs of every covered
// segment explicitly — otherwise a later History round would report the
// freshly flashed mirror as "unmodified since before the update".
// ---------------------------------------------------------------------------

/// One full History-policy attestation round, including the verifier
/// bookkeeping a session link performs.
fn history_round(prover: &mut Prover, verifier: &mut Verifier) -> bool {
    let request = verifier.make_request().expect("request");
    let Ok(response) = prover.handle_request(&request) else {
        verifier.note_failed(&request);
        return false;
    };
    let expected = prover.expected_memory().to_vec();
    let ok = verifier.check_response(&request, &response, &expected);
    if ok {
        verifier.note_verified(&request, &response, &expected);
    } else {
        verifier.note_failed(&request);
    }
    ok
}

#[test]
fn update_bumps_mirror_segment_epochs() {
    let (mut prover, mut verifier) =
        managed_pair(ProverConfig::recommended_segmented(), &old_image());
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
    let seg_len = prover.segment_cache().expect("segmented").segment_len() as u32;

    // Bootstrap, then a quiescent round: the mirror drops out of the
    // modified set once a verified baseline exists.
    assert!(history_round(&mut prover, &mut verifier), "bootstrap");
    assert!(history_round(&mut prover, &mut verifier), "quiescent");
    let quiescent = verifier.last_history().expect("history outcome");
    for seg in immutable_segments(seg_len) {
        assert!(
            !quiescent.modified.contains(&seg),
            "quiescent round must not report mirror segment {seg} modified"
        );
    }

    // The update DMA-installs the new mirror behind the write tracker.
    update(&mut prover, &mut verifier, &new_image()).expect("update");

    // The next History round must expose every mirror segment as written
    // — and still verify, because the recomputed digests cover the new
    // image.
    assert!(history_round(&mut prover, &mut verifier), "post-update");
    let outcome = verifier.last_history().expect("history outcome");
    for seg in immutable_segments(seg_len) {
        assert!(
            outcome.modified.contains(&seg),
            "update must bump the epoch of mirror segment {seg}; modified = {:?}",
            outcome.modified
        );
    }
}

#[test]
fn torn_flash_recovery_boot_bumps_epochs() {
    let (mut prover, mut verifier) =
        managed_pair(ProverConfig::recommended_segmented(), &old_image());
    prover.attach_epoch_log_store(Box::new(InMemoryNvStore::new()));
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
    update(&mut prover, &mut verifier, &old_image()).expect("baseline update");
    assert!(history_round(&mut prover, &mut verifier), "bootstrap");
    assert!(history_round(&mut prover, &mut verifier), "quiescent");

    // Power dies mid-flash; the reboot lands in recovery with a torn
    // mirror installed by the boot path's DMA — again behind the tracker.
    prover.inject_update_tear(17);
    let request = verifier.make_command(Command::UpdateFirmware { image: new_image() });
    match prover.handle_command(&request) {
        Err(AttestError::PowerLoss) => {}
        other => panic!("expected PowerLoss, got {other:?}"),
    }
    prover.reboot().expect("reboot");
    assert_eq!(prover.boot_health(), BootHealth::Recovery);

    // The sealed epoch log restored across the reboot (no History
    // suspension), and the boot-time restore conservatively stamps every
    // segment — so the torn mirror cannot hide behind a stale epoch.
    assert!(!prover.history_suspended(), "sealed log must restore");
    assert!(
        history_round(&mut prover, &mut verifier),
        "recovery device answers honestly about its torn mirror"
    );
    let outcome = verifier.last_history().expect("history outcome");
    let seg_len = prover.segment_cache().expect("segmented").segment_len() as u32;
    for seg in immutable_segments(seg_len) {
        assert!(
            outcome.modified.contains(&seg),
            "recovery boot must report mirror segment {seg} modified"
        );
    }
}

// ---------------------------------------------------------------------------
// Gateway wire round-trip: Command frame in, Receipt frame out, then an
// attestation of the new image over the same connection.
// ---------------------------------------------------------------------------

#[test]
fn gateway_command_roundtrip_updates_and_reattests() {
    let (prover, _) = managed_pair(ProverConfig::recommended(), &old_image());
    let mut directory = DeviceDirectory::new();
    let verifier_for_registry =
        Verifier::new(&ProverConfig::recommended(), &KEY).expect("verifier");
    let device_id = directory.register(verifier_for_registry, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::new(prover, device_id);

    // Campaign side keeps its own verifier (the directory's copy is for
    // gateway-driven sessions; this test drives the frames by hand).
    let mut verifier = Verifier::new(&ProverConfig::recommended(), &KEY).expect("verifier");

    let (mut hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let agent_join = thread::spawn(move || {
        let mut conn = connector.connect().expect("connect");
        let outcome = agent.run_session(&mut conn, Duration::from_secs(5));
        (agent, outcome)
    });

    let mut conn = hub
        .poll_accept(Duration::from_secs(5))
        .expect("accept")
        .expect("connection");
    conn.set_deadline(Some(Duration::from_secs(5)))
        .expect("deadline");

    // Hello identifies the device.
    let hello = GatewayMsg::decode(&conn.recv().expect("hello")).expect("decode");
    assert_eq!(hello, GatewayMsg::Hello { device_id });

    // Command frame → Receipt frame.
    let request = verifier.make_command(Command::UpdateFirmware { image: new_image() });
    let command = request.command.clone();
    conn.send(&GatewayMsg::Command(request.to_bytes()).encode())
        .expect("send command");
    let receipt = match GatewayMsg::decode(&conn.recv().expect("receipt")).expect("decode") {
        GatewayMsg::Receipt(raw) => {
            proverguard_attest::services::CommandReceipt::from_bytes(&raw).expect("receipt bytes")
        }
        other => panic!("expected Receipt, got {other:?}"),
    };
    assert!(
        verifier.check_command_receipt(&receipt, &command, &updated_flash_digest(&new_image())),
        "wire receipt must verify against the new image digest"
    );

    // Fresh attestation over the same connection: the gating step of the
    // campaign. The response covers the *new* RAM mirror.
    let att_request = verifier.make_request().expect("request");
    conn.send(&GatewayMsg::AttReq(att_request.to_bytes()).encode())
        .expect("send attreq");
    let response = match GatewayMsg::decode(&conn.recv().expect("attresp")).expect("decode") {
        GatewayMsg::AttResp(raw) => {
            proverguard_attest::message::AttestResponse::from_bytes(&raw).expect("response bytes")
        }
        other => panic!("expected AttResp, got {other:?}"),
    };
    conn.send(&GatewayMsg::Bye { verified: true }.encode())
        .expect("send bye");

    let (agent, outcome) = agent_join.join().expect("agent thread");
    assert!(outcome.is_verified(), "agent must see the verified Bye");
    assert!(
        verifier.check_response(&att_request, &response, agent.prover().expected_memory()),
        "post-update attestation must verify over the wire"
    );
    // The device's trust root rotated to the new image.
    assert_eq!(
        agent.prover().boot_reference(),
        &updated_flash_digest(&new_image())
    );
}

// ---------------------------------------------------------------------------
// Satellite 3: torn flash — power loss at an arbitrary byte offset.
// ---------------------------------------------------------------------------

/// Builds the "expected RAM for image X" twin: a managed prover that
/// took the same update path as the device under test, without the tear.
fn twin_expected_ram(image: &[u8]) -> Vec<u8> {
    let (mut prover, mut verifier) = managed_pair(ProverConfig::recommended(), &old_image());
    update(&mut prover, &mut verifier, image).expect("twin update");
    prover.expected_memory().to_vec()
}

/// Copies device-truth words (freshness counter via the request field,
/// command counter and clock words from the live RAM) into a twin's
/// expected image, leaving the app-image mirror as the only possible
/// difference.
fn align_expected(
    expected: &mut [u8],
    device_ram: &[u8],
    field: &proverguard_attest::message::FreshnessField,
) {
    patch_expected_image(expected, field);
    let cmd_off = (map::TRUST_STATE.start + 16 - map::RAM.start) as usize;
    let mut word = [0u8; 8];
    word.copy_from_slice(&device_ram[cmd_off..cmd_off + 8]);
    patch_expected_command_counter(expected, u64::from_le_bytes(word));
    // Clock offset + sync words (never synced here, but align anyway).
    let ts_off = (map::TRUST_STATE.start - map::RAM.start) as usize;
    expected[ts_off..ts_off + 16].copy_from_slice(&device_ram[ts_off..ts_off + 16]);
}

fn run_torn_flash_case(tear_at: usize) {
    let old = old_image();
    let new = new_image();
    let (mut prover, mut verifier) = managed_pair(ProverConfig::recommended(), &old);

    // Establish the OTA-managed baseline: one clean update to the old
    // image installs the RAM mirror, so from here on every attestation
    // is coupled to the flash contents.
    update(&mut prover, &mut verifier, &old).expect("baseline update");

    // Power dies `tear_at` bytes into programming the new image.
    prover.inject_update_tear(tear_at);
    let request = verifier.make_command(Command::UpdateFirmware { image: new.clone() });
    match prover.handle_command(&request) {
        Err(AttestError::PowerLoss) => {}
        other => panic!("expected PowerLoss, got {other:?}"),
    }

    // The reboot lands in recovery: the journal says in-progress but the
    // flash digest matches neither image.
    prover.reboot().expect("reboot");
    assert_eq!(prover.boot_health(), BootHealth::Recovery);

    // The recovery-booted device attests honestly — over the *torn*
    // mirror. Sanity: the MAC is valid for what the device actually is.
    let att = verifier.make_request().expect("request");
    let resp = prover.handle_request(&att).expect("recovery attest");
    assert!(
        verifier.check_response(&att, &resp, prover.expected_memory()),
        "the torn device still answers honestly about itself"
    );

    // ...but never as the OLD image...
    let mut expected_old = twin_expected_ram(&old);
    align_expected(&mut expected_old, prover.expected_memory(), &att.freshness);
    assert!(
        !verifier.check_response(&att, &resp, &expected_old),
        "tear at {tear_at}: torn flash must not attest as the old image"
    );

    // ...and never as the NEW image.
    let mut expected_new = twin_expected_ram(&new);
    align_expected(&mut expected_new, prover.expected_memory(), &att.freshness);
    assert!(
        !verifier.check_response(&att, &resp, &expected_new),
        "tear at {tear_at}: torn flash must not attest as the new image"
    );

    // Positive control: with the mirror region also copied from the
    // device, the aligned expectation verifies — proving the mirror was
    // the *only* difference above.
    let mirror = (map::APP_IMAGE_MIRROR.start - map::RAM.start) as usize;
    let mirror_len = map::APP_IMAGE_MIRROR.len() as usize;
    let mut expected_torn = expected_old.clone();
    expected_torn[mirror..mirror + mirror_len]
        .copy_from_slice(&prover.expected_memory()[mirror..mirror + mirror_len]);
    assert!(
        verifier.check_response(&att, &resp, &expected_torn),
        "tear at {tear_at}: the torn mirror must be the only divergence"
    );

    // The retry (with a fresh command counter) completes the rollout.
    update(&mut prover, &mut verifier, &new).expect("retry update");
    assert_eq!(prover.boot_health(), BootHealth::Healthy);
    assert_eq!(prover.boot_reference(), &updated_flash_digest(&new));
    assert!(
        attest_ok(&mut prover, &mut verifier),
        "tear at {tear_at}: the retried update must attest clean"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reboot at an arbitrary byte offset strictly inside the program
    /// sequence: the torn image never attests as either image, and the
    /// retry converges. (Offset == image length is a *complete* program
    /// whose commit record was lost — the journal completes it at boot,
    /// covered by the unit tests.)
    #[test]
    fn torn_flash_never_attests_as_either_image(tear_at in 1usize..96) {
        run_torn_flash_case(tear_at);
    }
}

/// Boundary offsets, pinned (not sampled): first byte, last byte.
#[test]
fn torn_flash_boundary_offsets() {
    run_torn_flash_case(1);
    run_torn_flash_case(new_image().len() - 1);
}

/// The campaign layer routes a torn flash to *retry* — never to
/// rollback, never to healthy.
#[test]
fn campaign_routes_torn_flash_to_retry() {
    let mut controller = CampaignController::new(1, CampaignConfig::default());
    let actions = controller.tick(0);
    assert_eq!(actions.len(), 1);
    assert!(matches!(actions[0], CampaignAction::SendUpdate { .. }));
    controller.report(0, DeviceOutcome::UpdateTorn, 0);
    match controller.device_state(0) {
        DeviceState::Torn { .. } => {}
        other => panic!("torn flash must park in Torn (retry), got {other:?}"),
    }
    // The next tick retries the update on the same device.
    let actions = controller.tick(1);
    assert_eq!(actions.len(), 1);
    assert!(
        matches!(actions[0], CampaignAction::SendUpdate { .. }),
        "torn flash must be retried with a fresh UpdateFirmware"
    );
}

// ---------------------------------------------------------------------------
// Fleet digest cache: campaign retargets must invalidate superseded
// baselines, a rollback must never verify against stale cached digests,
// and History rounds always consult post-epoch expectations.
// ---------------------------------------------------------------------------

/// One directory-mediated attestation round against the device's live
/// state — the exact code path both gateway drivers use, shared digest
/// cache included.
fn directory_round(directory: &DeviceDirectory, id: u64, prover: &mut Prover) -> bool {
    let request = directory
        .with_verifier(id, |v| v.make_request())
        .expect("registered")
        .expect("request");
    match prover.handle_request(&request) {
        Ok(response) => directory
            .verify_response(id, &request, &response)
            .expect("registered"),
        Err(_) => {
            directory.with_verifier(id, |v| v.note_failed(&request));
            false
        }
    }
}

/// Builds the verifier-side "expected RAM for image X" twin, then copies
/// the device-truth trust words (clock + command counter) over from the
/// live RAM so the app-image mirror is the only intended difference.
/// (The freshness word is patched per request by the directory itself.)
fn retarget_expectation(image: &[u8], device_ram: &[u8]) -> Vec<u8> {
    let (mut twin, mut twin_verifier) =
        managed_pair(ProverConfig::recommended_segmented(), &old_image());
    update(&mut twin, &mut twin_verifier, image).expect("twin update");
    let mut expected = twin.expected_memory().to_vec();
    let ts_off = (map::TRUST_STATE.start - map::RAM.start) as usize;
    expected[ts_off..ts_off + 24].copy_from_slice(&device_ram[ts_off..ts_off + 24]);
    expected
}

/// A campaign halt rolls the *expectation* back to the old image while
/// the device still runs the new one: the cached digest vector of the
/// superseded baseline must not vouch for the device. Once the device
/// executes the rollback for real, the freshly retargeted expectation
/// verifies — from digests computed over the old baseline, not recalled
/// from any stale cache slot.
#[test]
fn rollback_never_verifies_against_stale_cached_digests() {
    let old = old_image();
    let new = new_image();
    let (mut prover, mut verifier) = managed_pair(ProverConfig::recommended_segmented(), &old);
    update(&mut prover, &mut verifier, &old).expect("baseline update");
    update(&mut prover, &mut verifier, &new).expect("rollout update");

    let cache = Arc::new(ImageCache::new(4));
    let mut directory = DeviceDirectory::with_cache(Arc::clone(&cache));
    let id = directory.register(verifier, prover.expected_memory().to_vec());

    // Warm the shared cache over the rolled-out (new) expectation.
    assert!(
        directory_round(&directory, id, &mut prover),
        "device on the new image verifies against the new expectation"
    );

    // The campaign halts: expectation returns to OLD. The device has NOT
    // rolled back yet.
    let expected_old = retarget_expectation(&old, prover.expected_memory());
    assert!(directory.set_expected_memory(id, expected_old));
    assert!(
        !directory_round(&directory, id, &mut prover),
        "device still on the new image must fail the rolled-back expectation"
    );

    // The device executes the rollback through the directory's own
    // verifier, keeping the command counters in lockstep...
    directory
        .with_verifier(id, |v| {
            let request = v.make_command(Command::UpdateFirmware { image: old.clone() });
            let command = request.command.clone();
            let receipt = prover.handle_command(&request).expect("rollback update");
            assert!(
                v.check_command_receipt(&receipt, &command, &updated_flash_digest(&old)),
                "rollback receipt must verify against the old image digest"
            );
        })
        .expect("registered");

    // ...and the re-aligned old expectation verifies the real rollback.
    let expected_old = retarget_expectation(&old, prover.expected_memory());
    assert!(directory.set_expected_memory(id, expected_old));
    assert!(
        directory_round(&directory, id, &mut prover),
        "rolled-back device verifies against freshly computed old digests"
    );

    let stats = cache.stats();
    assert!(
        stats.invalidations >= 1,
        "superseded baselines must be invalidated on retarget: {stats:?}"
    );
    assert!(stats.conservation_holds(), "{stats:?}");
}

/// History rounds across a campaign retarget: the update DMA bumps the
/// mirror segments' epochs, the device reports them modified, and the
/// verifier must recompute those digests from the *new* baseline — any
/// stale pre-epoch digest vector surviving the retarget would fail the
/// response MAC here.
#[test]
fn history_rounds_consult_post_epoch_digests_after_retarget() {
    let old = old_image();
    let new = new_image();
    let (mut prover, mut verifier) = managed_pair(ProverConfig::recommended_segmented(), &old);
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
    update(&mut prover, &mut verifier, &old).expect("baseline update");
    let seg_len = prover.segment_cache().expect("segmented").segment_len() as u32;

    let cache = Arc::new(ImageCache::new(4));
    let mut directory = DeviceDirectory::with_cache(Arc::clone(&cache));
    let id = directory.register(verifier, prover.expected_memory().to_vec());

    assert!(
        directory_round(&directory, id, &mut prover),
        "bootstrap round"
    );
    assert!(
        directory_round(&directory, id, &mut prover),
        "quiescent history round"
    );

    // The campaign pushes the new image through the directory's verifier
    // and retargets the expectation to match.
    directory
        .with_verifier(id, |v| {
            let request = v.make_command(Command::UpdateFirmware { image: new.clone() });
            let command = request.command.clone();
            let receipt = prover.handle_command(&request).expect("campaign update");
            assert!(
                v.check_command_receipt(&receipt, &command, &updated_flash_digest(&new)),
                "campaign receipt must verify against the new image digest"
            );
        })
        .expect("registered");
    let expected_new = retarget_expectation(&new, prover.expected_memory());
    assert!(directory.set_expected_memory(id, expected_new));

    // Post-retarget History round: verifies, with every mirror segment in
    // the authenticated modified set.
    assert!(
        directory_round(&directory, id, &mut prover),
        "post-retarget history round must verify from post-epoch digests"
    );
    let modified = directory
        .with_verifier(id, |v| {
            v.last_history().expect("history outcome").modified.clone()
        })
        .expect("registered");
    for seg in immutable_segments(seg_len) {
        assert!(
            modified.contains(&seg),
            "mirror segment {seg} must be in the modified set; got {modified:?}"
        );
    }

    let stats = cache.stats();
    assert!(
        stats.invalidations >= 1,
        "the pre-update baseline must be invalidated on retarget: {stats:?}"
    );
    assert!(stats.conservation_holds(), "{stats:?}");
}
