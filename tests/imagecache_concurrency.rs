//! Both gateway drivers hammering ONE shared [`ImageCache`] across three
//! firmware versions: every honest session must verify and the
//! image-mismatched device must fail — exactly the verdicts a
//! single-threaded run produces — while the cache's conservation law
//! holds and the distinct-key count stays pinned at the number of real
//! firmware images. A second test freezes the steady-state economics:
//! after registration, attestation rounds must not rebuild per-device
//! scratch images or miss the cache at all (the per-attempt
//! full-image-clone regression).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayReport, IoDriver, ProverAgent,
};
use proverguard_attest::imagecache::ImageCache;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::map;
use proverguard_transport::{LoopbackConnector, LoopbackHub, Transport, DEFAULT_MAX_FRAME};

const KEY: [u8; 16] = [0x42; 16];
const IMAGES: usize = 3;
const PER_IMAGE: usize = 2;
const ROUNDS: usize = 2;

/// Provisions a device running firmware version `image`: the attested
/// memory is RAM, so the versions are distinguished by the payload the
/// application installs into app RAM (the flash app bytes are identical
/// across the fleet and never attested).
fn provision(image: usize) -> (Prover, Verifier) {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"fleet boot").expect("provision");
    let payload = vec![0xA0 + image as u8; 4 * 1024];
    prover
        .mcu_mut()
        .bus_write(map::APP_RAM.start, &payload, map::APP_CODE)
        .expect("install firmware payload");
    let verifier = Verifier::new(&config, &KEY).expect("verifier");
    (prover, verifier)
}

fn patient() -> RetryPolicy {
    RetryPolicy {
        timeout_ms: 10_000,
        max_retries: 40,
        backoff_base_ms: 5,
        backoff_factor: 1,
        jitter_per_mille: 500,
        jitter_seed: 0xcac_4e01,
    }
}

/// One attempt only: a wrong-image device is *expected* to fail, and
/// `BadResponse` is a definitive protocol verdict, not a transport flake.
fn impatient() -> RetryPolicy {
    RetryPolicy {
        max_retries: 0,
        ..patient()
    }
}

fn dial(
    connector: &LoopbackConnector,
) -> impl FnMut() -> Result<Box<dyn Transport>, proverguard_transport::TransportError> + '_ {
    move || {
        connector
            .connect()
            .map(|conn| Box::new(conn) as Box<dyn Transport>)
    }
}

/// Runs one gateway (whatever driver `config` selects) against a fleet of
/// `PER_IMAGE` honest devices per firmware image plus one device secretly
/// running different firmware than its registered expectation. Returns
/// the shutdown report; panics if any verdict deviates from the
/// single-threaded expectation (honest verify, impostor fails).
fn run_driver(config: GatewayConfig, cache: Arc<ImageCache>) -> GatewayReport {
    let mut directory = DeviceDirectory::with_cache(cache);
    let mut honest = Vec::new();
    for image in 0..IMAGES {
        for _ in 0..PER_IMAGE {
            let (prover, verifier) = provision(image);
            let id = directory.register(verifier, prover.expected_memory().to_vec());
            honest.push(ProverAgent::new(prover, id));
        }
    }
    // The impostor's RAM diverges from the version-0 expectation it was
    // registered under — a stale cached digest vector letting this
    // through is the exact bug class the shared cache must not add.
    let (mut evil, evil_verifier) = provision(0);
    let expected_a = evil.expected_memory().to_vec();
    evil.mcu_mut()
        .bus_write(map::APP_RAM.start + 64, b"malware", map::APP_CODE)
        .expect("inject divergence");
    let evil_id = directory.register(evil_verifier, expected_a);
    let mut evil_agent = ProverAgent::new(evil, evil_id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(Box::new(hub), directory, config);

    let pins: Vec<_> = honest
        .into_iter()
        .map(|mut agent| {
            let connector = connector.clone();
            thread::spawn(move || {
                (0..ROUNDS).all(|_| {
                    agent
                        .attest_with_retry(
                            dial(&connector),
                            &patient(),
                            Duration::from_secs(30),
                            50,
                        )
                        .is_verified()
                })
            })
        })
        .collect();
    let evil_outcome =
        evil_agent.attest_with_retry(dial(&connector), &impatient(), Duration::from_secs(30), 50);
    assert!(
        !evil_outcome.is_verified(),
        "wrong-image device must fail even with a hot shared cache: {evil_outcome:?}"
    );
    for (p, pin) in pins.into_iter().enumerate() {
        assert!(
            pin.join().expect("session thread panicked"),
            "honest device {p} must verify every round"
        );
    }
    handle.shutdown()
}

/// Thread-pool and reactor drivers run concurrently against the same
/// shared cache. Verdicts match the single-threaded expectation on both
/// sides, and afterwards the cache satisfies its conservation law with
/// exactly three distinct keys — the impostor's firmware is never
/// interned, because only *registered expectations* enter the cache.
#[test]
fn both_drivers_share_one_cache_across_three_images() {
    let cache = Arc::new(ImageCache::new(8));

    let pool_config = GatewayConfig {
        workers: 4,
        queue_depth: 16,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            ..GatewayConfig::default().retry
        },
        ..GatewayConfig::default()
    };
    let reactor_config = GatewayConfig {
        io_driver: IoDriver::Reactor,
        reactor_shards: 2,
        max_conns_per_shard: 64,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            ..GatewayConfig::default().retry
        },
        ..GatewayConfig::default()
    };

    let pool_cache = Arc::clone(&cache);
    let pool = thread::spawn(move || run_driver(pool_config, pool_cache));
    let reactor_report = run_driver(reactor_config, Arc::clone(&cache));
    let pool_report = pool.join().expect("thread-pool driver panicked");

    let fleet = (IMAGES * PER_IMAGE * ROUNDS) as u64;
    for (driver, report) in [("pool", &pool_report), ("reactor", &reactor_report)] {
        assert_eq!(
            report.stats.sessions_ok, fleet,
            "{driver}: every honest round books a verified session: {:?}",
            report.stats
        );
        assert!(
            report.stats.partition_holds(),
            "{driver}: partition law violated: {:?}",
            report.stats
        );
    }

    let stats = cache.stats();
    assert!(
        stats.conservation_holds(),
        "conservation law violated: {stats:?}"
    );
    assert_eq!(
        stats.distinct_keys, 3,
        "three firmware images, three keys — twins and drivers share: {stats:?}"
    );
    // Two drivers may race on the first interning of a key (both miss,
    // one slot survives), so misses are bounded by key × driver, never
    // by attempt count.
    assert!(
        (3..=6).contains(&stats.misses),
        "misses must stay bounded by keys × racing drivers: {stats:?}"
    );
    assert_eq!(stats.evictions, 0, "capacity 8 never evicts 3 live images");
    // 7 registrations per driver, each building one persistent scratch.
    assert_eq!(
        stats.scratch_rebuilds, 14,
        "scratch is built once per registration, never per attempt: {stats:?}"
    );
    assert!(
        stats.hits > stats.misses,
        "a same-image fleet must be hit-dominated: {stats:?}"
    );
}

/// The per-attempt full-image-clone regression, frozen as cache
/// economics: once a fleet is registered, steady-state attestation
/// rounds perform zero scratch rebuilds and zero cache misses — every
/// attempt is a hit against the interned baseline, and the per-device
/// scratch is patched in place rather than re-allocated.
#[test]
fn steady_state_rounds_never_rebuild_or_miss() {
    const FLEET: usize = 4;
    let cache = Arc::new(ImageCache::new(4));
    let mut directory = DeviceDirectory::with_cache(Arc::clone(&cache));
    let mut agents = Vec::new();
    for _ in 0..FLEET {
        let (prover, verifier) = provision(0);
        let id = directory.register(verifier, prover.expected_memory().to_vec());
        agents.push(ProverAgent::new(prover, id));
    }

    let after_registration = cache.stats();
    assert_eq!(after_registration.scratch_rebuilds, FLEET as u64);
    assert_eq!(after_registration.distinct_keys, 1);
    assert_eq!(cache.len(), 1, "one image, one interned baseline");

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let config = GatewayConfig {
        workers: 2,
        queue_depth: 8,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            ..GatewayConfig::default().retry
        },
        ..GatewayConfig::default()
    };
    let handle = Gateway::start(Box::new(hub), directory, config);

    let pins: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            let connector = connector.clone();
            thread::spawn(move || {
                (0..ROUNDS).all(|_| {
                    agent
                        .attest_with_retry(
                            dial(&connector),
                            &patient(),
                            Duration::from_secs(30),
                            50,
                        )
                        .is_verified()
                })
            })
        })
        .collect();
    for pin in pins {
        assert!(pin.join().expect("session thread panicked"));
    }
    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_ok, (FLEET * ROUNDS) as u64);

    let steady = cache.stats() - after_registration;
    assert_eq!(
        steady.scratch_rebuilds, 0,
        "attestation rounds must never rebuild scratch images: {steady:?}"
    );
    assert_eq!(
        steady.misses, 0,
        "steady-state rounds must never miss the cache: {steady:?}"
    );
    assert!(
        steady.hits >= (FLEET * ROUNDS) as u64,
        "each attempt is one cache hit: {steady:?}"
    );
    assert_eq!(steady.lookups, steady.hits, "steady state is all hits");
    assert!(cache.stats().conservation_holds());
}
