//! Property test for incremental segmented attestation: under arbitrary
//! interleavings of application writes, attestations, reboots, EA-MPU
//! probe attempts, cache clears and clock glitches, the digest list the
//! prover serves from its dirty-bit-invalidated cache must equal a
//! from-scratch recomputation over the device's actual RAM — and the
//! verifier, who always recomputes from scratch, must accept every
//! report. Caching is an optimization; this is the proof it is *only*
//! an optimization.

use proptest::prelude::*;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::{segment_digests, SegmentedParams};
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::map;

const KEY: [u8; 16] = [0x5A; 16];

/// Segment lengths exercised, from the 64-byte hardware minimum's near
/// neighbourhood up to coarse 64 KiB segments.
const SEGMENT_LENS: [u32; 4] = [4 * 1024, 8 * 1024, 16 * 1024, 64 * 1024];

fn pair(segment_len: u32) -> (Prover, Verifier) {
    let config = ProverConfig {
        segmented: Some(SegmentedParams { segment_len }),
        ..ProverConfig::recommended()
    };
    let prover = Prover::provision(config.clone(), &KEY, b"segcache coherence").expect("provision");
    let verifier = Verifier::new(&config, &KEY).expect("verifier");
    (prover, verifier)
}

/// One attestation round plus the coherence oracle: the response must
/// verify, and every digest the prover now caches must equal the
/// from-scratch digest of the same segment of the real RAM.
fn attest_and_check(prover: &mut Prover, verifier: &mut Verifier) -> Result<(), String> {
    let request = verifier.make_request().map_err(|e| e.to_string())?;
    let response = prover.handle_request(&request).map_err(|e| e.to_string())?;
    if !verifier.check_response(&request, &response, prover.expected_memory()) {
        return Err("segmented response failed verification".to_string());
    }
    let cache = prover.segment_cache().expect("segmented prover");
    let oracle = segment_digests(prover.expected_memory(), cache.segment_len());
    let cached = cache
        .all()
        .ok_or_else(|| "cache incomplete after attestation".to_string())?;
    if cached != oracle {
        return Err("cached digests diverge from from-scratch recomputation".to_string());
    }
    // Cost accounting must stay partition-exact under every interleaving.
    let cost = prover.last_cost();
    let total = cost.mac_recomputed_segments as usize + cost.mac_cached_segments as usize;
    if total != cache.segment_count() {
        return Err(format!(
            "recomputed {} + cached {} != {} segments",
            cost.mac_recomputed_segments,
            cost.mac_cached_segments,
            cache.segment_count()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_digests_always_match_from_scratch_recomputation(
        seg_choice in 0usize..4,
        ops in proptest::collection::vec(any::<u64>(), 4..24),
    ) {
        let (mut prover, mut verifier) = pair(SEGMENT_LENS[seg_choice]);

        for word in &ops {
            match word % 7 {
                // Application writes at arbitrary offsets and lengths —
                // including runs that straddle segment boundaries.
                0..=2 => {
                    let span = map::RAM.end - map::APP_RAM.start;
                    let off = map::APP_RAM.start + ((word >> 3) % u64::from(span - 512)) as u32;
                    let len = 1 + ((word >> 40) % 511) as usize;
                    let byte = (word >> 16) as u8;
                    prover
                        .mcu_mut()
                        .bus_write(off, &vec![byte; len], map::APP_CODE)
                        .expect("app RAM is open to app code");
                }
                // Attest: the invariant checkpoint.
                3 => prop_assert_eq!(attest_and_check(&mut prover, &mut verifier), Ok(())),
                // Reboot: RAM wiped, cache dropped; the verifier's counter
                // stays monotonic so the next round is still accepted.
                4 => {
                    prover.reboot().expect("reboot");
                }
                // A compromised app probes the protected counter word —
                // EA-MPU fault, which must poison the cache, not the
                // correctness of later reports.
                5 => {
                    let _ = prover
                        .mcu_mut()
                        .bus_write(map::COUNTER_R.start, &[0xFF; 8], map::APP_CODE);
                }
                // Clock glitch / explicit cache clear.
                _ => {
                    if word & 1 == 0 {
                        prover.advance_time_ms((word >> 8) % 5000).expect("advance");
                    } else {
                        prover.clear_segment_cache();
                    }
                }
            }
        }

        // Always end on an attestation so every generated suffix of
        // writes/faults/reboots is checked at least once.
        prop_assert_eq!(attest_and_check(&mut prover, &mut verifier), Ok(()));
    }

    #[test]
    fn repeat_attestation_without_writes_recomputes_only_counter_segment(
        seg_choice in 0usize..4,
        rounds in 2u64..6,
    ) {
        let (mut prover, mut verifier) = pair(SEGMENT_LENS[seg_choice]);
        prop_assert_eq!(attest_and_check(&mut prover, &mut verifier), Ok(()));
        for _ in 1..rounds {
            prop_assert_eq!(attest_and_check(&mut prover, &mut verifier), Ok(()));
            // Only the freshness commit dirtied anything: exactly the
            // counter_R segment is recomputed, everything else is served
            // from cache.
            prop_assert_eq!(prover.last_cost().mac_recomputed_segments, 1);
        }
    }
}
