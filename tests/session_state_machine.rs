//! Small-model exhaustion of the verifier's session state machine.
//!
//! [`SessionDriver`] is simple enough to model exactly: for a bounded
//! attempt budget we enumerate *every* script of per-attempt outcomes
//! and check the produced [`SessionReport`] against an independent
//! reference model — attempt counts, recorded outcomes, backoff values,
//! recovery-hook invocations and waited time all have to match on all
//! paths, not just the happy one. On top of the abstract model, three
//! concrete behaviours are pinned against real prover/verifier pairs:
//! freshness is never reissued across retries (no protocol state is
//! reachable twice with a different freshness value), `Busy`-style
//! rejects redial on the documented backoff schedule, and a clock-skewed
//! session heals through the `recover` resync hook.

use std::collections::HashMap;

use proverguard_attest::clock::ClockKind;
use proverguard_attest::error::RejectReason;
use proverguard_attest::freshness::FreshnessKind;
use proverguard_attest::message::FreshnessField;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::{
    AttemptOutcome, RetryPolicy, SessionDriver, SessionLink, SessionReport,
};
use proverguard_attest::verifier::Verifier;

const KEY: [u8; 16] = [0x42; 16];

fn pair(config: &ProverConfig) -> (Prover, Verifier) {
    let prover = Prover::provision(config.clone(), &KEY, b"session model").expect("provision");
    let verifier = Verifier::new(config, &KEY).expect("verifier");
    (prover, verifier)
}

// ---- exhaustive abstract model --------------------------------------------

/// The outcome alphabet for the exhaustive sweep. `Success` terminates a
/// run; everything else burns an attempt.
fn outcome_for(digit: usize) -> AttemptOutcome {
    match digit {
        0 => AttemptOutcome::Success,
        1 => AttemptOutcome::RequestLost,
        2 => AttemptOutcome::ResponseLost,
        3 => AttemptOutcome::Rejected(RejectReason::Throttled),
        _ => AttemptOutcome::BadResponse,
    }
}

/// Replays a fixed script of outcomes and records what the driver did to
/// the link.
struct ScriptedLink {
    script: Vec<AttemptOutcome>,
    attempts: usize,
    waited: u64,
    recoveries: Vec<AttemptOutcome>,
}

impl SessionLink for ScriptedLink {
    fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
        let outcome = self.script[self.attempts].clone();
        self.attempts += 1;
        outcome
    }
    fn wait_ms(&mut self, ms: u64) {
        self.waited += ms;
    }
    fn recover(&mut self, failed: &AttemptOutcome) {
        self.recoveries.push(failed.clone());
    }
}

/// The reference model: what the report for `script` under `policy` must
/// look like, computed independently of the driver's control flow.
fn model_report(policy: &RetryPolicy, script: &[AttemptOutcome]) -> SessionReport {
    let total = policy.max_retries + 1;
    let mut report = SessionReport::default();
    for attempt in 1..=total {
        let outcome = script[(attempt - 1) as usize].clone();
        let success = outcome.is_success();
        let last = success || attempt == total;
        report
            .attempts
            .push(proverguard_attest::session::AttemptRecord {
                attempt,
                outcome,
                backoff_ms: if last { 0 } else { policy.backoff_ms(attempt) },
            });
        if success {
            break;
        }
    }
    report
}

#[test]
fn exhaustive_scripts_match_the_reference_model() {
    // Two policies: the no-jitter schedule and a jittered one — the model
    // uses `policy.backoff_ms` itself, so this also pins "the driver waits
    // exactly the jittered value it reports".
    let policies = [
        RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        },
        RetryPolicy {
            max_retries: 3,
            jitter_per_mille: 400,
            jitter_seed: 0x005E_5510,
            ..RetryPolicy::default()
        },
    ];
    for policy in policies {
        let total = (policy.max_retries + 1) as usize;
        let alphabet = 5usize;
        // Every base-5 script of length `total`: 625 runs per policy.
        for code in 0..alphabet.pow(total as u32) {
            let mut digits = code;
            let script: Vec<AttemptOutcome> = (0..total)
                .map(|_| {
                    let d = digits % alphabet;
                    digits /= alphabet;
                    outcome_for(d)
                })
                .collect();

            let mut link = ScriptedLink {
                script: script.clone(),
                attempts: 0,
                waited: 0,
                recoveries: Vec::new(),
            };
            let report = SessionDriver::new(policy).run(&mut link);
            let expected = model_report(&policy, &script);
            assert_eq!(report, expected, "script {script:?}");

            // The link saw exactly as many attempts as the report claims,
            // waited exactly the recorded backoff, and was recovered once
            // per failed non-final attempt — with that attempt's outcome.
            assert_eq!(link.attempts as u32, report.attempt_count());
            assert_eq!(link.waited, report.total_backoff_ms());
            let failed_nonfinal: Vec<AttemptOutcome> = report
                .attempts
                .iter()
                .filter(|a| !a.outcome.is_success() && (a.attempt as usize) < report.attempts.len())
                .map(|a| a.outcome.clone())
                .collect();
            assert_eq!(link.recoveries, failed_nonfinal, "script {script:?}");

            // Attempt numbers are unique and strictly increasing: no
            // state is visited twice.
            for (i, a) in report.attempts.iter().enumerate() {
                assert_eq!(a.attempt as usize, i + 1);
            }
            // Success appears only as the final record.
            for a in &report.attempts[..report.attempts.len().saturating_sub(1)] {
                assert!(!a.outcome.is_success());
            }
            assert_eq!(
                report.succeeded(),
                report
                    .attempts
                    .last()
                    .is_some_and(|a| a.outcome.is_success())
            );
        }
    }
}

// ---- jitter bounds --------------------------------------------------------

#[test]
fn jitter_per_mille_stays_within_documented_bounds() {
    // The docs promise: deterministic in (seed, attempt), centred on the
    // un-jittered value, capped at ±100 %, result within [0, 2 × backoff].
    let bases: [u64; 4] = [0, 1, 100, u64::MAX];
    let jitters: [u16; 6] = [0, 1, 250, 999, 1000, u16::MAX];
    let factors: [u32; 3] = [1, 2, 3];
    for base in bases {
        for factor in factors {
            let flat = RetryPolicy {
                backoff_base_ms: base,
                backoff_factor: factor,
                jitter_per_mille: 0,
                ..RetryPolicy::default()
            };
            for jitter in jitters {
                for seed in [0u64, 0xDEAD_BEEF, u64::MAX] {
                    let policy = RetryPolicy {
                        jitter_per_mille: jitter,
                        jitter_seed: seed,
                        ..flat
                    };
                    for attempt in 1..=10u32 {
                        let unjittered = flat.backoff_ms(attempt);
                        let jittered = policy.backoff_ms(attempt);
                        // Deterministic.
                        assert_eq!(jittered, policy.backoff_ms(attempt));
                        // Amplitude is capped at 1000 ‰ even if the field
                        // holds a larger value.
                        let eff = u128::from(jitter.min(1000));
                        let span = ((u128::from(unjittered) * eff) / 1000) as u64;
                        let lo = unjittered.saturating_sub(span);
                        let hi = unjittered.saturating_add(span);
                        assert!(
                            (lo..=hi).contains(&jittered),
                            "base {base} factor {factor} jitter {jitter} seed {seed} \
                             attempt {attempt}: {jittered} outside [{lo}, {hi}]"
                        );
                        // Never more than twice the un-jittered backoff.
                        assert!(jittered <= unjittered.saturating_mul(2));
                    }
                }
            }
        }
    }
}

// ---- freshness uniqueness over a real pair --------------------------------

/// A link over a real prover/verifier that drops requests or responses
/// according to a script, recording every freshness value the verifier
/// ever put on the wire.
struct LossyLink<'a> {
    verifier: &'a mut Verifier,
    prover: &'a mut Prover,
    /// Per-attempt fate: 0 = deliver, 1 = drop request, 2 = drop response.
    script: Vec<u8>,
    cursor: usize,
    issued: Vec<u64>,
}

impl SessionLink for LossyLink<'_> {
    fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
        let fate = self.script[self.cursor % self.script.len()];
        self.cursor += 1;
        let request = match self.verifier.make_request() {
            Ok(r) => r,
            Err(e) => return AttemptOutcome::Error(e),
        };
        let FreshnessField::Counter(c) = request.freshness else {
            panic!("counter policy issues counters");
        };
        self.issued.push(c);
        if fate == 1 {
            return AttemptOutcome::RequestLost;
        }
        let response = match self.prover.handle_request(&request) {
            Ok(r) => r,
            Err(e) => {
                return match e.reject_reason() {
                    Some(reason) => AttemptOutcome::Rejected(reason),
                    None => AttemptOutcome::Error(e),
                }
            }
        };
        if fate == 2 {
            return AttemptOutcome::ResponseLost;
        }
        if self
            .verifier
            .check_response(&request, &response, self.prover.expected_memory())
        {
            AttemptOutcome::Success
        } else {
            AttemptOutcome::BadResponse
        }
    }
    fn wait_ms(&mut self, ms: u64) {
        let _ = self.prover.advance_time_ms(ms);
        self.verifier.advance_time_ms(ms);
    }
}

#[test]
fn no_freshness_value_is_ever_reissued_across_retries() {
    // Every loss pattern of length 3 over {deliver, drop-request,
    // drop-response}, driven to completion. Across ALL attempts of ALL
    // sessions the verifier must never reuse a counter, and each counter
    // must be observed in exactly one protocol state.
    let config = ProverConfig::recommended();
    let (mut prover, mut verifier) = pair(&config);
    let driver = SessionDriver::new(RetryPolicy {
        max_retries: 4,
        backoff_base_ms: 1,
        ..RetryPolicy::default()
    });

    let mut all_issued: Vec<u64> = Vec::new();
    // counter -> prover's accepted-count at issuance. A freshness value
    // observed again (same or different state) is a protocol break.
    let mut state_at_issue: HashMap<u64, u64> = HashMap::new();

    for code in 0..27u32 {
        let script = vec![
            (code % 3) as u8,
            ((code / 3) % 3) as u8,
            ((code / 9) % 3) as u8,
        ];
        let mut link = LossyLink {
            verifier: &mut verifier,
            prover: &mut prover,
            script,
            cursor: 0,
            issued: Vec::new(),
        };
        let report = driver.run(&mut link);
        let issued = link.issued;
        assert_eq!(issued.len() as u32, report.attempt_count());
        for &c in &issued {
            let state = prover.stats().accepted;
            assert!(
                state_at_issue.insert(c, state).is_none(),
                "freshness counter {c} issued twice"
            );
        }
        all_issued.extend(issued);
    }

    // Strictly monotonic across the whole history — retries always burn a
    // fresh counter, they never re-offer a stale one.
    assert!(all_issued.windows(2).all(|w| w[0] < w[1]));

    // And the prover enforces the same thing: replaying the last delivered
    // request is rejected, so no accepted state is reachable twice.
    let replay = verifier.make_request().expect("request");
    prover.handle_request(&replay).expect("accepted");
    let err = prover.handle_request(&replay).expect_err("replay rejected");
    assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
}

// ---- Busy-style redial ----------------------------------------------------

/// A link that sheds with `Rejected(Throttled)` — the session-level
/// equivalent of the gateway's `Busy` frame — until it has been redialled
/// (`recover`ed) `busy_for` times.
struct BusyLink {
    busy_for: u32,
    redials: u32,
    waited: u64,
}

impl SessionLink for BusyLink {
    fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
        if self.redials < self.busy_for {
            AttemptOutcome::Rejected(RejectReason::Throttled)
        } else {
            AttemptOutcome::Success
        }
    }
    fn wait_ms(&mut self, ms: u64) {
        self.waited += ms;
    }
    fn recover(&mut self, failed: &AttemptOutcome) {
        assert_eq!(
            failed,
            &AttemptOutcome::Rejected(RejectReason::Throttled),
            "only Busy shedding reaches this link's recovery"
        );
        self.redials += 1;
    }
}

#[test]
fn busy_shedding_redials_on_the_documented_schedule() {
    let policy = RetryPolicy {
        max_retries: 4,
        ..RetryPolicy::default()
    };
    for busy_for in 0..=policy.max_retries {
        let mut link = BusyLink {
            busy_for,
            redials: 0,
            waited: 0,
        };
        let report = SessionDriver::new(policy).run(&mut link);
        assert!(report.succeeded(), "busy_for {busy_for}");
        assert_eq!(report.attempt_count(), busy_for + 1);
        let expected_wait: u64 = (1..=busy_for).map(|a| policy.backoff_ms(a)).sum();
        assert_eq!(link.waited, expected_wait);
        assert_eq!(report.total_backoff_ms(), expected_wait);
    }
    // A gateway that never stops shedding exhausts the budget.
    let mut link = BusyLink {
        busy_for: u32::MAX,
        redials: 0,
        waited: 0,
    };
    let report = SessionDriver::new(policy).run(&mut link);
    assert!(!report.succeeded());
    assert_eq!(report.attempt_count(), policy.max_retries + 1);
}

// ---- resync through the recovery hook -------------------------------------

/// A timestamp-freshness link whose prover has drifted out of the
/// acceptance window; `recover` performs the clock-sync handshake, after
/// which the session must heal.
struct SkewedLink<'a> {
    verifier: &'a mut Verifier,
    prover: &'a mut Prover,
    resyncs: u32,
}

impl SessionLink for SkewedLink<'_> {
    fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
        let request = match self.verifier.make_request() {
            Ok(r) => r,
            Err(e) => return AttemptOutcome::Error(e),
        };
        let response = match self.prover.handle_request(&request) {
            Ok(r) => r,
            Err(e) => {
                return match e.reject_reason() {
                    Some(reason) => AttemptOutcome::Rejected(reason),
                    None => AttemptOutcome::Error(e),
                }
            }
        };
        if self
            .verifier
            .check_response(&request, &response, self.prover.expected_memory())
        {
            AttemptOutcome::Success
        } else {
            AttemptOutcome::BadResponse
        }
    }
    fn wait_ms(&mut self, ms: u64) {
        let _ = self.prover.advance_time_ms(ms);
        self.verifier.advance_time_ms(ms);
    }
    fn recover(&mut self, failed: &AttemptOutcome) {
        // A timestamp reject is the signature of clock drift (e.g. a
        // reboot that lost the synced offset): run the sync handshake.
        if matches!(
            failed,
            AttemptOutcome::Rejected(RejectReason::TimestampOutOfWindow)
        ) {
            let sync = self.verifier.make_sync_request();
            self.prover.handle_sync(&sync).expect("sync accepted");
            self.resyncs += 1;
        }
    }
}

#[test]
fn clock_skew_heals_through_the_resync_recovery_hook() {
    let config = ProverConfig {
        freshness: FreshnessKind::Timestamp,
        clock: ClockKind::Hw64,
        ..ProverConfig::recommended()
    };
    let (mut prover, mut verifier) = pair(&config);
    // Both start aligned; then the verifier races 5 s ahead — far outside
    // the 500 ms acceptance window.
    prover.advance_time_ms(1_000).expect("advance");
    verifier.advance_time_ms(6_000);

    let mut link = SkewedLink {
        verifier: &mut verifier,
        prover: &mut prover,
        resyncs: 0,
    };
    let report = SessionDriver::new(RetryPolicy {
        max_retries: 2,
        backoff_base_ms: 10,
        ..RetryPolicy::default()
    })
    .run(&mut link);

    // Attempt 1 is rejected out-of-window, the recovery hook resyncs, and
    // attempt 2 succeeds — exactly one resync, exactly two attempts.
    assert!(report.succeeded(), "{report:?}");
    assert_eq!(report.attempt_count(), 2);
    assert_eq!(link.resyncs, 1);
    assert_eq!(
        report.attempts[0].outcome,
        AttemptOutcome::Rejected(RejectReason::TimestampOutOfWindow)
    );
}

// ---------------------------------------------------------------------------
// Secure-session lifecycle over a live gateway: handshake → sealed rounds
// → lockstep rekey → idle expiry → transparent re-handshake — and a
// mid-session reboot that resumes safely because the sealed freshness
// record survives the power cycle while the session keys do not.
// ---------------------------------------------------------------------------

mod secure_session_lifecycle {
    use std::time::Duration;

    use proverguard_attest::gateway::{
        AgentOutcome, DeviceDirectory, Gateway, GatewayConfig, GatewayHandle, GatewayMsg,
        ProverAgent,
    };
    use proverguard_attest::persist::RecoveryOutcome;
    use proverguard_attest::prover::{Prover, ProverConfig};
    use proverguard_attest::session::RetryPolicy;
    use proverguard_attest::verifier::{ScopePolicy, Verifier};
    use proverguard_attest::RejectReason;
    use proverguard_transport::frame::DEFAULT_MAX_FRAME;
    use proverguard_transport::mem::{loopback_pair, LoopbackConnector};
    use proverguard_transport::Transport;

    use super::KEY;

    const IO: Duration = Duration::from_secs(30);

    fn session_world(config: GatewayConfig) -> (GatewayHandle, LoopbackConnector, ProverAgent) {
        let pconfig = ProverConfig::recommended_segmented();
        let (hub, connector) = proverguard_transport::mem::LoopbackHub::new(DEFAULT_MAX_FRAME);
        let prover = Prover::provision(pconfig.clone(), &KEY, b"session model").expect("provision");
        let mut verifier = Verifier::new(&pconfig, &KEY).expect("verifier");
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        let mut directory = DeviceDirectory::new();
        let device_id = directory.register(verifier, prover.expected_memory().to_vec());
        let handle = Gateway::start(Box::new(hub), directory, config);
        (
            handle,
            connector,
            ProverAgent::with_sessions(prover, device_id),
        )
    }

    fn dial(connector: &LoopbackConnector, agent: &mut ProverAgent) -> AgentOutcome {
        let mut conn = connector.connect().expect("connect");
        agent.run_session(&mut conn, IO)
    }

    /// The full happy-path lifecycle plus the idle-expiry edge: every
    /// state transition the session machine has, in order.
    #[test]
    fn lifecycle_handshake_rounds_rekey_expiry_rehandshake() {
        let (handle, connector, mut agent) = session_world(GatewayConfig {
            workers: 2,
            read_timeout_ms: 10_000,
            rekey_after_rounds: 2,
            session_idle_ms: 250,
            ..GatewayConfig::default()
        });

        // Handshake: no session → attested handshake → session live.
        assert!(agent.session_id().is_none());
        assert!(dial(&connector, &mut agent).is_verified());
        let sid = agent.session_id().expect("session established");

        // Rounds: sealed, session id stable; cadence 2 → first rekey
        // after round 2, visible as the channel epoch advancing.
        for round in 1..=2 {
            assert!(dial(&connector, &mut agent).is_verified(), "round {round}");
            assert_eq!(agent.session_id(), Some(sid));
        }
        let chan = agent.take_session().expect("live channel");
        assert_eq!(chan.epoch(), 1, "2 rounds at cadence 2 → 1 ratchet");
        agent.install_session(chan);

        // Expiry: outlive the idle window; the resume dial is bounced
        // with SessionExpired and the agent drops its local state.
        std::thread::sleep(Duration::from_millis(450));
        assert_eq!(dial(&connector, &mut agent), AgentOutcome::SessionExpired);
        assert!(
            agent.session_id().is_none(),
            "agent dropped expired session"
        );

        // Re-handshake: the retry wrapper converges transparently.
        let outcome = agent.attest_with_retry(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &RetryPolicy::default(),
            IO,
            50,
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        let sid2 = agent.session_id().expect("fresh session");
        assert_ne!(sid2, sid, "expired session id is never resumed");

        let report = handle.shutdown();
        assert!(report.stats.sessions_expired >= 1, "{:?}", report.stats);
        assert!(report.stats.session_partition_holds(), "{:?}", report.stats);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
    }

    /// A power cycle mid-session: the volatile channel keys are gone but
    /// the sealed freshness record is restored from NV, so the forced
    /// re-handshake presents a *monotonic* counter and verifies — the
    /// reboot can neither be replayed into nor used to roll freshness
    /// back.
    #[test]
    fn mid_session_reboot_resumes_via_sealed_freshness_record() {
        let (handle, connector, mut agent) = session_world(GatewayConfig {
            workers: 2,
            read_timeout_ms: 10_000,
            ..GatewayConfig::default()
        });
        agent
            .prover_mut()
            .attach_nv_store(Box::new(proverguard_attest::persist::InMemoryNvStore::new()))
            .expect("attach store");

        assert!(dial(&connector, &mut agent).is_verified());
        assert!(dial(&connector, &mut agent).is_verified());
        let sid = agent.session_id().expect("session live");

        let recovery = agent.reboot().expect("reboot");
        assert!(
            matches!(recovery, RecoveryOutcome::Restored(_)),
            "sealed freshness record must survive the power cycle: {recovery:?}"
        );
        assert!(agent.session_id().is_none(), "session keys are volatile");

        // The rebooted device converges on a *new* session; if the
        // freshness record had been lost, this full attest would be shed
        // as a stale counter.
        let outcome = agent.attest_with_retry(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &RetryPolicy::default(),
            IO,
            50,
        );
        assert!(outcome.is_verified(), "{outcome:?}");
        assert_ne!(agent.session_id(), Some(sid));

        let report = handle.shutdown();
        // The pre-reboot session was replaced at the table (evicted).
        assert!(report.stats.sessions_evicted >= 1, "{:?}", report.stats);
        assert!(report.stats.session_partition_holds(), "{:?}", report.stats);
    }

    /// Downgrade defence on the agent side: a session-mode device never
    /// answers a bare (unsealed) attestation request — the state machine
    /// refuses before the prover pipeline is reachable.
    #[test]
    fn session_mode_agent_refuses_bare_requests() {
        let pconfig = ProverConfig::recommended_segmented();
        let prover = Prover::provision(pconfig, &KEY, b"session model").expect("provision");
        let mut agent = ProverAgent::with_sessions(prover, 0);

        let (mut gateway_end, mut agent_end) = loopback_pair(DEFAULT_MAX_FRAME);
        // A man-in-the-middle "gateway" that skips the handshake and
        // asks one-shot style, hoping for an unauthenticated answer.
        gateway_end
            .send(&GatewayMsg::AttReq(vec![1, 2, 3]).encode())
            .expect("send");
        let requests_before = agent.prover().stats().requests_seen;
        let outcome = agent.run_session(&mut agent_end, Duration::from_millis(500));
        assert_eq!(outcome, AgentOutcome::ProtocolError);
        assert_eq!(
            agent.prover().stats().requests_seen,
            requests_before,
            "bare request must not reach the pipeline"
        );

        gateway_end
            .set_deadline(Some(Duration::from_millis(500)))
            .expect("deadline");
        let hello = gateway_end.recv().expect("agent's hello");
        assert!(matches!(
            GatewayMsg::decode(&hello),
            Ok(GatewayMsg::SessHello { .. })
        ));
        let verdict = gateway_end.recv().expect("agent's refusal");
        assert_eq!(
            GatewayMsg::decode(&verdict).ok(),
            Some(GatewayMsg::Reject(RejectReason::SessionAuth))
        );
    }
}
