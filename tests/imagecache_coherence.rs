//! Differential property test for the fleet-wide expected-image cache:
//! for arbitrary sequences of {attest at any scope, UpdateFirmware,
//! campaign-wave counter patch, History epoch advance, cache eviction
//! churn}, the cached verifier path (the real `DeviceDirectory` machinery
//! both gateway drivers use) must produce accept/reject verdicts
//! **bit-identical** to an uncached reference verifier fed the same wire
//! transcript. The cache is an optimization; this is the proof it is
//! *only* an optimization.
//!
//! The prover side is fabricated directly from the construction (small
//! synthetic images, no MCU) so thousands of rounds are cheap and every
//! divergence — honest, tampered, wrong-image — is scripted
//! deterministically from the op words.

use std::sync::Arc;

use proptest::prelude::*;
use proverguard_attest::freshness::{patch_expected_command_counter, patch_expected_image};
use proverguard_attest::gateway::DeviceDirectory;
use proverguard_attest::imagecache::ImageCache;
use proverguard_attest::message::{AttestRequest, AttestResponse, AttestScope};
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::segcache::{
    combined_input, history_input, segment_digest, segment_digests, HistoryReport, SegmentedParams,
};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_crypto::mac::MacKey;

const KEY: [u8; 16] = [0x3C; 16];
const DEVICES: usize = 3;
const SEGMENT_LEN: u32 = 256;
const IMAGE_LEN: usize = 2048; // 8 segments

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn image_from(seed: u64) -> Vec<u8> {
    let mut rng = seed;
    let mut bytes = vec![0u8; IMAGE_LEN];
    for chunk in bytes.chunks_mut(8) {
        let w = splitmix64(&mut rng).to_le_bytes();
        chunk.copy_from_slice(&w[..chunk.len()]);
    }
    bytes
}

fn config() -> ProverConfig {
    ProverConfig {
        segmented: Some(SegmentedParams {
            segment_len: SEGMENT_LEN,
        }),
        ..ProverConfig::recommended()
    }
}

/// The honest device: answers any scope from its actual image, committing
/// the request's freshness word before "MACing" exactly like the real
/// prover (reject-then-MAC ordering), and advancing its epoch-log round
/// register every round.
struct SimDevice {
    image: Vec<u8>,
    /// Per-segment last-write round (the hardware epoch log).
    last_write: Vec<u64>,
    round: u64,
}

impl SimDevice {
    fn new(image: Vec<u8>) -> Self {
        let segs = image.len().div_ceil(SEGMENT_LEN as usize);
        SimDevice {
            image,
            last_write: vec![0; segs],
            round: 0,
        }
    }

    /// Installs a new firmware image (OTA): every segment's epoch bumps.
    fn install(&mut self, image: Vec<u8>) {
        self.round += 1;
        self.image = image;
        let r = self.round;
        self.last_write.iter_mut().for_each(|w| *w = r);
    }

    fn respond(&mut self, request: &AttestRequest, key: &MacKey) -> AttestResponse {
        self.round += 1;
        // The freshness commit writes counter_R — segment 0's epoch moves.
        self.last_write[0] = self.round;
        let mut memory = self.image.clone();
        patch_expected_image(&mut memory, &request.freshness);
        let seg_len = SEGMENT_LEN as usize;
        match request.scope {
            AttestScope::Whole => {
                let mut macced = request.signed_bytes();
                macced.extend_from_slice(&memory);
                AttestResponse {
                    report: key.compute(&macced),
                }
            }
            AttestScope::Segmented => {
                let digests = segment_digests(&memory, seg_len);
                let combined = combined_input(&request.signed_bytes(), SEGMENT_LEN, &digests);
                AttestResponse {
                    report: key.compute(&combined),
                }
            }
            AttestScope::History { since_round } => {
                let modified: Vec<bool> =
                    self.last_write.iter().map(|&w| w > since_round).collect();
                let report = HistoryReport {
                    round: self.round,
                    modified,
                };
                let digests: Vec<[u8; 20]> = report
                    .modified_indices()
                    .into_iter()
                    .map(|i| {
                        let start = i * seg_len;
                        let end = (start + seg_len).min(memory.len());
                        segment_digest(i as u32, &memory[start..end])
                    })
                    .collect();
                let input = history_input(&request.signed_bytes(), SEGMENT_LEN, &report, &digests);
                let mut bytes = report.encode();
                bytes.extend_from_slice(&key.compute(&input));
                AttestResponse { report: bytes }
            }
        }
    }
}

/// The uncached reference verifier fleet: per-attempt image clone + full
/// from-scratch digest recomputation — the pre-cache gateway semantics.
struct Reference {
    verifiers: Vec<Verifier>,
    baselines: Vec<Vec<u8>>,
}

impl Reference {
    fn verify(&mut self, d: usize, request: &AttestRequest, response: &AttestResponse) -> bool {
        let mut expected = self.baselines[d].clone();
        patch_expected_image(&mut expected, &request.freshness);
        let verifier = &mut self.verifiers[d];
        if verifier.check_response(request, response, &expected) {
            verifier.note_verified(request, response, &expected);
            true
        } else {
            verifier.note_failed(request);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cached_verdicts_bit_identical_to_uncached_reference(
        history_policy in any::<bool>(),
        ops in proptest::collection::vec(any::<u64>(), 6..40),
    ) {
        let cfg = config();
        let response_key = MacKey::new(cfg.response_mac, &KEY).expect("mac key");
        // Capacity 2 < the 3+ distinct images in play: evictions and
        // refills happen organically on top of the scripted churn op.
        let cache = Arc::new(ImageCache::new(2));
        let mut directory = DeviceDirectory::with_cache(Arc::clone(&cache));
        let mut reference = Reference { verifiers: Vec::new(), baselines: Vec::new() };
        let mut devices: Vec<SimDevice> = Vec::new();

        for d in 0..DEVICES {
            let img = image_from(0xD0 + d as u64);
            let mut v_cached = Verifier::new(&cfg, &KEY).expect("verifier");
            let mut v_ref = Verifier::new(&cfg, &KEY).expect("verifier");
            if history_policy {
                v_cached.set_scope_policy(ScopePolicy::History { full_every: 3 });
                v_ref.set_scope_policy(ScopePolicy::History { full_every: 3 });
            }
            directory.register(v_cached, img.clone());
            reference.verifiers.push(v_ref);
            reference.baselines.push(img.clone());
            devices.push(SimDevice::new(img));
        }

        let attest = |d: usize,
                          directory: &DeviceDirectory,
                          reference: &mut Reference,
                          devices: &mut Vec<SimDevice>,
                          tamper: bool,
                          wrong_image: Option<Vec<u8>>|
         -> Result<(), TestCaseError> {
            // Both verifiers must mint bit-identical requests — their
            // states advanced in lockstep because every prior verdict
            // agreed.
            let req_cached = directory
                .with_verifier(d as u64, |v| v.make_request())
                .expect("registered")
                .expect("request");
            let req_ref = reference.verifiers[d].make_request().expect("request");
            prop_assert_eq!(&req_cached, &req_ref, "request transcripts diverged");

            let response = match wrong_image {
                Some(img) => {
                    // A device secretly running different firmware.
                    let mut impostor = SimDevice::new(img);
                    impostor.round = devices[d].round;
                    devices[d].round += 1; // the real register still moves
                    impostor.respond(&req_cached, &response_key)
                }
                None => devices[d].respond(&req_cached, &response_key),
            };
            let mut response = response;
            if tamper {
                let i = response.report.len() / 2;
                response.report[i] ^= 0x40;
            }

            let cached_verdict = directory
                .verify_response(d as u64, &req_cached, &response)
                .expect("registered");
            let ref_verdict = reference.verify(d, &req_ref, &response);
            prop_assert_eq!(
                cached_verdict, ref_verdict,
                "verdicts diverged (tamper={}, scope={:?})", tamper, req_cached.scope
            );
            Ok(())
        };

        for (n, word) in ops.iter().enumerate() {
            let d = ((word >> 3) % DEVICES as u64) as usize;
            match word % 8 {
                // Honest attestation at whatever scope the policy picks
                // (Segmented, or History with periodic full re-anchors).
                0..=2 => attest(d, &directory, &mut reference, &mut devices, false, None)?,
                // Tampered response: both paths must reject.
                3 => attest(d, &directory, &mut reference, &mut devices, true, None)?,
                // Wrong-image device: the response is honestly built from
                // *different* firmware — a stale cached digest vector
                // accepting it is exactly the bug this test exists for.
                4 => {
                    let img = image_from(0xBAD ^ (*word >> 8));
                    attest(d, &directory, &mut reference, &mut devices, false, Some(img))?;
                }
                // UpdateFirmware: device installs new firmware and both
                // verifier sides re-target their expectation.
                5 => {
                    let img = image_from(0x07A ^ (*word >> 8) ^ n as u64);
                    devices[d].install(img.clone());
                    prop_assert!(directory.set_expected_memory(d as u64, img.clone()));
                    reference.baselines[d] = img;
                }
                // Campaign wave: the gated-command counter word the wave's
                // UpdateFirmware consumed becomes part of the expectation
                // (and of the device image — it committed the counter).
                6 => {
                    let counter = 1 + (*word >> 8) % 1000;
                    let mut img = devices[d].image.clone();
                    patch_expected_command_counter(&mut img, counter);
                    devices[d].install(img.clone());
                    prop_assert!(directory.set_expected_memory(d as u64, img.clone()));
                    reference.baselines[d] = img;
                }
                // Eviction churn: intern an unrelated image into the
                // shared cache so LRU pressure displaces live baselines
                // (their next touch refills them for free).
                7 => {
                    let junk = image_from(0xEE7 ^ *word);
                    let _ = cache.intern(&junk, SEGMENT_LEN);
                }
                _ => unreachable!(),
            }
        }

        // Every device gets a final honest round: after any sequence the
        // cached path must still agree with the reference.
        for d in 0..DEVICES {
            attest(d, &directory, &mut reference, &mut devices, false, None)?;
        }

        let stats = cache.stats();
        prop_assert!(stats.conservation_holds(), "conservation law violated: {:?}", stats);
    }
}
