//! Golden vectors: frozen byte-level expectations for the formats a
//! deployed fleet depends on. These hex strings were produced by this
//! codebase and then **frozen** — any change to key derivation, MAC
//! layout, record encoding, segment-digest construction or the wire
//! protocol flips one of these tests, turning a silent compatibility
//! break into a loud one. If a test here fails, either revert the
//! format change or bump the relevant version byte/magic AND these
//! vectors in the same commit.

use proverguard_attest::imagecache::{CachedImage, ImageKey};
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::persist::{EpochLogRecord, FreshnessRecord, RECORD_LEN};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::{combined_input, segment_digests};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_crypto::mac::{MacAlgorithm, MacKey};

const KEY: [u8; 16] = [0x42; 16];

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The deterministic 1 KiB test memory: byte i holds i mod 256.
fn test_memory() -> Vec<u8> {
    (0..1024u32).map(|i| i as u8).collect()
}

/// The deterministic request header used for the MAC vectors.
fn test_request() -> AttestRequest {
    AttestRequest {
        scope: AttestScope::Whole,
        freshness: FreshnessField::Counter(7),
        challenge: [0x11; 16],
        auth: Vec::new(),
    }
}

#[test]
fn whole_memory_hmac_sha1_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let mut macced = test_request().signed_bytes();
    macced.extend_from_slice(&test_memory());
    assert_eq!(
        hex(&key.compute(&macced)),
        "3e4c78075877636d004ea2867176bf5140360691",
        "whole-memory MAC construction changed"
    );
}

#[test]
fn segmented_combine_mac_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let memory = test_memory();
    let mut request = test_request();
    request.scope = AttestScope::Segmented;
    let digests = segment_digests(&memory, 256);
    assert_eq!(digests.len(), 4);
    assert_eq!(
        hex(&digests[0]),
        "187f22c1f8a3af149f158fcdd4e7c0d85b96d3b8",
        "per-segment digest construction changed"
    );
    let combined = combined_input(&request.signed_bytes(), 256, &digests);
    assert_eq!(
        hex(&key.compute(&combined)),
        "32f2d0e69e7660444754a7ebac957b5278353f25",
        "segmented combine-MAC construction changed"
    );
}

#[test]
fn request_wire_encoding_vector() {
    // 27-byte header (version ‖ scope ‖ kind ‖ counter ‖ challenge) plus
    // the empty-auth length: the exact bytes a v1 radio stack emits.
    assert_eq!(
        hex(&test_request().to_bytes()),
        "0100020000000000000007111111111111111111111111111111110000"
    );
}

#[test]
fn sealed_freshness_record_v2_vector() {
    let record = FreshnessRecord {
        counter_r: 7,
        sync_counter: 2,
        command_counter: 3,
        synced_ms: 1234,
        admission_tokens: 99,
        admission_refill_mark: 1000,
    };
    let encoded = record.encode();
    assert_eq!(encoded.len(), RECORD_LEN);
    assert_eq!(&encoded[..8], b"PGNVREC2", "record magic changed");

    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let sealed = record.seal(&key);
    assert_eq!(hex(&sealed), "50474e5652454332070000000000000002000000000000000300000000000000d2040000000000006300000000000000e803000000000000e8e739a9c4c1b91701804e1a79a4b5fe23c939ea");
    // And the frozen bytes must keep opening.
    let reopened = FreshnessRecord::open_sealed(&sealed, &key).expect("seal roundtrip");
    assert_eq!(reopened.counter_r, 7);
    assert_eq!(reopened.admission_refill_mark, 1000);
}

/// A full two-round wire session under the recommended config. The
/// verifier's nonces/challenges come from `HmacDrbg(K, "proverguard-
/// verifier-nonces")` and the prover image is fixed, so every byte on
/// the wire is reproducible.
#[test]
fn wire_session_transcript_vector() {
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req1 = verifier.make_request().unwrap();
    let resp1 = prover.handle_wire_request(&req1.to_bytes()).unwrap();
    assert_eq!(
        hex(&req1.to_bytes()),
        "0100020000000000000001affe5585d360c46afbadbf3191df6489000815a152e65974f73e"
    );
    assert_eq!(hex(&resp1), "0014013a28e140ed8dd7536053b6644030d4479aeb68");

    let req2 = verifier.make_request().unwrap();
    let resp2 = prover.handle_wire_request(&req2.to_bytes()).unwrap();
    assert_eq!(
        hex(&req2.to_bytes()),
        "010002000000000000000239c7d24eca9db883ecfc350e16e1416a00084e941f6086aa46da"
    );
    assert_eq!(hex(&resp2), "0014d7327903b16915a7037a97ef76ebbc0a9325c475");
}

/// Two-round History session freeze: the bootstrap round (scope byte 2,
/// `since_round = 0`, full coverage) and the first quiescent incremental
/// round. The response bytes carry the canonical `HistoryReport` bitmap
/// ahead of the MAC, so this pins the report encoding on the wire too.
#[test]
fn history_session_transcript_vector() {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });

    let req1 = verifier.make_request().unwrap();
    assert_eq!(
        req1.scope,
        AttestScope::History { since_round: 0 },
        "History policy must bootstrap from round 0"
    );
    let resp1_raw = prover.handle_wire_request(&req1.to_bytes()).unwrap();
    assert_eq!(hex(&req1.to_bytes()), "01020000000000000000020000000000000001affe5585d360c46afbadbf3191df64890008f950deb42be9182f");
    assert_eq!(
        hex(&resp1_raw),
        "0028000000000000000100000040ffffffffffffffffa377734afa45f2ba3ff2265c7270229cbac97326",
        "history bootstrap report (round 1, full coverage) changed"
    );
    let resp1 =
        proverguard_attest::message::AttestResponse::from_bytes(&resp1_raw).expect("response");
    assert!(verifier.check_response(&req1, &resp1, prover.expected_memory()));
    let expected = prover.expected_memory().to_vec();
    verifier.note_verified(&req1, &resp1, &expected);

    let req2 = verifier.make_request().unwrap();
    assert_eq!(req2.scope, AttestScope::History { since_round: 1 });
    let resp2_raw = prover.handle_wire_request(&req2.to_bytes()).unwrap();
    assert_eq!(hex(&req2.to_bytes()), "0102000000000000000102000000000000000239c7d24eca9db883ecfc350e16e1416a00085b9f05584da195c3");
    assert_eq!(
        hex(&resp2_raw),
        "002800000000000000020000004001000000000000003fe144451bb2152ecc08c18d27a8e32221c96735",
        "quiescent history report (round 2, only the counter segment) changed"
    );
    let resp2 =
        proverguard_attest::message::AttestResponse::from_bytes(&resp2_raw).expect("response");
    assert!(verifier.check_response(&req2, &resp2, prover.expected_memory()));
}

/// The fleet digest cache's image key: `SHA1("proverguard-imgkey-v1" ‖
/// segment_len ‖ image_len ‖ image)`, frozen. Verifier deployments may
/// persist these keys (dashboards, logs, cross-gateway dedup), so the
/// derivation must stay stable — and stay bound to *both* the image
/// bytes and the digest granularity.
#[test]
fn image_cache_key_vector() {
    let memory = test_memory();
    assert_eq!(
        ImageKey::derive(&memory, 256).to_hex(),
        "67c50cb72274780421289a1084d6711afbdf3a2d",
        "image cache key derivation changed"
    );
    // The granularity is part of the key: the same bytes at a different
    // segment length (or whole-image scope, segment_len 0) must never
    // alias.
    assert_eq!(
        ImageKey::derive(&memory, 0).to_hex(),
        "8336ee2f2aaf858de424087aa596db88403991d0",
        "whole-scope cache key derivation changed"
    );
    assert_eq!(
        ImageKey::derive(&memory, 128).to_hex(),
        "709a1fcc8784f8bfd517c52b3d91cfabe6789de3",
        "cache key granularity binding changed"
    );
}

/// The cached per-segment digest vector a shared-image fleet is verified
/// from. These digests are the "1 digest sweep" amortised across N
/// devices — if their construction drifts from `segment_digests`, every
/// cached verdict drifts with it, so both the bytes and the equality
/// with the from-scratch sweep are frozen.
#[test]
fn image_cache_digest_vector() {
    let memory = test_memory();
    let cached = CachedImage::compute(memory.clone(), 256);
    let frozen = [
        "187f22c1f8a3af149f158fcdd4e7c0d85b96d3b8",
        "821876582113de4a8b2e0594c73a8b35b1fb4041",
        "db899ad5dd6925118b427ab2e5833bb4055a06b6",
        "008c6c7306f2f98081840951149c89a2ed2f16ee",
    ];
    let digests = cached.digests();
    assert_eq!(digests.len(), frozen.len());
    for (i, (digest, expect)) in digests.iter().zip(frozen).enumerate() {
        assert_eq!(
            hex(digest),
            expect,
            "cached segment digest {i} construction changed"
        );
    }
    assert_eq!(
        digests,
        segment_digests(&memory, 256).as_slice(),
        "cached digest vector must equal the from-scratch sweep"
    );
}

/// The sealed epoch-log record: frozen `PGEPLOG1` encoding. A deployed
/// fleet's boot path must keep opening records written by this version.
#[test]
fn sealed_epoch_log_record_vector() {
    let record = EpochLogRecord {
        epoch: 5,
        segment_len: 8192,
        segment_epochs: vec![1, 2, 3, 4, 5],
    };
    let encoded = record.encode();
    assert_eq!(&encoded[..8], b"PGEPLOG1", "epoch record magic changed");

    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let sealed = record.seal(&key);
    assert_eq!(hex(&sealed), "504745504c4f4731050000000000000000200000000000000500000000000000010000000000000002000000000000000300000000000000040000000000000005000000000000005004c7d32ca4cf24cf8b04086de7e6e3e8b79805");
    let reopened = EpochLogRecord::open_sealed(&sealed, &key).expect("seal roundtrip");
    assert_eq!(reopened, record);
}

/// Same transcript freeze for the segmented construction.
#[test]
fn segmented_session_transcript_vector() {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req = verifier.make_request().unwrap();
    let resp = prover.handle_wire_request(&req.to_bytes()).unwrap();
    assert_eq!(
        hex(&req.to_bytes()),
        "0101020000000000000001affe5585d360c46afbadbf3191df6489000856ea39bc55bc8a1d"
    );
    assert_eq!(hex(&resp), "0014b925753ab8bc1c4c9031d42e6ed1a1d75fb62dac");
}

/// HKDF extract/expand-label vectors plus the session key schedule over
/// a fixed transcript: freezes the label framing ("pg hkdf" prefix,
/// label/context lengths) and every derivation the channel performs.
/// A fleet mid-rollout has live sessions keyed by these exact bytes.
#[test]
fn session_key_schedule_vector() {
    use proverguard_attest::channel::SessionKeys;
    use proverguard_crypto::hkdf;

    let prk = hkdf::extract(b"golden salt", &KEY);
    assert_eq!(
        hex(&prk),
        "f2272c17934cbd0e457e46c7dff35d518c86f2a5",
        "HKDF-Extract changed"
    );
    assert_eq!(
        hex(&hkdf::expand_label(&prk, b"session id", b"", 8)),
        "27bef05e393e74cb",
        "\"session id\" label expansion changed"
    );
    assert_eq!(
        hex(&hkdf::expand_label(&prk, b"c2p mac", b"", 16)),
        "e8cc59ad4af43cef29f531deba25b0e7",
        "\"c2p mac\" label expansion changed"
    );
    assert_eq!(
        hex(&hkdf::expand_label(&prk, b"p2c mac", b"", 16)),
        "3b8c6676e9b965ea2c72a27bc2bca6e7",
        "\"p2c mac\" label expansion changed"
    );
    assert_eq!(
        hex(&hkdf::expand_label(&prk, b"rekey", &1u32.to_be_bytes(), 20)),
        "82dc65a3e8209a65986296416f17e1d0250ae8b6",
        "\"rekey\" label expansion changed"
    );

    let mut keys = SessionKeys::derive(&KEY, b"golden transcript");
    assert_eq!(hex(&keys.session_id), "beffd0b8772a9db8");
    assert_eq!(hex(&keys.to_prover), "90765fad5345372d8d103c1e40c4b8be");
    assert_eq!(hex(&keys.to_verifier), "8526fc69a7a8a17e8e6ac52bd21bf8da");
    keys.ratchet();
    assert_eq!(
        hex(&keys.to_prover),
        "b2538f8e4139d2e3f5e769a2d0bbfba8",
        "rekey ratchet derivation changed"
    );
    assert_eq!(hex(&keys.to_verifier), "60d05a9440070c7f3bfb39bd48de69d7");
    assert_eq!(keys.epoch, 1);
}

/// The attested-session handshake plus a two-round in-session exchange,
/// every wire byte frozen: `HandshakeInit` (nonce, rekey cadence, the
/// embedded *signed full-scope* request), `HandshakeAccept` (derived
/// prover nonce, pipeline response), and the sequence-numbered session
/// frames the rounds ride in. The inner round requests are unsigned
/// (scope byte stream shows auth-len 0008 for the handshake request but
/// the frame MAC carrying the round) — this test pins that split.
#[test]
fn session_handshake_and_rounds_transcript_vector() {
    use proverguard_attest::channel;
    use proverguard_attest::message::AttestResponse;

    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let (init, request) = channel::verifier_begin(&mut verifier, 4).unwrap();
    assert_eq!(
        hex(&init.encode()),
        "0139c7d24eca9db883ecfc350e16e1416a0000000400250101020000000000000001affe5585d360c46afbadbf3191df6489000856ea39bc55bc8a1d",
        "handshake init wire encoding changed"
    );
    let (accept, mut prover_ch) = channel::prover_accept(&mut prover, &init).unwrap();
    assert_eq!(
        hex(&accept.encode()),
        "01eb484e7ba3fc05b76f4b075497f5984900160014b925753ab8bc1c4c9031d42e6ed1a1d75fb62dac",
        "handshake accept wire encoding (derived prover nonce) changed"
    );
    assert_eq!(channel::transcript(&init, &accept).len(), 108);
    let expected = prover.expected_memory().to_vec();
    let mut verifier_ch =
        channel::verifier_confirm(&mut verifier, &init, &request, &accept, &expected).unwrap();
    assert_eq!(
        hex(&verifier_ch.session_id()),
        "aff0c44bb0b0aecf",
        "session id derivation over the handshake transcript changed"
    );

    let frozen_reqs = [
        "010000000000000000010025010102000000000000000209c04691d6eda25a74219d3763f11895000830f56b319fa989c5ebb9abec2bc57b47f9525c700d247822",
        "010000000000000000020025010102000000000000000379b3060873ea6b010d31b600a27be3fa0008c982c093431e72a1bc2605fc8429b1103ada9a0e01b3b9c9",
    ];
    let frozen_resps = [
        "010100000000000000010016001494cf7bc6aec087df31b03200c16facdda977fcca1467fc53ba6b06c4ce75cabd43b7b2b9",
        "0101000000000000000200160014c7a5511459c695ff7025845fbda0cae9dae8be13c0c0203e87bdde92be9446d5008ccd2b",
    ];
    for round in 0..2 {
        let req = verifier.make_request().unwrap();
        let sealed_req = verifier_ch.seal_next(&req.to_bytes());
        assert_eq!(
            hex(&sealed_req),
            frozen_reqs[round],
            "sealed round-request frame changed (round {})",
            round + 1
        );
        let opened = prover_ch.open(&sealed_req).unwrap();
        let resp_raw = prover.handle_session_wire_request(&opened).unwrap();
        let sealed_resp = prover_ch.seal_next(&resp_raw);
        assert_eq!(
            hex(&sealed_resp),
            frozen_resps[round],
            "sealed round-response frame changed (round {})",
            round + 1
        );
        let resp_bytes = verifier_ch.open(&sealed_resp).unwrap();
        let resp = AttestResponse::from_bytes(&resp_bytes).unwrap();
        let exp = prover.expected_memory().to_vec();
        assert!(verifier.check_response(&req, &resp, &exp));
        verifier.note_verified(&req, &resp, &exp);
        verifier_ch.note_round();
        prover_ch.note_round();
    }
}
