//! Golden vectors: frozen byte-level expectations for the formats a
//! deployed fleet depends on. These hex strings were produced by this
//! codebase and then **frozen** — any change to key derivation, MAC
//! layout, record encoding, segment-digest construction or the wire
//! protocol flips one of these tests, turning a silent compatibility
//! break into a loud one. If a test here fails, either revert the
//! format change or bump the relevant version byte/magic AND these
//! vectors in the same commit.

use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::persist::{EpochLogRecord, FreshnessRecord, RECORD_LEN};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::{combined_input, segment_digests};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_crypto::mac::{MacAlgorithm, MacKey};

const KEY: [u8; 16] = [0x42; 16];

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The deterministic 1 KiB test memory: byte i holds i mod 256.
fn test_memory() -> Vec<u8> {
    (0..1024u32).map(|i| i as u8).collect()
}

/// The deterministic request header used for the MAC vectors.
fn test_request() -> AttestRequest {
    AttestRequest {
        scope: AttestScope::Whole,
        freshness: FreshnessField::Counter(7),
        challenge: [0x11; 16],
        auth: Vec::new(),
    }
}

#[test]
fn whole_memory_hmac_sha1_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let mut macced = test_request().signed_bytes();
    macced.extend_from_slice(&test_memory());
    assert_eq!(
        hex(&key.compute(&macced)),
        "3e4c78075877636d004ea2867176bf5140360691",
        "whole-memory MAC construction changed"
    );
}

#[test]
fn segmented_combine_mac_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let memory = test_memory();
    let mut request = test_request();
    request.scope = AttestScope::Segmented;
    let digests = segment_digests(&memory, 256);
    assert_eq!(digests.len(), 4);
    assert_eq!(
        hex(&digests[0]),
        "187f22c1f8a3af149f158fcdd4e7c0d85b96d3b8",
        "per-segment digest construction changed"
    );
    let combined = combined_input(&request.signed_bytes(), 256, &digests);
    assert_eq!(
        hex(&key.compute(&combined)),
        "32f2d0e69e7660444754a7ebac957b5278353f25",
        "segmented combine-MAC construction changed"
    );
}

#[test]
fn request_wire_encoding_vector() {
    // 27-byte header (version ‖ scope ‖ kind ‖ counter ‖ challenge) plus
    // the empty-auth length: the exact bytes a v1 radio stack emits.
    assert_eq!(
        hex(&test_request().to_bytes()),
        "0100020000000000000007111111111111111111111111111111110000"
    );
}

#[test]
fn sealed_freshness_record_v2_vector() {
    let record = FreshnessRecord {
        counter_r: 7,
        sync_counter: 2,
        command_counter: 3,
        synced_ms: 1234,
        admission_tokens: 99,
        admission_refill_mark: 1000,
    };
    let encoded = record.encode();
    assert_eq!(encoded.len(), RECORD_LEN);
    assert_eq!(&encoded[..8], b"PGNVREC2", "record magic changed");

    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let sealed = record.seal(&key);
    assert_eq!(hex(&sealed), "50474e5652454332070000000000000002000000000000000300000000000000d2040000000000006300000000000000e803000000000000e8e739a9c4c1b91701804e1a79a4b5fe23c939ea");
    // And the frozen bytes must keep opening.
    let reopened = FreshnessRecord::open_sealed(&sealed, &key).expect("seal roundtrip");
    assert_eq!(reopened.counter_r, 7);
    assert_eq!(reopened.admission_refill_mark, 1000);
}

/// A full two-round wire session under the recommended config. The
/// verifier's nonces/challenges come from `HmacDrbg(K, "proverguard-
/// verifier-nonces")` and the prover image is fixed, so every byte on
/// the wire is reproducible.
#[test]
fn wire_session_transcript_vector() {
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req1 = verifier.make_request().unwrap();
    let resp1 = prover.handle_wire_request(&req1.to_bytes()).unwrap();
    assert_eq!(
        hex(&req1.to_bytes()),
        "0100020000000000000001affe5585d360c46afbadbf3191df6489000815a152e65974f73e"
    );
    assert_eq!(hex(&resp1), "0014013a28e140ed8dd7536053b6644030d4479aeb68");

    let req2 = verifier.make_request().unwrap();
    let resp2 = prover.handle_wire_request(&req2.to_bytes()).unwrap();
    assert_eq!(
        hex(&req2.to_bytes()),
        "010002000000000000000239c7d24eca9db883ecfc350e16e1416a00084e941f6086aa46da"
    );
    assert_eq!(hex(&resp2), "0014d7327903b16915a7037a97ef76ebbc0a9325c475");
}

/// Two-round History session freeze: the bootstrap round (scope byte 2,
/// `since_round = 0`, full coverage) and the first quiescent incremental
/// round. The response bytes carry the canonical `HistoryReport` bitmap
/// ahead of the MAC, so this pins the report encoding on the wire too.
#[test]
fn history_session_transcript_vector() {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });

    let req1 = verifier.make_request().unwrap();
    assert_eq!(
        req1.scope,
        AttestScope::History { since_round: 0 },
        "History policy must bootstrap from round 0"
    );
    let resp1_raw = prover.handle_wire_request(&req1.to_bytes()).unwrap();
    assert_eq!(hex(&req1.to_bytes()), "01020000000000000000020000000000000001affe5585d360c46afbadbf3191df64890008f950deb42be9182f");
    assert_eq!(
        hex(&resp1_raw),
        "0028000000000000000100000040ffffffffffffffffa377734afa45f2ba3ff2265c7270229cbac97326",
        "history bootstrap report (round 1, full coverage) changed"
    );
    let resp1 =
        proverguard_attest::message::AttestResponse::from_bytes(&resp1_raw).expect("response");
    assert!(verifier.check_response(&req1, &resp1, prover.expected_memory()));
    let expected = prover.expected_memory().to_vec();
    verifier.note_verified(&req1, &resp1, &expected);

    let req2 = verifier.make_request().unwrap();
    assert_eq!(req2.scope, AttestScope::History { since_round: 1 });
    let resp2_raw = prover.handle_wire_request(&req2.to_bytes()).unwrap();
    assert_eq!(hex(&req2.to_bytes()), "0102000000000000000102000000000000000239c7d24eca9db883ecfc350e16e1416a00085b9f05584da195c3");
    assert_eq!(
        hex(&resp2_raw),
        "002800000000000000020000004001000000000000003fe144451bb2152ecc08c18d27a8e32221c96735",
        "quiescent history report (round 2, only the counter segment) changed"
    );
    let resp2 =
        proverguard_attest::message::AttestResponse::from_bytes(&resp2_raw).expect("response");
    assert!(verifier.check_response(&req2, &resp2, prover.expected_memory()));
}

/// The sealed epoch-log record: frozen `PGEPLOG1` encoding. A deployed
/// fleet's boot path must keep opening records written by this version.
#[test]
fn sealed_epoch_log_record_vector() {
    let record = EpochLogRecord {
        epoch: 5,
        segment_len: 8192,
        segment_epochs: vec![1, 2, 3, 4, 5],
    };
    let encoded = record.encode();
    assert_eq!(&encoded[..8], b"PGEPLOG1", "epoch record magic changed");

    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let sealed = record.seal(&key);
    assert_eq!(hex(&sealed), "504745504c4f4731050000000000000000200000000000000500000000000000010000000000000002000000000000000300000000000000040000000000000005000000000000005004c7d32ca4cf24cf8b04086de7e6e3e8b79805");
    let reopened = EpochLogRecord::open_sealed(&sealed, &key).expect("seal roundtrip");
    assert_eq!(reopened, record);
}

/// Same transcript freeze for the segmented construction.
#[test]
fn segmented_session_transcript_vector() {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req = verifier.make_request().unwrap();
    let resp = prover.handle_wire_request(&req.to_bytes()).unwrap();
    assert_eq!(
        hex(&req.to_bytes()),
        "0101020000000000000001affe5585d360c46afbadbf3191df6489000856ea39bc55bc8a1d"
    );
    assert_eq!(hex(&resp), "0014b925753ab8bc1c4c9031d42e6ed1a1d75fb62dac");
}
