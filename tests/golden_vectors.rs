//! Golden vectors: frozen byte-level expectations for the formats a
//! deployed fleet depends on. These hex strings were produced by this
//! codebase and then **frozen** — any change to key derivation, MAC
//! layout, record encoding, segment-digest construction or the wire
//! protocol flips one of these tests, turning a silent compatibility
//! break into a loud one. If a test here fails, either revert the
//! format change or bump the relevant version byte/magic AND these
//! vectors in the same commit.

use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::persist::{FreshnessRecord, RECORD_LEN};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::{combined_input, segment_digests};
use proverguard_attest::verifier::Verifier;
use proverguard_crypto::mac::{MacAlgorithm, MacKey};

const KEY: [u8; 16] = [0x42; 16];

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The deterministic 1 KiB test memory: byte i holds i mod 256.
fn test_memory() -> Vec<u8> {
    (0..1024u32).map(|i| i as u8).collect()
}

/// The deterministic request header used for the MAC vectors.
fn test_request() -> AttestRequest {
    AttestRequest {
        scope: AttestScope::Whole,
        freshness: FreshnessField::Counter(7),
        challenge: [0x11; 16],
        auth: Vec::new(),
    }
}

#[test]
fn whole_memory_hmac_sha1_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let mut macced = test_request().signed_bytes();
    macced.extend_from_slice(&test_memory());
    assert_eq!(
        hex(&key.compute(&macced)),
        "3e4c78075877636d004ea2867176bf5140360691",
        "whole-memory MAC construction changed"
    );
}

#[test]
fn segmented_combine_mac_vector() {
    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let memory = test_memory();
    let mut request = test_request();
    request.scope = AttestScope::Segmented;
    let digests = segment_digests(&memory, 256);
    assert_eq!(digests.len(), 4);
    assert_eq!(
        hex(&digests[0]),
        "187f22c1f8a3af149f158fcdd4e7c0d85b96d3b8",
        "per-segment digest construction changed"
    );
    let combined = combined_input(&request.signed_bytes(), 256, &digests);
    assert_eq!(
        hex(&key.compute(&combined)),
        "32f2d0e69e7660444754a7ebac957b5278353f25",
        "segmented combine-MAC construction changed"
    );
}

#[test]
fn request_wire_encoding_vector() {
    // 27-byte header (version ‖ scope ‖ kind ‖ counter ‖ challenge) plus
    // the empty-auth length: the exact bytes a v1 radio stack emits.
    assert_eq!(
        hex(&test_request().to_bytes()),
        "0100020000000000000007111111111111111111111111111111110000"
    );
}

#[test]
fn sealed_freshness_record_v2_vector() {
    let record = FreshnessRecord {
        counter_r: 7,
        sync_counter: 2,
        command_counter: 3,
        synced_ms: 1234,
        admission_tokens: 99,
        admission_refill_mark: 1000,
    };
    let encoded = record.encode();
    assert_eq!(encoded.len(), RECORD_LEN);
    assert_eq!(&encoded[..8], b"PGNVREC2", "record magic changed");

    let key = MacKey::new(MacAlgorithm::HmacSha1, &KEY).unwrap();
    let sealed = record.seal(&key);
    assert_eq!(hex(&sealed), "50474e5652454332070000000000000002000000000000000300000000000000d2040000000000006300000000000000e803000000000000e8e739a9c4c1b91701804e1a79a4b5fe23c939ea");
    // And the frozen bytes must keep opening.
    let reopened = FreshnessRecord::open_sealed(&sealed, &key).expect("seal roundtrip");
    assert_eq!(reopened.counter_r, 7);
    assert_eq!(reopened.admission_refill_mark, 1000);
}

/// A full two-round wire session under the recommended config. The
/// verifier's nonces/challenges come from `HmacDrbg(K, "proverguard-
/// verifier-nonces")` and the prover image is fixed, so every byte on
/// the wire is reproducible.
#[test]
fn wire_session_transcript_vector() {
    let config = ProverConfig::recommended();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req1 = verifier.make_request().unwrap();
    let resp1 = prover.handle_wire_request(&req1.to_bytes()).unwrap();
    assert_eq!(
        hex(&req1.to_bytes()),
        "0100020000000000000001affe5585d360c46afbadbf3191df6489000815a152e65974f73e"
    );
    assert_eq!(hex(&resp1), "0014013a28e140ed8dd7536053b6644030d4479aeb68");

    let req2 = verifier.make_request().unwrap();
    let resp2 = prover.handle_wire_request(&req2.to_bytes()).unwrap();
    assert_eq!(
        hex(&req2.to_bytes()),
        "010002000000000000000239c7d24eca9db883ecfc350e16e1416a00084e941f6086aa46da"
    );
    assert_eq!(hex(&resp2), "0014d7327903b16915a7037a97ef76ebbc0a9325c475");
}

/// Same transcript freeze for the segmented construction.
#[test]
fn segmented_session_transcript_vector() {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"golden app v1").unwrap();
    let mut verifier = Verifier::new(&config, &KEY).unwrap();

    let req = verifier.make_request().unwrap();
    let resp = prover.handle_wire_request(&req.to_bytes()).unwrap();
    assert_eq!(
        hex(&req.to_bytes()),
        "0101020000000000000001affe5585d360c46afbadbf3191df6489000856ea39bc55bc8a1d"
    );
    assert_eq!(hex(&resp), "0014b925753ab8bc1c4c9031d42e6ed1a1d75fb62dac");
}
