//! The event-driven gateway driver, exercised through the same public
//! surface as the thread-pool driver: honest fleets verify, session
//! handshake/resume/reboot/expiry behave identically, a slowloris is cut
//! by the shared establishment budget, overload sheds a deterministic
//! `Busy`, and both the global and the per-shard stats partition laws
//! hold. The final test runs one workload through both drivers and
//! demands the same protocol-visible outcome.

use std::thread;
use std::time::{Duration, Instant};

use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayMsg, IoDriver, ProverAgent,
};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_transport::{LoopbackConnector, LoopbackHub, Transport, DEFAULT_MAX_FRAME};

fn provision(index: u64) -> (Prover, Verifier) {
    let config = ProverConfig::recommended();
    let mut key = [0x42u8; 16];
    key[0] ^= index as u8;
    let prover = Prover::provision(config.clone(), &key, b"app v1").expect("provision prover");
    let verifier = Verifier::new(&config, &key).expect("provision verifier");
    (prover, verifier)
}

fn patient() -> RetryPolicy {
    RetryPolicy {
        timeout_ms: 10_000,
        max_retries: 40,
        backoff_base_ms: 5,
        backoff_factor: 1,
        jitter_per_mille: 500,
        jitter_seed: 0xbac_4b0b,
    }
}

fn reactor_config(shards: usize, cap: usize) -> GatewayConfig {
    GatewayConfig {
        io_driver: IoDriver::Reactor,
        reactor_shards: shards,
        max_conns_per_shard: cap,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            ..GatewayConfig::default().retry
        },
        ..GatewayConfig::default()
    }
}

fn dial(
    connector: &LoopbackConnector,
) -> impl FnMut() -> Result<Box<dyn Transport>, proverguard_transport::TransportError> + '_ {
    move || {
        connector
            .connect()
            .map(|conn| Box::new(conn) as Box<dyn Transport>)
    }
}

/// See `dial_expect_busy` in `gateway_backpressure.rs`: the verdict frame
/// may already be queued when our `Hello` send fails, so drain.
fn dial_expect_busy(connector: &LoopbackConnector) -> bool {
    let Ok(mut conn) = connector.connect() else {
        return false;
    };
    let _ = conn.set_deadline(Some(Duration::from_millis(1_000)));
    let _ = conn.send(&GatewayMsg::Hello { device_id: 0 }.encode());
    loop {
        match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
            Ok(Ok(GatewayMsg::Busy)) => return true,
            Ok(Ok(_)) => continue,
            _ => return false,
        }
    }
}

/// Polls the per-shard snapshots until every shard has released its
/// connections (`registered == 0`). The shard law compares counters
/// updated by two threads, so it is only exact at quiescence.
fn quiesced_shards(
    handle: &proverguard_attest::gateway::GatewayHandle,
) -> Vec<proverguard_attest::gateway::ShardSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snaps = handle.shard_stats();
        if snaps.iter().all(|s| s.registered == 0) || Instant::now() > deadline {
            return snaps;
        }
        thread::sleep(Duration::from_millis(5));
    }
}

/// An honest 8-device fleet over 2 shards: every one-shot session
/// verifies, the global partition law holds, each shard satisfies its own
/// conservation law, and the reactor telemetry (readiness events,
/// deadline expiries from the service-floor timers) is populated.
#[test]
fn honest_fleet_verifies_over_reactor() {
    const FLEET: usize = 8;
    let mut directory = DeviceDirectory::new();
    let mut agents = Vec::new();
    for p in 0..FLEET {
        let (prover, verifier) = provision(p as u64);
        let id = directory.register_with_floor(verifier, prover.expected_memory().to_vec(), 30);
        agents.push(ProverAgent::new(prover, id));
    }

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(Box::new(hub), directory, reactor_config(2, 64));

    let pins: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            let connector = connector.clone();
            thread::spawn(move || {
                agent
                    .attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50)
                    .is_verified()
            })
        })
        .collect();
    for (p, pin) in pins.into_iter().enumerate() {
        assert!(
            pin.join().expect("session thread panicked"),
            "honest session {p} must verify over the reactor driver"
        );
    }

    let shards = quiesced_shards(&handle);
    assert_eq!(shards.len(), 2);
    for snap in &shards {
        assert_eq!(snap.registered, 0, "shard {} not quiesced", snap.shard);
        assert!(
            snap.partition_holds(),
            "shard conservation law violated: {snap:?}"
        );
    }
    let assigned: u64 = shards.iter().map(|s| s.assigned).sum();
    let ok: u64 = shards.iter().map(|s| s.sessions_ok).sum();
    assert_eq!(ok, FLEET as u64, "every session booked on its shard");

    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_ok, FLEET as u64);
    assert_eq!(report.stats.handshake_failed, 0);
    assert_eq!(
        assigned, report.stats.enqueued,
        "shard assignment must cover exactly the admitted connections"
    );
    assert!(
        report.stats.partition_holds(),
        "partition law violated: {:?}",
        report.stats
    );
    // Reactor telemetry: every admitted connection produced readiness
    // events, and each service-floor wait fired a wheel timer.
    let readiness = report
        .metrics
        .counter("gateway.reactor.readiness_events")
        .unwrap_or(0);
    assert!(
        readiness >= FLEET as u64,
        "expected ≥{FLEET} readiness events, saw {readiness}"
    );
    let expiries = report
        .metrics
        .counter("gateway.reactor.deadline_expiries")
        .unwrap_or(0);
    assert!(
        expiries >= FLEET as u64,
        "each floor-pinned session fires at least its floor timer; saw {expiries}"
    );
}

/// Session mode over the reactor: the first dial runs the attested
/// handshake, the second resumes the session for a cheap sealed round,
/// and the session-table partition law holds at shutdown.
#[test]
fn session_handshake_then_resumed_round() {
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::with_sessions(prover, id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(Box::new(hub), directory, reactor_config(1, 64));

    let first = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(first.is_verified(), "handshake dial failed: {first:?}");
    let sid = agent.session_id().expect("session established");

    let second = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(second.is_verified(), "resumed round failed: {second:?}");
    assert_eq!(
        agent.session_id(),
        Some(sid),
        "a verified round must keep the same session alive"
    );

    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_ok, 2, "{:?}", report.stats);
    assert_eq!(report.stats.sessions_opened, 1);
    assert!(report.stats.partition_holds(), "{:?}", report.stats);
    assert!(
        report.stats.session_partition_holds(),
        "session partition law violated: {:?}",
        report.stats
    );
}

/// A device reboot drops the volatile session keys; the next dial must
/// re-handshake from scratch and still verify.
#[test]
fn reboot_forces_fresh_handshake() {
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::with_sessions(prover, id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(Box::new(hub), directory, reactor_config(1, 64));

    let first = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(first.is_verified(), "{first:?}");
    let old_sid = agent.session_id().expect("session established");

    agent.reboot().expect("recovery boot");
    assert_eq!(agent.session_id(), None, "reboot clears session state");

    let second = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(second.is_verified(), "post-reboot dial failed: {second:?}");
    let new_sid = agent.session_id().expect("fresh session established");
    assert_ne!(
        new_sid, old_sid,
        "reboot must not resurrect the old session"
    );

    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_opened, 2);
    assert_eq!(report.stats.sessions_ok, 2);
    assert!(report.stats.session_partition_holds(), "{:?}", report.stats);
}

/// Idle expiry under the event-driven path: a session left idle past
/// `session_idle_ms` is refused with `SessionExpired` on resume, and the
/// agent transparently re-handshakes.
#[test]
fn idle_session_expires_and_rehandshakes() {
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::with_sessions(prover, id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let config = GatewayConfig {
        session_idle_ms: 60,
        ..reactor_config(1, 64)
    };
    let handle = Gateway::start(Box::new(hub), directory, config);

    let first = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(first.is_verified(), "{first:?}");
    assert!(agent.session_id().is_some());

    thread::sleep(Duration::from_millis(200));

    // The stale resume is rejected cheaply, then retried as a handshake —
    // all inside one attest_with_retry call.
    let second = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(second.is_verified(), "re-handshake failed: {second:?}");

    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_opened, 2);
    assert!(
        report.stats.sessions_expired >= 1,
        "idle sweep must have expired the stale session: {:?}",
        report.stats
    );
    assert_eq!(
        report.metrics.counter("gateway.session.expired_lookup"),
        Some(1),
        "the stale resume must be booked on the cheap-reject path"
    );
    assert!(report.stats.session_partition_holds(), "{:?}", report.stats);
}

/// Slowloris against the reactor: the peer opens an attested handshake,
/// takes the `SessInit`, then stalls. The single establishment budget
/// (armed at registration, never re-armed per message) cuts it within
/// ~`read_timeout_ms`, books it on the deadline path — and, because no
/// thread was ever parked on the stall, a concurrent honest session
/// completes immediately rather than queueing behind it.
#[test]
fn reactor_slowloris_cut_by_establishment_deadline() {
    let read_timeout_ms = 600u64;
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let device_id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::new(prover, device_id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let config = GatewayConfig {
        read_timeout_ms,
        ..reactor_config(1, 64)
    };
    let handle = Gateway::start(Box::new(hub), directory, config);

    let mut stalled = connector.connect().expect("slowloris connect");
    let _ = stalled.set_deadline(Some(Duration::from_secs(5)));
    let accepted = Instant::now();
    stalled
        .send(
            &GatewayMsg::SessHello {
                device_id,
                session_id: None,
            }
            .encode(),
        )
        .expect("slowloris hello");
    match GatewayMsg::decode(&stalled.recv().expect("slowloris init")) {
        Ok(GatewayMsg::SessInit(_)) => {}
        other => panic!("expected SessInit for the stalled handshake, got {other:?}"),
    }

    // The honest session runs while the slowloris stalls: event-driven
    // concurrency means the stall costs the gateway a slab slot, not a
    // worker thread.
    let honest = agent.attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50);
    assert!(
        honest.is_verified(),
        "honest session must not queue behind a stalled peer: {honest:?}"
    );

    assert!(
        stalled.recv().is_err(),
        "stalled handshake must be cut, not answered"
    );
    let held = accepted.elapsed();
    assert!(
        held < Duration::from_millis(read_timeout_ms + 500),
        "slot held {held:?} by a slowloris peer; budget is {read_timeout_ms}ms per connection"
    );

    let report = handle.shutdown();
    assert_eq!(report.stats.handshake_failed, 1, "{:?}", report.stats);
    assert_eq!(
        report.metrics.counter("gateway.handshake.deadline"),
        Some(1),
        "the stall must be booked on the deadline path, not as garbage/link"
    );
    assert_eq!(report.stats.sessions_ok, 1);
    assert!(report.stats.partition_holds(), "{:?}", report.stats);
}

/// Deterministic shed: with one shard capped at 2 connections, two
/// floor-pinned honest sessions fill the gateway, and every extra dial is
/// answered with exactly one cheap `Busy` frame — while the pinned
/// sessions still run to verified completion.
#[test]
fn capacity_full_sheds_busy_deterministically() {
    const FLOOR_MS: u64 = 400;
    let mut directory = DeviceDirectory::new();
    let mut agents = Vec::new();
    for p in 0..2 {
        let (prover, verifier) = provision(p);
        let id =
            directory.register_with_floor(verifier, prover.expected_memory().to_vec(), FLOOR_MS);
        agents.push(ProverAgent::new(prover, id));
    }

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(Box::new(hub), directory, reactor_config(1, 2));

    let pins: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            let connector = connector.clone();
            thread::sleep(Duration::from_millis(5));
            thread::spawn(move || {
                agent
                    .attest_with_retry(dial(&connector), &patient(), Duration::from_secs(30), 50)
                    .is_verified()
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(FLOOR_MS / 2));
    let mut shed = 0u64;
    for _ in 0..3 {
        assert!(
            dial_expect_busy(&connector),
            "dial against a full reactor must be shed with Busy"
        );
        shed += 1;
    }

    for (p, pin) in pins.into_iter().enumerate() {
        assert!(
            pin.join().expect("pinned session panicked"),
            "pinned session {p} must verify despite the Busy storm"
        );
    }
    let report = handle.shutdown();
    assert!(report.stats.busy_rejected >= shed);
    assert_eq!(report.stats.sessions_ok, 2);
    assert_eq!(report.stats.handshake_failed, 0);
    assert!(report.stats.partition_holds(), "{:?}", report.stats);
    assert_eq!(
        report.metrics.counter("gateway.busy"),
        Some(report.stats.busy_rejected)
    );
}

/// Differential check: the same mixed workload (honest one-shots plus
/// session handshake + resume) through both I/O drivers must produce the
/// same protocol-visible outcome — same verified count, same opened
/// session count, partition laws holding on both sides.
#[test]
fn thread_pool_and_reactor_agree_on_workload() {
    fn run(config: GatewayConfig) -> proverguard_attest::gateway::GatewayReport {
        const ONESHOTS: usize = 4;
        let mut directory = DeviceDirectory::new();
        let mut oneshots = Vec::new();
        for p in 0..ONESHOTS {
            let (prover, verifier) = provision(p as u64);
            let id = directory.register(verifier, prover.expected_memory().to_vec());
            oneshots.push(ProverAgent::new(prover, id));
        }
        let (prover, verifier) = provision(ONESHOTS as u64);
        let id = directory.register(verifier, prover.expected_memory().to_vec());
        let mut sess_agent = ProverAgent::with_sessions(prover, id);

        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let handle = Gateway::start(Box::new(hub), directory, config);

        let pins: Vec<_> = oneshots
            .into_iter()
            .map(|mut agent| {
                let connector = connector.clone();
                thread::spawn(move || {
                    agent
                        .attest_with_retry(
                            dial(&connector),
                            &patient(),
                            Duration::from_secs(30),
                            50,
                        )
                        .is_verified()
                })
            })
            .collect();
        for pin in pins {
            assert!(pin.join().expect("session thread panicked"));
        }
        for _ in 0..2 {
            let outcome = sess_agent.attest_with_retry(
                dial(&connector),
                &patient(),
                Duration::from_secs(30),
                50,
            );
            assert!(outcome.is_verified(), "{outcome:?}");
        }
        handle.shutdown()
    }

    let pool = run(GatewayConfig {
        workers: 2,
        queue_depth: 8,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            ..GatewayConfig::default().retry
        },
        ..GatewayConfig::default()
    });
    let reactor = run(reactor_config(2, 8));

    assert_eq!(pool.stats.sessions_ok, reactor.stats.sessions_ok);
    assert_eq!(pool.stats.sessions_failed, reactor.stats.sessions_failed);
    assert_eq!(pool.stats.handshake_failed, reactor.stats.handshake_failed);
    assert_eq!(pool.stats.sessions_opened, reactor.stats.sessions_opened);
    assert!(pool.stats.partition_holds(), "{:?}", pool.stats);
    assert!(reactor.stats.partition_holds(), "{:?}", reactor.stats);
    assert!(pool.stats.session_partition_holds());
    assert!(reactor.stats.session_partition_holds());
    // Same protocol work, attempt for attempt: the verified-session
    // telemetry counters agree across drivers.
    assert_eq!(
        pool.metrics.counter("gateway.sessions_ok"),
        reactor.metrics.counter("gateway.sessions_ok")
    );
    assert_eq!(
        pool.metrics.counter("gateway.session.opened"),
        reactor.metrics.counter("gateway.session.opened")
    );
}
