//! Property-based tests (proptest) on the core data structures and
//! protocol invariants.

use proptest::prelude::*;

use proverguard_attest::freshness::{FreshnessKind, FreshnessPolicy};
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_crypto::aes::Aes128;
use proverguard_crypto::bignum::U384;
use proverguard_crypto::cbc;
use proverguard_crypto::ct::ct_eq;
use proverguard_crypto::hmac::HmacSha1;
use proverguard_crypto::speck::Speck64_128;
use proverguard_crypto::BlockCipher;
use proverguard_mcu::map::AddrRange;
use proverguard_mcu::mpu::{AccessKind, EaMpu, Permissions, Rule};
use proverguard_mcu::Mcu;

proptest! {
    // ---- crypto ------------------------------------------------------------

    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::from_key(&key);
        let mut data = block;
        aes.encrypt_block(&mut data);
        aes.decrypt_block(&mut data);
        prop_assert_eq!(data, block);
    }

    #[test]
    fn speck_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 8]>()) {
        let speck = Speck64_128::from_key(&key);
        let mut data = block;
        speck.encrypt_block(&mut data);
        speck.decrypt_block(&mut data);
        prop_assert_eq!(data, block);
    }

    #[test]
    fn cbc_roundtrips(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        blocks in 1usize..8,
        seed in any::<u8>(),
    ) {
        let aes = Aes128::from_key(&key);
        let original: Vec<u8> = (0..blocks * 16).map(|i| seed.wrapping_add(i as u8)).collect();
        let mut data = original.clone();
        cbc::encrypt(&aes, &iv, &mut data).expect("aligned");
        prop_assert_ne!(&data, &original);
        cbc::decrypt(&aes, &iv, &mut data).expect("aligned");
        prop_assert_eq!(data, original);
    }

    #[test]
    fn hmac_is_deterministic_and_key_separated(
        key1 in any::<[u8; 16]>(),
        key2 in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let t1 = HmacSha1::mac(&key1, &msg);
        prop_assert_eq!(t1, HmacSha1::mac(&key1, &msg));
        if key1 != key2 {
            prop_assert_ne!(t1, HmacSha1::mac(&key2, &msg));
        }
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    // ---- bignum ------------------------------------------------------------

    #[test]
    fn u384_bytes_roundtrip(bytes in any::<[u8; 20]>()) {
        let v = U384::from_be_bytes(&bytes);
        let full = v.to_be_bytes();
        prop_assert_eq!(&full[28..], &bytes[..]);
    }

    #[test]
    fn u384_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let av = U384::from_u64(a);
        let bv = U384::from_u64(b);
        let sum = av.wrapping_add(&bv);
        prop_assert_eq!(sum.wrapping_sub(&bv), av);
    }

    #[test]
    fn u384_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = U384::from_u64(a).widening_mul(&U384::from_u64(b));
        prop_assert!(hi.is_zero());
        let expected = u128::from(a) * u128::from(b);
        let lo_bytes = lo.to_be_bytes();
        let mut got = [0u8; 16];
        got.copy_from_slice(&lo_bytes[32..]);
        prop_assert_eq!(u128::from_be_bytes(got), expected);
    }

    #[test]
    fn u384_mod_inverse_is_inverse(a in 1u64.., m_idx in 0usize..3) {
        // A few odd prime moduli of different sizes.
        let m = [
            U384::from_u64(1_000_000_007),
            U384::from_be_hex("ffffffffffffffffffffffffffffffff7fffffff"),
            U384::from_be_hex("0100000000000000000001f4c8f927aed3ca752257"),
        ][m_idx];
        let av = U384::from_u64(a).rem(&m);
        if !av.is_zero() {
            let inv = av.inv_mod(&m).expect("prime modulus");
            prop_assert_eq!(av.mul_mod(&inv, &m), U384::ONE);
        }
    }

    // ---- messages ----------------------------------------------------------

    #[test]
    fn request_wire_roundtrip(
        kind in 0u8..4,
        value in any::<u64>(),
        nonce in any::<[u8; 16]>(),
        challenge in any::<[u8; 16]>(),
        auth in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let freshness = match kind {
            0 => FreshnessField::None,
            1 => FreshnessField::Nonce(nonce),
            2 => FreshnessField::Counter(value),
            _ => FreshnessField::Timestamp(value),
        };
        let req = AttestRequest { scope: AttestScope::Whole, freshness, challenge, auth };
        let parsed = AttestRequest::from_bytes(&req.to_bytes()).expect("roundtrip");
        prop_assert_eq!(parsed, req);
    }

    #[test]
    fn request_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Whatever Adv_ext injects, parsing is total.
        let _ = AttestRequest::from_bytes(&bytes);
    }

    // ---- freshness invariants ------------------------------------------------

    #[test]
    fn counter_policy_accepts_iff_strictly_increasing(counters in proptest::collection::vec(1u64..1000, 1..40)) {
        let mut policy = FreshnessPolicy::new(FreshnessKind::Counter);
        let mut mcu = Mcu::new();
        let mut high_water = 0u64;
        for c in counters {
            let accepted = policy
                .check_and_update(&FreshnessField::Counter(c), &mut mcu, None)
                .is_ok();
            prop_assert_eq!(accepted, c > high_water, "counter {}", c);
            if accepted {
                high_water = c;
            }
        }
    }

    #[test]
    fn nonce_policy_accepts_exactly_first_occurrences(nonces in proptest::collection::vec(any::<u8>(), 1..40)) {
        let mut policy = FreshnessPolicy::new(FreshnessKind::NonceHistory);
        let mut mcu = Mcu::new();
        let mut seen: std::collections::HashSet<u8> = std::collections::HashSet::new();
        for n in nonces {
            let field = FreshnessField::Nonce([n; 16]);
            let accepted = policy.check_and_update(&field, &mut mcu, None).is_ok();
            prop_assert_eq!(accepted, seen.insert(n));
        }
    }

    // ---- EA-MPU invariants -----------------------------------------------------

    #[test]
    fn mpu_span_check_equals_per_byte_check(
        rule_starts in proptest::collection::vec(0u32..200, 0..4),
        rule_lens in proptest::collection::vec(1u32..50, 0..4),
        code_grant in any::<bool>(),
        span_start in 0u32..250,
        span_len in 1u32..64,
        pc_in_grant in any::<bool>(),
    ) {
        let mut mpu = EaMpu::new(8);
        let grant_code = AddrRange::new(1000, 2000);
        let n = rule_starts.len().min(rule_lens.len());
        for i in 0..n {
            let start = rule_starts[i];
            let end = start + rule_lens[i];
            let code = if code_grant && i % 2 == 0 {
                grant_code
            } else {
                AddrRange::new(3000, 4000)
            };
            mpu.add_rule(Rule::new("r", AddrRange::new(start, end), code, Permissions::READ_WRITE))
                .expect("capacity");
        }
        let pc = if pc_in_grant { 1500 } else { 5000 };
        let span_ok = mpu.check_span(pc, span_start, span_len, AccessKind::Read).is_ok();
        let byte_ok = (span_start..span_start + span_len)
            .all(|addr| mpu.check(pc, addr, AccessKind::Read).is_ok());
        prop_assert_eq!(span_ok, byte_ok);
    }

    #[test]
    fn mpu_uncovered_addresses_always_allowed(
        addr in 10_000u32..20_000,
        pc in any::<u32>(),
    ) {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(Rule::new(
            "r",
            AddrRange::new(0, 100),
            AddrRange::new(0, 0),
            Permissions::NONE,
        )).expect("capacity");
        prop_assert!(mpu.check(pc, addr, AccessKind::Read).is_ok());
        prop_assert!(mpu.check(pc, addr, AccessKind::Write).is_ok());
    }
}
