//! Backpressure contract of the verifier gateway: the work queue is
//! bounded, overload is shed with a cheap `Busy` frame at the accept
//! loop, honest sessions already in flight run to verified completion,
//! and the stats partition law holds once the gateway quiesces.

use std::thread;
use std::time::Duration;

use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayMsg, ProverAgent,
};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_transport::{LoopbackConnector, LoopbackHub, Transport, DEFAULT_MAX_FRAME};

const FLOOR_MS: u64 = 300;

fn provision(index: u64) -> (Prover, Verifier) {
    let config = ProverConfig::recommended();
    let mut key = [0x42u8; 16];
    key[0] ^= index as u8;
    let prover = Prover::provision(config.clone(), &key, b"app v1").expect("provision prover");
    let verifier = Verifier::new(&config, &key).expect("provision verifier");
    (prover, verifier)
}

/// Patient client policy: `Busy` shed is the expected answer under load.
fn patient() -> RetryPolicy {
    RetryPolicy {
        timeout_ms: 10_000,
        max_retries: 40,
        backoff_base_ms: 5,
        backoff_factor: 1,
        jitter_per_mille: 500,
        jitter_seed: 0xbac_4b0b,
    }
}

/// One dial against the gateway; reports whether it was shed with `Busy`.
/// The accept loop writes the `Busy` frame and hangs up immediately, so
/// the `Hello` send may fail while the verdict is already queued — drain
/// rather than trust the send result.
fn dial_expect_busy(connector: &LoopbackConnector) -> bool {
    let Ok(mut conn) = connector.connect() else {
        return false;
    };
    let _ = conn.set_deadline(Some(Duration::from_millis(1_000)));
    let _ = conn.send(&GatewayMsg::Hello { device_id: 0 }.encode());
    loop {
        match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
            Ok(Ok(GatewayMsg::Busy)) => return true,
            Ok(Ok(_)) => continue,
            _ => return false,
        }
    }
}

/// Saturate a 2-worker / depth-2 gateway with exactly four floor-pinned
/// honest sessions, then dial three more connections mid-floor: each
/// extra dial must come back `Busy` without costing the gateway any
/// session work, every pinned session must still verify, and the final
/// snapshot must satisfy the partition law.
#[test]
fn full_queue_sheds_busy_while_in_flight_sessions_complete() {
    let workers = 2usize;
    let queue_depth = 2usize;
    let mut directory = DeviceDirectory::new();
    let mut agents = Vec::new();
    for p in 0..(workers + queue_depth) {
        let (prover, verifier) = provision(p as u64);
        let id =
            directory.register_with_floor(verifier, prover.expected_memory().to_vec(), FLOOR_MS);
        agents.push(ProverAgent::new(prover, id));
    }

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            workers,
            queue_depth,
            retry: RetryPolicy {
                timeout_ms: 10_000,
                ..GatewayConfig::default().retry
            },
            ..GatewayConfig::default()
        },
    );

    // Fill both workers, then both queue slots. Staggered dials keep the
    // fill order deterministic: no pin bounces off a transiently full
    // channel, so exactly four sessions are in flight when we probe.
    let pins: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            let connector = connector.clone();
            thread::sleep(Duration::from_millis(3));
            thread::spawn(move || {
                agent
                    .attest_with_retry(
                        || {
                            connector
                                .connect()
                                .map(|conn| Box::new(conn) as Box<dyn Transport>)
                        },
                        &patient(),
                        Duration::from_secs(30),
                        50,
                    )
                    .is_verified()
            })
        })
        .collect();

    // Mid-floor both workers are sleeping out their service floor and the
    // queue holds the other two pins: the gateway MUST shed us, cheaply.
    thread::sleep(Duration::from_millis(FLOOR_MS / 2));
    let mut shed = 0u64;
    for _ in 0..3 {
        assert!(
            dial_expect_busy(&connector),
            "dial against a saturated gateway must be shed with Busy"
        );
        shed += 1;
    }

    for (p, pin) in pins.into_iter().enumerate() {
        assert!(
            pin.join().expect("pinned session panicked"),
            "pinned honest session {p} must verify despite the Busy storm"
        );
    }
    let report = handle.shutdown();

    assert!(
        report.stats.busy_rejected >= shed,
        "busy_rejected {} must cover the {shed} shed probes",
        report.stats.busy_rejected
    );
    assert_eq!(
        report.stats.sessions_ok,
        (workers + queue_depth) as u64,
        "every pinned honest session completes verified"
    );
    assert_eq!(report.stats.handshake_failed, 0);
    assert!(
        report.stats.partition_holds(),
        "partition law violated: {:?}",
        report.stats
    );
    // Cheapness: a Busy shed never reaches a worker, so the session
    // histogram holds exactly the honest sessions and nothing more.
    let sessions = report
        .metrics
        .histogram("gateway.session_us")
        .expect("session histogram present");
    assert_eq!(sessions.count(), (workers + queue_depth) as u64);
    assert_eq!(
        report.metrics.counter("gateway.busy"),
        Some(report.stats.busy_rejected),
        "busy telemetry counter mirrors the stats atomics"
    );
    assert_eq!(report.dropped_spans, 0);
}

/// The partition law also holds under a mixed ending: verified sessions,
/// failed (forged) sessions, handshake garbage and Busy sheds all land in
/// exactly one bucket each.
#[test]
fn stats_partition_holds_under_mixed_outcomes() {
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let honest_id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::new(prover, honest_id);
    let (forge_prover, forge_verifier) = provision(1);
    let forge_id = directory.register(forge_verifier, forge_prover.expected_memory().to_vec());

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            workers: 2,
            queue_depth: 2,
            retry: RetryPolicy {
                timeout_ms: 10_000,
                max_retries: 1,
                ..GatewayConfig::default().retry
            },
            ..GatewayConfig::default()
        },
    );

    // One verified session.
    let outcome = agent.attest_with_retry(
        || {
            connector
                .connect()
                .map(|conn| Box::new(conn) as Box<dyn Transport>)
        },
        &patient(),
        Duration::from_secs(30),
        50,
    );
    assert!(outcome.is_verified(), "honest session failed: {outcome:?}");

    // One failed session: a valid Hello for a device whose key we do not
    // hold, answering every request with garbage.
    let stats = proverguard_adversary::wire::forgery_flood(
        || {
            connector
                .connect()
                .map(|conn| Box::new(conn) as Box<dyn Transport>)
        },
        forge_id,
        1,
        0x5eed,
        Duration::from_secs(30),
    );
    assert_eq!(stats.byes, 1, "forged session must be driven to a Bye");

    // One handshake failure: a well-framed garbage Hello.
    let junk = proverguard_adversary::wire::junk_frame_flood(
        || {
            connector
                .connect()
                .map(|conn| Box::new(conn) as Box<dyn Transport>)
        },
        1,
        0x5eed,
    );
    assert_eq!(junk.attempts, 1);

    let report = handle.shutdown();
    assert_eq!(report.stats.sessions_ok, 1);
    assert_eq!(report.stats.sessions_failed, 1);
    assert_eq!(report.stats.handshake_failed, 1);
    assert!(
        report.stats.partition_holds(),
        "partition law violated: {:?}",
        report.stats
    );
}

/// Slowloris during session establishment: the peer opens an attested
/// handshake, receives the gateway's `SessInit`, then goes silent. One
/// establishment budget covers every read on the connection, so the
/// worker is freed within ~`read_timeout_ms` of accepting the
/// connection — NOT a fresh timeout per protocol message — the stall is
/// booked as a handshake failure on the deadline path, and a queued
/// honest session gets the worker right after.
#[test]
fn handshake_slowloris_cut_off_by_connection_deadline() {
    use std::time::Instant;

    let read_timeout_ms = 600u64;
    let mut directory = DeviceDirectory::new();
    let (prover, verifier) = provision(0);
    let device_id = directory.register(verifier, prover.expected_memory().to_vec());
    let mut agent = ProverAgent::new(prover, device_id);

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            workers: 1,
            queue_depth: 2,
            read_timeout_ms,
            ..GatewayConfig::default()
        },
    );

    // The slowloris: open the handshake, take the SessInit, say nothing.
    let mut stalled = connector.connect().expect("slowloris connect");
    let _ = stalled.set_deadline(Some(Duration::from_secs(5)));
    let accepted = Instant::now();
    stalled
        .send(
            &GatewayMsg::SessHello {
                device_id,
                session_id: None,
            }
            .encode(),
        )
        .expect("slowloris hello");
    match GatewayMsg::decode(&stalled.recv().expect("slowloris init")) {
        Ok(GatewayMsg::SessInit(_)) => {}
        other => panic!("expected SessInit for the stalled handshake, got {other:?}"),
    }

    // While the lone worker sits in the stalled accept-read, queue an
    // honest session behind it.
    let honest = thread::spawn({
        let connector = connector.clone();
        move || {
            agent
                .attest_with_retry(
                    || {
                        connector
                            .connect()
                            .map(|conn| Box::new(conn) as Box<dyn Transport>)
                    },
                    &patient(),
                    Duration::from_secs(30),
                    50,
                )
                .is_verified()
        }
    });

    // The gateway must hang up on us when the *connection* budget runs
    // out. A per-read deadline would stretch this to ~2x read_timeout
    // (one full timeout for the hello read, another for the accept).
    assert!(
        stalled.recv().is_err(),
        "stalled handshake must be cut, not answered"
    );
    let held = accepted.elapsed();
    assert!(
        held < Duration::from_millis(read_timeout_ms + 500),
        "worker held {held:?} by a slowloris peer; budget is {read_timeout_ms}ms per connection"
    );

    assert!(
        honest.join().expect("honest session panicked"),
        "queued honest session must verify once the slowloris is cut"
    );
    let report = handle.shutdown();
    assert_eq!(report.stats.handshake_failed, 1, "{:?}", report.stats);
    assert_eq!(
        report.metrics.counter("gateway.handshake.deadline"),
        Some(1),
        "the stall must be booked on the deadline path, not as garbage/link"
    );
    assert_eq!(report.stats.sessions_ok, 1);
    assert!(
        report.stats.partition_holds(),
        "partition law violated: {:?}",
        report.stats
    );
}
