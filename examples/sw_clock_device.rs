//! Drive the Figure 1b software clock at the device level: watch
//! `Clock_LSB` wrap, the interrupt engine invoke `Code_Clock`, and
//! `Clock_MSB` accumulate — then run malware against every attack surface.
//!
//! ```sh
//! cargo run --example sw_clock_device
//! ```

use proverguard_attest::clock::{ClockKind, ProverClock, CLOCK_HANDLER_ADDR};
use proverguard_attest::profile::{rules_for, Protection};
use proverguard_mcu::boot::{image_digest, SecureBoot};
use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;
use proverguard_mcu::timer::TIMER_WRAP_VECTOR;
use proverguard_mcu::CLOCK_HZ;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the device by hand (what Prover::provision does internally).
    let mut mcu = Mcu::new();
    mcu.provision_attest_key(&[0x42; 16])?;
    mcu.program_flash(b"application image")?;
    mcu.install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)?;
    let reference = image_digest(mcu.physical_memory().flash());
    let rules = rules_for(Protection::EaMac, ClockKind::Software);
    SecureBoot::new(reference).run(&mut mcu, &rules)?;
    println!(
        "secure boot complete: {} rules installed, EA-MPU locked = {}",
        mcu.mpu().rules().len(),
        mcu.mpu().is_locked()
    );

    // Watch the clock assemble itself from wraps.
    let mut clock = ProverClock::new(ClockKind::Software);
    println!("\nletting time pass in 500 ms steps:");
    for step in 1..=6u64 {
        mcu.advance_idle(CLOCK_HZ / 2); // 500 ms
        let report = clock.service_interrupts(&mut mcu)?;
        let now = clock.now_ms(&mut mcu)?.expect("sw clock installed");
        println!(
            "  t = {:>4} ms: {} wrap interrupts served by Code_Clock, SW-clock reads {:>4} ms",
            step * 500,
            report.served_by_code_clock,
            now
        );
    }

    // Malware (PC in the application range) attacks every surface.
    println!("\nmalware attacks each Figure 1b surface:");
    type Attack = Box<dyn Fn(&mut Mcu) -> bool>;
    let attacks: [(&str, Attack); 4] = [
        (
            "rewrite IDT vector 0",
            Box::new(|m| m.bus_write(map::IDT.start, &[0; 4], map::APP_CODE).is_ok()),
        ),
        (
            "overwrite Clock_MSB",
            Box::new(|m| {
                m.bus_write(map::CLOCK_MSB.start, &[0; 8], map::APP_CODE)
                    .is_ok()
            }),
        ),
        (
            "disable timer (control reg)",
            Box::new(|m| {
                m.bus_write(map::MMIO_TIMER.start + 4, &[0], map::APP_CODE)
                    .is_ok()
            }),
        ),
        (
            "read K_Attest",
            Box::new(|m| m.read_attest_key(map::APP_CODE).is_ok()),
        ),
    ];
    for (name, attack) in &attacks {
        let succeeded = attack(&mut mcu);
        println!(
            "  {name:<30} -> {}",
            if succeeded {
                "SUCCEEDED (!)"
            } else {
                "denied by EA-MPU"
            }
        );
    }
    println!(
        "\nfault log holds {} denied accesses (attack evidence for the operator)",
        mcu.fault_log().len()
    );

    // The clock is unharmed.
    mcu.advance_idle(CLOCK_HZ);
    clock.service_interrupts(&mut mcu)?;
    println!(
        "after the attacks, +1000 ms: SW-clock reads {} ms — still correct",
        clock.now_ms(&mut mcu)?.expect("sw clock installed")
    );
    Ok(())
}
