//! The §7 future-work extensions in action: secure clock synchronization
//! and gated security services (secure memory erasure, secure code
//! update), all behind the same authenticate-then-freshness gate that
//! protects attestation.
//!
//! ```sh
//! cargo run --example secure_services
//! ```

use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::services::{erased_app_ram_digest, Command};
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::map;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProverConfig::timestamp_hw64();
    let key = [0x42u8; 16];
    let mut prover = Prover::provision(config.clone(), &key, b"field unit fw v1")?;
    let mut verifier = Verifier::new(&config, &key)?;

    // --- clock synchronization (§7 item 2) --------------------------------
    // The prover's oscillator drifted 3 s behind true time.
    prover.advance_time_ms(57_000)?;
    verifier.advance_time_ms(60_000);
    println!(
        "before sync: prover believes t = {} ms, true time = {} ms",
        prover.synced_now_ms()?.expect("clock"),
        verifier.now_ms()
    );
    let sync = verifier.make_sync_request();
    let outcome = prover.handle_sync(&sync)?;
    println!(
        "sync applied: skew {} ms measured, {} ms corrected -> prover now at {} ms\n",
        outcome.measured_skew_ms, outcome.applied_ms, outcome.synced_now_ms
    );

    // A replayed sync bounces.
    println!(
        "replaying the same sync message: {:?}\n",
        prover.handle_sync(&sync)
    );

    // --- secure memory erasure (SCUBA-style, §7 item 3) --------------------
    prover.mcu_mut().bus_write(
        map::APP_RAM.start,
        b"cached patient telemetry",
        map::APP_CODE,
    )?;
    println!("app RAM contains sensitive residue; issuing gated erase…");
    let erase = verifier.make_command(Command::EraseAppRam);
    let receipt = prover.handle_command(&erase)?;
    let proven =
        verifier.check_command_receipt(&receipt, &Command::EraseAppRam, &erased_app_ram_digest());
    println!("erase receipt verifies (memory provably zeroed): {proven}\n");

    // --- a forged command is rejected for the cost of one block check ------
    let mut forged = verifier.make_command(Command::EraseAppRam);
    forged.auth = vec![0u8; forged.auth.len()];
    let cycles_before = prover.mcu().clock().cycles();
    let rejected = prover.handle_command(&forged);
    println!(
        "forged erase command: {rejected:?} (cost: {} device cycles)",
        prover.mcu().clock().cycles() - cycles_before
    );

    // --- secure code update -------------------------------------------------
    let new_image = b"field unit fw v2 (patched)".to_vec();
    println!(
        "\nissuing gated firmware update ({} bytes)…",
        new_image.len()
    );
    let update = verifier.make_command(Command::UpdateFirmware {
        image: new_image.clone(),
    });
    let receipt = prover.handle_command(&update)?;
    let mut expected_flash = vec![0u8; map::FLASH.len() as usize];
    expected_flash[..new_image.len()].copy_from_slice(&new_image);
    let expected = proverguard_crypto::sha1::Sha1::digest(&expected_flash);
    let proven = verifier.check_command_receipt(
        &receipt,
        &Command::UpdateFirmware { image: new_image },
        &expected,
    );
    println!("update receipt verifies (flash provably reprogrammed): {proven}");
    Ok(())
}
