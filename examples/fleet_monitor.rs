//! A realistic deployment scenario: one verifier periodically attests a
//! fleet of IoT sensors. One device has been infected — its flash/RAM
//! image changed — and the attestation round flags exactly that device
//! while the prover-side defences keep the *network* cost of the sweep
//! bounded.
//!
//! ```sh
//! cargo run --example fleet_monitor
//! ```

use proverguard_attest::campaign::{
    CampaignAction, CampaignConfig, CampaignController, DeviceOutcome, ImageId,
};
use proverguard_attest::freshness::patch_expected_image;
use proverguard_attest::message::FreshnessField;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::services::Command;
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::map;

/// The verifier's reference image is the golden RAM with the protocol
/// state it expects folded in: an honest prover will have stored the
/// request's counter in `counter_R` before MACing its memory.
fn expected_image(golden: &[u8], request_counter: u64) -> Vec<u8> {
    let mut image = golden.to_vec();
    patch_expected_image(&mut image, &FreshnessField::Counter(request_counter));
    image
}

struct FleetDevice {
    name: String,
    prover: Prover,
    /// The golden RAM image the verifier expects for this device.
    golden_ram: Vec<u8>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProverConfig::recommended();
    let key = [0x42u8; 16];
    let mut verifier = Verifier::new(&config, &key)?;

    // Provision a five-device fleet.
    let mut fleet: Vec<FleetDevice> = (0..5)
        .map(|i| {
            let prover = Prover::provision(
                config.clone(),
                &key,
                format!("sensor firmware v1 (unit {i})").as_bytes(),
            )
            .expect("provision");
            let golden_ram = prover.expected_memory().to_vec();
            FleetDevice {
                name: format!("sensor-{i}"),
                prover,
                golden_ram,
            }
        })
        .collect();

    // Malware lands on sensor-3: it scribbles over application RAM
    // (static code/data change — what attestation is designed to catch).
    fleet[3].prover.mcu_mut().bus_write(
        map::APP_RAM.start + 0x200,
        b"MALWARE PAYLOAD",
        map::APP_CODE,
    )?;
    println!("sensor-3 has been silently infected…\n");

    // Periodic attestation sweep.
    println!("attestation sweep:");
    let mut total_device_ms = 0.0;
    for device in &mut fleet {
        let request = verifier.make_request()?;
        let FreshnessField::Counter(issued) = request.freshness else {
            unreachable!("counter policy issues counters");
        };
        match device.prover.handle_request(&request) {
            Ok(response) => {
                let reference = expected_image(&device.golden_ram, issued);
                let healthy = verifier.check_response(&request, &response, &reference);
                total_device_ms += device.prover.last_cost().total_ms();
                println!(
                    "  {:<10} responded in {:>7.3} ms -> {}",
                    device.name,
                    device.prover.last_cost().total_ms(),
                    if healthy {
                        "HEALTHY"
                    } else {
                        "COMPROMISED — memory changed!"
                    }
                );
            }
            Err(e) => println!("  {:<10} failed: {e}", device.name),
        }
    }
    println!("\nfleet sweep cost {total_device_ms:.0} ms of device compute in total.");
    println!("(each accepted attestation is the §3.1 ~754 ms whole-memory MAC —");
    println!(" which is exactly why provers must not perform it for impostors.)");

    // ---- phase 2: a staged firmware rollout reaches the canaries ----------
    //
    // Mid-campaign, the fleet is *heterogeneous*: the canary wave runs v2
    // while the rest still runs v1. The verifier must resolve each
    // device's expected image from its campaign state — patching the
    // fleet-wide target into every expectation would flag every
    // not-yet-updated device (or every canary) as compromised.
    println!("\nstaged rollout of firmware v2 (canary wave = 2 devices):");
    let mut campaign = CampaignController::new(
        fleet.len(),
        CampaignConfig {
            canary_size: 2,
            ..CampaignConfig::default()
        },
    );
    let mut new_golden: Vec<Option<Vec<u8>>> = vec![None; fleet.len()];
    for action in campaign.tick(0) {
        if let CampaignAction::SendUpdate { device: i, .. } = action {
            let request = verifier.make_command(Command::UpdateFirmware {
                image: format!("sensor firmware v2 (unit {i})").into_bytes(),
            });
            fleet[i].prover.handle_command(&request)?;
            new_golden[i] = Some(fleet[i].prover.expected_memory().to_vec());
            campaign.report(i, DeviceOutcome::UpdateOk, 0);
            println!(
                "  {:<10} flashed v2 — awaiting gating attestation",
                fleet[i].name
            );
        }
    }

    // The sweep resolves each expectation per campaign state.
    for (i, device) in fleet.iter_mut().enumerate() {
        let request = verifier.make_request()?;
        let FreshnessField::Counter(issued) = request.freshness else {
            unreachable!("counter policy issues counters");
        };
        let golden = match campaign.expected_image(i) {
            ImageId::New => new_golden[i].as_ref().expect("updated device"),
            ImageId::Old => &device.golden_ram,
        };
        let response = device.prover.handle_request(&request)?;
        let healthy = verifier.check_response(&request, &response, &expected_image(golden, issued));
        println!(
            "  {:<10} expected {:?} image -> {}",
            device.name,
            campaign.expected_image(i),
            if healthy {
                "HEALTHY"
            } else {
                "COMPROMISED — memory changed!"
            }
        );
        if matches!(campaign.expected_image(i), ImageId::New) {
            campaign.report(
                i,
                if healthy {
                    DeviceOutcome::AttestedExpected
                } else {
                    DeviceOutcome::AttestedOther
                },
                1,
            );
        }
    }

    // The bug the per-device resolution prevents: judge a canary against
    // the fleet-wide *old* image and it reads as an infection.
    let request = verifier.make_request()?;
    let FreshnessField::Counter(issued) = request.freshness else {
        unreachable!("counter policy issues counters");
    };
    let response = fleet[0].prover.handle_request(&request)?;
    let stale_judgement = verifier.check_response(
        &request,
        &response,
        &expected_image(&fleet[0].golden_ram, issued),
    );
    println!(
        "\njudging {} against the fleet-wide v1 image: {}",
        fleet[0].name,
        if stale_judgement {
            "HEALTHY (?!)"
        } else {
            "COMPROMISED — the per-wave expectation is not optional"
        }
    );
    Ok(())
}
