//! A realistic deployment scenario: one verifier periodically attests a
//! fleet of IoT sensors. One device has been infected — its flash/RAM
//! image changed — and the attestation round flags exactly that device
//! while the prover-side defences keep the *network* cost of the sweep
//! bounded.
//!
//! ```sh
//! cargo run --example fleet_monitor
//! ```

use proverguard_attest::freshness::patch_expected_image;
use proverguard_attest::message::FreshnessField;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::map;

/// The verifier's reference image is the golden RAM with the protocol
/// state it expects folded in: an honest prover will have stored the
/// request's counter in `counter_R` before MACing its memory.
fn expected_image(golden: &[u8], request_counter: u64) -> Vec<u8> {
    let mut image = golden.to_vec();
    patch_expected_image(&mut image, &FreshnessField::Counter(request_counter));
    image
}

struct FleetDevice {
    name: String,
    prover: Prover,
    /// The golden RAM image the verifier expects for this device.
    golden_ram: Vec<u8>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProverConfig::recommended();
    let key = [0x42u8; 16];
    let mut verifier = Verifier::new(&config, &key)?;

    // Provision a five-device fleet.
    let mut fleet: Vec<FleetDevice> = (0..5)
        .map(|i| {
            let prover = Prover::provision(
                config.clone(),
                &key,
                format!("sensor firmware v1 (unit {i})").as_bytes(),
            )
            .expect("provision");
            let golden_ram = prover.expected_memory().to_vec();
            FleetDevice {
                name: format!("sensor-{i}"),
                prover,
                golden_ram,
            }
        })
        .collect();

    // Malware lands on sensor-3: it scribbles over application RAM
    // (static code/data change — what attestation is designed to catch).
    fleet[3].prover.mcu_mut().bus_write(
        map::APP_RAM.start + 0x200,
        b"MALWARE PAYLOAD",
        map::APP_CODE,
    )?;
    println!("sensor-3 has been silently infected…\n");

    // Periodic attestation sweep.
    println!("attestation sweep:");
    let mut total_device_ms = 0.0;
    for device in &mut fleet {
        let request = verifier.make_request()?;
        let FreshnessField::Counter(issued) = request.freshness else {
            unreachable!("counter policy issues counters");
        };
        match device.prover.handle_request(&request) {
            Ok(response) => {
                let reference = expected_image(&device.golden_ram, issued);
                let healthy = verifier.check_response(&request, &response, &reference);
                total_device_ms += device.prover.last_cost().total_ms();
                println!(
                    "  {:<10} responded in {:>7.3} ms -> {}",
                    device.name,
                    device.prover.last_cost().total_ms(),
                    if healthy {
                        "HEALTHY"
                    } else {
                        "COMPROMISED — memory changed!"
                    }
                );
            }
            Err(e) => println!("  {:<10} failed: {e}", device.name),
        }
    }
    println!("\nfleet sweep cost {total_device_ms:.0} ms of device compute in total.");
    println!("(each accepted attestation is the §3.1 ~754 ms whole-memory MAC —");
    println!(" which is exactly why provers must not perform it for impostors.)");
    Ok(())
}
