//! The §3.1 attack the paper opens with: an external adversary floods a
//! battery-powered sensor with bogus attestation requests. Compare what
//! the flood does to an unprotected prover versus the paper's
//! recommended deployment.
//!
//! ```sh
//! cargo run --example dos_attack
//! ```

use proverguard_adversary::dos::flood_with_forgeries;
use proverguard_attest::prover::ProverConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const FLOOD: u64 = 50;

    println!("flooding two provers with {FLOOD} forged attestation requests…\n");

    let open = flood_with_forgeries(ProverConfig::unprotected(), "unprotected", FLOOD)?;
    let guarded = flood_with_forgeries(ProverConfig::recommended(), "protected", FLOOD)?;

    for report in [&open, &guarded] {
        println!("{}:", report.label);
        println!(
            "  requests answered      : {}/{}",
            report.answered, report.requests
        );
        println!(
            "  device compute burned  : {:.1} ms ({:.3} ms per forgery)",
            report.ms_per_request() * report.requests as f64,
            report.ms_per_request()
        );
        println!(
            "  battery energy drained : {:.2e} J ({:.6}% of capacity)",
            report.energy_joules,
            report.battery_fraction * 100.0
        );
        println!();
    }

    let amplification = open.cycles_burned as f64 / guarded.cycles_burned.max(1) as f64;
    println!("the unprotected prover burned {amplification:.0}x more energy on the same flood.");
    println!("(paper §3.1: every bogus request costs ~754 ms of whole-memory MAC;");
    println!(" §4.1: a Speck-authenticated request is dismissed in 0.017 ms.)");
    Ok(())
}
