//! Fault injection: run attestation sessions over a hostile channel and
//! watch the verifier's retry/backoff driver claw them back — then power
//! cycle the prover and compare recovery with and without a sealed
//! freshness record.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use proverguard_adversary::fault::{FaultConfig, FaultyLink};
use proverguard_adversary::world::World;
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::session::{RetryPolicy, SessionDriver};
use proverguard_attest::{InMemoryNvStore, RecoveryOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 0x0DAC_2016;
    let policy = RetryPolicy {
        timeout_ms: 1000,
        max_retries: 8,
        backoff_base_ms: 250,
        backoff_factor: 2,
        ..RetryPolicy::default()
    };
    let driver = SessionDriver::new(policy);

    println!("fault-injected attestation sessions (seed {seed:#x})\n");

    for (label, fault_config) in [
        ("lossy (30% drop, 20% delay)", FaultConfig::lossy(seed)),
        (
            "corrupting (25% truncate, 25% bit-flip)",
            FaultConfig::corrupting(seed),
        ),
        (
            "rebooting (30% reboot, 10% clock glitch)",
            FaultConfig::rebooting(seed),
        ),
    ] {
        let mut world = World::new(ProverConfig::recommended())?;
        world.advance_ms(5_000)?;
        world
            .prover
            .attach_nv_store(Box::new(InMemoryNvStore::new()))?;
        let mut link = FaultyLink::new(world, fault_config);

        println!("channel: {label}");
        for session in 1..=3 {
            let report = driver.run(&mut link);
            println!(
                "  session {session}: {} after {} attempt(s), {} ms of backoff",
                if report.succeeded() {
                    "succeeded"
                } else {
                    "FAILED"
                },
                report.attempt_count(),
                report.total_backoff_ms(),
            );
            for record in &report.attempts {
                println!(
                    "    attempt {}: {:?} (backoff {} ms)",
                    record.attempt, record.outcome, record.backoff_ms
                );
            }
        }
        println!("  injected faults:");
        for event in link.events() {
            println!(
                "    message {} ({:?} leg): {:?}",
                event.message_index, event.direction, event.kind
            );
        }
        let stats = link.world.prover.stats();
        println!(
            "  prover stats: seen {}, accepted {}, malformed {}, reboots {}\n",
            stats.requests_seen, stats.accepted, stats.rejected_malformed, stats.reboots
        );
    }

    // The recovery half of the story: what a power cycle does to the
    // replay defence, with and without the sealed NV record.
    println!("reboot recovery (counter freshness across a power cycle):");
    for (label, attach_store) in [("sealed NV record", true), ("no NV store", false)] {
        let mut world = World::new(ProverConfig::recommended())?;
        if attach_store {
            world
                .prover
                .attach_nv_store(Box::new(InMemoryNvStore::new()))?;
        }
        let request = world.verifier.make_request()?;
        world.deliver(&request)?;

        let outcome = world.prover.reboot()?;
        let recovery = match outcome {
            RecoveryOutcome::Restored(record) => {
                format!("restored counter {}", record.counter_r)
            }
            other => format!("{other:?}"),
        };
        let replay = if world.prover.handle_request(&request).is_err() {
            "replay still rejected"
        } else {
            "replay ACCEPTED (rollback)"
        };
        println!("  {label:<18} -> {recovery:<22} {replay}");
    }

    Ok(())
}
