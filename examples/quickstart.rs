//! Quickstart: provision a protected prover, run one attestation round,
//! and look at what it cost the device.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's recommended lightweight deployment: Speck-authenticated
    // requests, a monotonic counter, EA-MAC protection of K_Attest and
    // counter_R, installed and locked by secure boot.
    let config = ProverConfig::recommended();
    let shared_key = [0x42u8; 16];

    let mut prover = Prover::provision(config.clone(), &shared_key, b"sensor firmware v1")?;
    let mut verifier = Verifier::new(&config, &shared_key)?;

    println!("prover provisioned:");
    println!("  auth      : {}", config.auth);
    println!("  freshness : {}", config.freshness);
    println!(
        "  EA-MPU    : {} rules, locked = {}",
        prover.mcu().mpu().rules().len(),
        prover.mcu().mpu().is_locked()
    );

    // One genuine attestation round.
    let request = verifier.make_request()?;
    let response = prover.handle_request(&request)?;
    let genuine = verifier.check_response(&request, &response, prover.expected_memory());
    println!("\ngenuine attestation round: verifier accepts = {genuine}");
    println!(
        "  device cost: {:.3} ms at 24 MHz",
        prover.last_cost().total_ms()
    );
    println!("    auth check : {} cycles", prover.last_cost().auth_cycles);
    println!(
        "    freshness  : {} cycles",
        prover.last_cost().freshness_cycles
    );
    println!(
        "    memory MAC : {} cycles",
        prover.last_cost().response_cycles
    );

    // A forged request bounces off the first pipeline stage.
    let mut forged = verifier.make_request()?;
    forged.auth = vec![0u8; forged.auth.len()];
    let rejected = prover.handle_request(&forged);
    println!("\nforged request: {rejected:?}");
    println!(
        "  device cost: {:.3} ms — {}x cheaper than answering it",
        prover.last_cost().total_ms(),
        (754.0 / prover.last_cost().total_ms()) as u64
    );

    // A replay bounces off the second stage.
    let replay = prover.handle_request(&request);
    println!("\nreplayed request: {replay:?}");

    Ok(())
}
