//! A verifier gateway on a real TCP socket, serving a small fleet of
//! socketed provers — with a forgery flood hammering the same port.
//!
//! ```sh
//! cargo run --example gateway
//! ```
//!
//! One process, three roles:
//! - the **gateway**: accept loop + bounded queue + worker pool on
//!   127.0.0.1, driving the retry/backoff `SessionDriver` per prover;
//! - three **honest provers**, each dialing in over TCP and answering the
//!   memory-MAC challenge;
//! - a **forger** who knows a valid device id but not its key.
//!
//! The gateway must verify every honest session, fail every forged one,
//! and account for every connection in its stats partition.

use std::thread;
use std::time::Duration;

use proverguard_adversary::wire::forgery_flood;
use proverguard_attest::gateway::{DeviceDirectory, Gateway, GatewayConfig, ProverAgent};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_transport::{TcpAcceptor, TcpTransport, Transport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ProverConfig::recommended();

    // Provision a directory of devices: each prover/verifier pair shares
    // a per-device key, and the gateway holds the verifier side.
    let mut directory = DeviceDirectory::new();
    let mut agents = Vec::new();
    for d in 0..3u64 {
        let mut key = [0x42u8; 16];
        key[0] ^= d as u8;
        let prover = Prover::provision(config.clone(), &key, b"sensor firmware v1")?;
        let verifier = Verifier::new(&config, &key)?;
        let id = directory.register(verifier, prover.expected_memory().to_vec());
        agents.push(ProverAgent::new(prover, id));
    }

    let acceptor = TcpAcceptor::bind("127.0.0.1:0")?;
    let addr = acceptor.local_addr();
    println!("gateway listening on {addr} (2 workers, queue depth 4)");
    let handle = Gateway::start(
        Box::new(acceptor),
        directory,
        GatewayConfig {
            workers: 2,
            queue_depth: 4,
            retry: RetryPolicy {
                timeout_ms: 10_000,
                ..GatewayConfig::default().retry
            },
            ..GatewayConfig::default()
        },
    );

    // Honest fleet: every prover dials in twice over real sockets.
    let clients: Vec<_> = agents
        .into_iter()
        .map(|mut agent| {
            thread::spawn(move || {
                let policy = RetryPolicy {
                    timeout_ms: 10_000,
                    max_retries: 10,
                    backoff_base_ms: 5,
                    backoff_factor: 1,
                    jitter_per_mille: 500,
                    jitter_seed: 0xfee1,
                };
                (0..2)
                    .filter(|_| {
                        agent
                            .attest_with_retry(
                                || {
                                    TcpTransport::connect(addr)
                                        .map(|conn| Box::new(conn) as Box<dyn Transport>)
                                },
                                &policy,
                                Duration::from_secs(30),
                                50,
                            )
                            .is_verified()
                    })
                    .count()
            })
        })
        .collect();

    // The forger: a valid Hello for device 0, garbage answers to every
    // challenge. The gateway burns its retries and reports failure.
    let forger = thread::spawn(move || {
        forgery_flood(
            || TcpTransport::connect(addr).map(|conn| Box::new(conn) as Box<dyn Transport>),
            0,
            3,
            0x5eed,
            Duration::from_secs(30),
        )
    });

    let verified: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let flood = forger.join().unwrap();
    let report = handle.shutdown();

    println!("\nhonest fleet : {verified}/6 sessions verified over TCP");
    println!(
        "forger       : {} sessions, {} forged responses, {} failed-session verdicts",
        flood.attempts, flood.forged_responses, flood.byes
    );
    let stats = &report.stats;
    println!(
        "gateway      : accepted {} = busy {} + enqueued {}; ok {} / failed {} / handshake {}",
        stats.accepted,
        stats.busy_rejected,
        stats.enqueued,
        stats.sessions_ok,
        stats.sessions_failed,
        stats.handshake_failed
    );
    println!(
        "accounting   : partition holds = {}, {} spans traced, {} dropped",
        stats.partition_holds(),
        report.spans,
        report.dropped_spans
    );
    println!("\nmerged gateway telemetry:\n{}", report.metrics.render());
    Ok(())
}
