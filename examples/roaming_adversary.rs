//! The §5 roaming adversary, narrated: eavesdrop → compromise & erase
//! traces → replay. Run against the unprotected device (the attack works
//! and leaves no trace) and the EA-MAC device (every step is denied).
//!
//! ```sh
//! cargo run --example roaming_adversary
//! ```

use proverguard_adversary::roam::{run_roam_attack, RoamAttack};
use proverguard_adversary::world::World;
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::ProverConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Adv_roam vs counter-based freshness (§5) ===\n");
    for protection in [Protection::Open, Protection::EaMac] {
        let mut config = ProverConfig::recommended();
        config.protection = protection;
        let mut world = World::new(config)?;
        let outcome = run_roam_attack(&mut world, RoamAttack::CounterRollback, 5_000)?;

        println!("device: {protection:?}");
        println!("  phase I  : eavesdropped one genuine attreq(i); prover processed it");
        for t in &outcome.tampering {
            println!(
                "  phase II : {} -> {}",
                t.action,
                if t.succeeded {
                    "SUCCEEDED"
                } else {
                    "DENIED by EA-MPU"
                }
            );
        }
        println!(
            "  phase III: replayed attreq(i) after 5 s -> {}",
            if outcome.replay_accepted {
                "ACCEPTED (prover burned ~754 ms; DoS, and no trace remains)"
            } else {
                "rejected (counter_R still reads i)"
            }
        );
        println!();
    }

    println!("=== Adv_roam vs timestamps on the SW-clock (Figure 1b) ===\n");
    for protection in [Protection::Open, Protection::EaMac] {
        let mut config = ProverConfig::timestamp_sw_clock();
        config.protection = protection;
        let mut world = World::new(config)?;
        let outcome = run_roam_attack(&mut world, RoamAttack::IdtHijack, 5_000)?;

        println!("device: {protection:?}");
        for t in &outcome.tampering {
            println!(
                "  phase II : {} -> {}",
                t.action,
                if t.succeeded {
                    "SUCCEEDED (Code_Clock never runs again)"
                } else {
                    "DENIED by EA-MPU"
                }
            );
        }
        println!(
            "  phase III: delivered the held-back attreq(t) -> {}",
            if outcome.replay_accepted {
                "ACCEPTED (DoS)"
            } else {
                "rejected"
            }
        );
        if let Some(lag) = outcome.clock_lag_ms {
            println!(
                "  evidence : prover clock lags true time by {lag} ms{}",
                if lag > 100 {
                    " — the §5 footprint a clock attack cannot avoid"
                } else {
                    ""
                }
            );
        }
        println!();
    }
    Ok(())
}
