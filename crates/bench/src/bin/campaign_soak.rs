//! Soaks the attestation-gated OTA campaign engine at fleet scale: a
//! staged rollout over thousands of simulated devices behind the PR-2
//! lossy-radio fault schedule, with torn flashes, roaming devices and a
//! few compromised provers mixed in.
//!
//! Two scenarios run, both fully deterministic from the seed:
//!
//! 1. **Lossy rollout** — 2,000 devices under 300 ‰ drops / 200 ‰
//!    delays, 5 ‰ torn flashes, 10 ‰ roaming, four compromised devices.
//!    The campaign must converge within the tick budget, no device may
//!    be `Healthy` without actually holding the new image, every
//!    compromised device must end quarantined, and every `UpdateFirmware`
//!    retry must have minted a *fresh* command counter from the real
//!    verifier (zero reuse).
//! 2. **Bad canary image** — the new image attests as neither image.
//!    The campaign must auto-halt before the second wave ever starts and
//!    roll the whole admitted fleet back to a re-attested old image.
//!
//! Both scenarios also check the telemetry contract: the campaign's
//! phase spans must partition the campaign's total tick span exactly —
//! every tick is attributed to exactly one phase.
//!
//! `--ci` turns violations into a non-zero exit and writes
//! `BENCH_campaign.json`.
//!
//! ```sh
//! cargo run --release -p proverguard-bench --bin campaign_soak
//! cargo run --release -p proverguard-bench --bin campaign_soak -- --ci
//! ```

use std::collections::HashSet;
use std::fmt::Write as _;

use proverguard_adversary::campaign::{CampaignSimConfig, SimFlash, SimFleet};
use proverguard_attest::campaign::{
    CampaignAction, CampaignConfig, CampaignController, CampaignPhase, DeviceOutcome, DeviceState,
};
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::services::Command;
use proverguard_attest::verifier::Verifier;
use proverguard_bench::render_table;
use proverguard_telemetry::trace::{self, TraceEvent};

/// The fixed CI seed (recorded in EXPERIMENTS.md E11): change it and the
/// deterministic campaign gate is a different experiment.
const CI_SEED: u64 = 0xC0DE_07A5;

/// Fleet size for the lossy rollout.
const DEVICES: usize = 2_000;

/// Convergence budget, in campaign ticks.
const TICK_BUDGET: u64 = 400;

const KEY: [u8; 16] = [0x42; 16];

/// Campaign tuning shared by both scenarios: an 8-device canary growing
/// 4× per wave; per-device budgets sized for a 44 % per-action timeout
/// rate; a sluggish failure EWMA (α = 0.1) so scattered losses never
/// halt, while a failing canary (≥ 8 consecutive settlements) does.
fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        canary_size: 8,
        wave_growth: 4,
        max_attempts: 6,
        halt_failure_ewma: 0.5,
        ewma_alpha: 0.1,
        min_halt_samples: 8,
        breaker_trip_halt: u64::MAX, // EWMA is the halt signal under soak
        wave_deadline: 10,
        max_inflight: 4_096,
        ..CampaignConfig::default()
    }
}

struct RunReport {
    label: String,
    devices: usize,
    phase: CampaignPhase,
    ticks: u64,
    healthy: u64,
    failed: u64,
    quarantined: u64,
    rolled_back: u64,
    torn_events: u64,
    parked_events: u64,
    update_actions: u64,
    attest_actions: u64,
    waves_started: u64,
    counters_minted: usize,
    phase_spans: Vec<(String, u64)>,
}

/// Drives one campaign to a terminal phase (or the tick budget) against
/// a simulated fleet, minting a real verifier command counter for every
/// `SendUpdate` and recording violations of the CI invariants.
fn run_campaign(
    label: &str,
    sim: CampaignSimConfig,
    config: CampaignConfig,
    violations: &mut Vec<String>,
) -> RunReport {
    let devices = sim.devices;
    let mut fleet = SimFleet::new(sim);
    let mut controller = CampaignController::new(devices, config);

    // The real verifier mints the freshness counter for every firmware
    // command; the gate below proves retries never reuse one.
    let vconfig = ProverConfig::recommended();
    let mut verifier = Verifier::new(&vconfig, &KEY).expect("verifier");
    let mut counters: HashSet<u64> = HashSet::new();

    trace::reset();
    trace::enable();

    let mut now = 0u64;
    loop {
        for i in fleet.poll_returns(now) {
            controller.report(i, DeviceOutcome::CameOnline, now);
        }
        let actions = controller.tick(now);
        if controller.phase().is_terminal() {
            break;
        }
        for action in actions {
            if let CampaignAction::SendUpdate { .. } = action {
                let request = verifier.make_command(Command::UpdateFirmware {
                    image: b"campaign soak image".to_vec(),
                });
                if !counters.insert(request.counter) {
                    violations.push(format!(
                        "{label}: command counter {} reused across retries",
                        request.counter
                    ));
                }
            }
            let outcome = fleet.perform(action, now);
            controller.report(action.device(), outcome, now);
        }
        now += 1;
        if now > TICK_BUDGET {
            violations.push(format!(
                "{label}: campaign did not reach a terminal phase within {TICK_BUDGET} ticks \
                 (phase {:?})",
                controller.phase()
            ));
            break;
        }
    }
    controller.finish(now);

    // Telemetry contract: the campaign phase spans partition [0, now).
    let mut spans: Vec<(u64, u64, &'static str)> = trace::drain()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Span {
                name,
                start_cycles,
                end_cycles,
                ..
            } if name.starts_with("campaign.phase.") => Some((start_cycles, end_cycles, name)),
            _ => None,
        })
        .collect();
    spans.sort_unstable();
    let mut cursor = 0u64;
    for &(start, end, name) in &spans {
        if start != cursor {
            violations.push(format!(
                "{label}: phase span {name} starts at {start}, expected {cursor} — \
                 spans do not partition the campaign"
            ));
        }
        cursor = end;
    }
    if cursor != now {
        violations.push(format!(
            "{label}: phase spans cover [0, {cursor}) but the campaign ran [0, {now})"
        ));
    }

    // Oracle: nothing the controller called Healthy may hold anything
    // but the new image, and compromised devices are never Healthy.
    for i in 0..devices {
        if controller.device_state(i) == DeviceState::Healthy {
            if fleet.flash_of(i) != SimFlash::New {
                violations.push(format!(
                    "{label}: device {i} is Healthy but its flash holds {:?}",
                    fleet.flash_of(i)
                ));
            }
            if fleet.is_compromised(i) {
                violations.push(format!("{label}: compromised device {i} marked Healthy"));
            }
        }
        if fleet.is_compromised(i)
            && controller.phase() == CampaignPhase::Complete
            && controller.device_state(i) != DeviceState::Quarantined
        {
            violations.push(format!(
                "{label}: compromised device {i} ended {:?}, not Quarantined",
                controller.device_state(i)
            ));
        }
    }

    let stats = controller.stats();
    RunReport {
        label: label.to_string(),
        devices,
        phase: controller.phase(),
        ticks: now,
        healthy: stats.healthy,
        failed: stats.failed,
        quarantined: stats.quarantined,
        rolled_back: stats.rolled_back,
        torn_events: stats.torn_events,
        parked_events: stats.parked_events,
        update_actions: stats.update_actions,
        attest_actions: stats.attest_actions,
        waves_started: stats.waves_started,
        counters_minted: counters.len(),
        phase_spans: spans
            .iter()
            .map(|&(s, e, n)| (n.trim_start_matches("campaign.phase.").to_string(), e - s))
            .collect(),
    }
}

fn run(violations: &mut Vec<String>) -> (RunReport, RunReport) {
    // Scenario 1: the lossy rollout at fleet scale.
    let lossy = run_campaign(
        "lossy rollout",
        CampaignSimConfig::lossy(CI_SEED, DEVICES),
        campaign_config(),
        violations,
    );
    if lossy.phase != CampaignPhase::Complete {
        violations.push(format!(
            "lossy rollout: expected Complete, ended {:?}",
            lossy.phase
        ));
    }
    if lossy.quarantined != (DEVICES / 500) as u64 {
        violations.push(format!(
            "lossy rollout: {} devices quarantined, expected {}",
            lossy.quarantined,
            DEVICES / 500
        ));
    }

    // Scenario 2: the canary flashes a bad image — auto-halt + rollback.
    let mut bad_sim = CampaignSimConfig::lossy(CI_SEED ^ 0xBAD, 256);
    bad_sim.bad_image = true;
    bad_sim.compromised = 0;
    let bad = run_campaign("bad canary image", bad_sim, campaign_config(), violations);
    if bad.phase != CampaignPhase::RolledBack {
        violations.push(format!(
            "bad canary: expected RolledBack, ended {:?}",
            bad.phase
        ));
    }
    if bad.waves_started != 1 {
        violations.push(format!(
            "bad canary: {} waves started — the halt must land before wave 2",
            bad.waves_started
        ));
    }
    if bad.healthy != 0 {
        violations.push(format!(
            "bad canary: {} devices Healthy on a bad image",
            bad.healthy
        ));
    }

    (lossy, bad)
}

fn write_json(path: &str, runs: &[&RunReport]) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"campaign\",");
    let _ = writeln!(out, "  \"seed\": {CI_SEED},");
    let _ = writeln!(out, "  \"tick_budget\": {TICK_BUDGET},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"devices\": {},", r.devices);
        let _ = writeln!(out, "      \"phase\": \"{:?}\",", r.phase);
        let _ = writeln!(out, "      \"ticks\": {},", r.ticks);
        let _ = writeln!(out, "      \"healthy\": {},", r.healthy);
        let _ = writeln!(out, "      \"failed\": {},", r.failed);
        let _ = writeln!(out, "      \"quarantined\": {},", r.quarantined);
        let _ = writeln!(out, "      \"rolled_back\": {},", r.rolled_back);
        let _ = writeln!(out, "      \"torn_events\": {},", r.torn_events);
        let _ = writeln!(out, "      \"parked_events\": {},", r.parked_events);
        let _ = writeln!(out, "      \"update_actions\": {},", r.update_actions);
        let _ = writeln!(out, "      \"attest_actions\": {},", r.attest_actions);
        let _ = writeln!(out, "      \"waves_started\": {},", r.waves_started);
        let _ = writeln!(out, "      \"counters_minted\": {},", r.counters_minted);
        let _ = writeln!(out, "      \"phase_spans\": [");
        for (j, (name, ticks)) in r.phase_spans.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"phase\": \"{name}\", \"ticks\": {ticks}}}{}",
                if j + 1 == r.phase_spans.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 == runs.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let mut violations = Vec::new();
    let (lossy, bad) = run(&mut violations);

    let rows: Vec<Vec<String>> = [&lossy, &bad]
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.devices),
                format!("{:?}", r.phase),
                format!("{}", r.ticks),
                format!("{}", r.waves_started),
                format!("{}", r.healthy),
                format!("{}", r.rolled_back),
                format!("{}", r.quarantined),
                format!("{}", r.failed),
                format!("{}", r.torn_events),
                format!("{}", r.parked_events),
            ]
        })
        .collect();
    println!("attestation-gated OTA campaign soak (seed {CI_SEED:#x})\n");
    println!(
        "{}",
        render_table(
            &[
                "scenario", "devices", "phase", "ticks", "waves", "healthy", "rolledbk", "quarant",
                "failed", "torn", "parked",
            ],
            &rows,
            &[18, 8, 12, 6, 6, 8, 9, 8, 7, 5, 7],
        )
    );
    println!(
        "lossy rollout: {} update + {} attest actions, {} fresh command counters minted \
         (zero reuse); phase spans partition all {} ticks.",
        lossy.update_actions, lossy.attest_actions, lossy.counters_minted, lossy.ticks
    );
    println!(
        "bad canary: halted in wave 1 and re-attested the old image on {} of {} devices \
         ({} exhausted their retry budget).",
        bad.rolled_back, bad.devices, bad.failed
    );

    if ci_mode {
        let json_path = "BENCH_campaign.json";
        if let Err(e) = write_json(json_path, &[&lossy, &bad]) {
            eprintln!("CAMPAIGN SOAK: failed to write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
        if violations.is_empty() {
            println!("all campaign invariants held");
            return;
        }
        for violation in &violations {
            eprintln!("CAMPAIGN INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    } else if !violations.is_empty() {
        for violation in &violations {
            eprintln!("CAMPAIGN INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    }
}
