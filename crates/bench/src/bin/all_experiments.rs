//! Runs the complete security evaluation in one shot and checks every
//! paper claim programmatically — the summary the other binaries print in
//! detail.

use proverguard_adversary::SuiteReport;

fn main() {
    let report = SuiteReport::run_all(10).expect("suite runs");
    print!("{report}");
    if !report.claims_hold() {
        eprintln!("REPRODUCTION FAILURE: at least one paper claim did not hold");
        std::process::exit(1);
    }
}
