//! Hammers a loopback verifier gateway with a fleet of concurrent honest
//! prover threads while garbage and forgery floods compete for the same
//! bounded work queue — the socketed, multi-threaded version of the
//! paper's DoS economics: the gateway must shed the flood with cheap
//! `Busy` frames while every honest session still verifies.
//!
//! Default mode compares a light and a heavy flood and prints throughput
//! plus p50/p90/p99 session latency from the gateway's merged telemetry.
//! `--ci` runs one short deterministic gate (seed below) and exits
//! non-zero if any invariant is violated: every honest session verified,
//! excess load shed with `Busy`, the stats partition law, every worker
//! exercised, and zero dropped trace spans.

use std::thread;
use std::time::{Duration, Instant};

use proverguard_adversary::wire::{forgery_flood, junk_frame_flood, raw_garbage_flood, FloodStats};
use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayMsg, GatewayReport, ProverAgent,
};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_bench::render_table;
use proverguard_transport::{LoopbackConnector, LoopbackHub, Transport, DEFAULT_MAX_FRAME};

/// Seed for the `--ci` gate (recorded in EXPERIMENTS.md).
const CI_SEED: u64 = 0xDAC1_6761_7465;

#[derive(Debug, Clone)]
struct BenchConfig {
    label: String,
    /// Concurrent honest prover threads (the acceptance gate needs >= 8).
    honest_threads: usize,
    /// Attestation sessions each honest thread completes.
    sessions_per_thread: usize,
    workers: usize,
    queue_depth: usize,
    /// Forged sessions (valid `Hello`, garbage responses).
    forgery_sessions: usize,
    /// Well-framed protocol-garbage connections.
    junk_frames: usize,
    /// Unframed line-noise blasts at the codec.
    raw_blasts: usize,
    /// Service floor for the saturation-probe devices.
    probe_floor_ms: u64,
    /// Connections dialed against the saturated gateway; each must be
    /// shed with `Busy`.
    shed_dials: usize,
    seed: u64,
}

impl BenchConfig {
    fn ci() -> Self {
        BenchConfig {
            label: "ci gate".to_string(),
            honest_threads: 8,
            sessions_per_thread: 2,
            workers: 4,
            queue_depth: 4,
            forgery_sessions: 8,
            junk_frames: 12,
            raw_blasts: 12,
            probe_floor_ms: 300,
            shed_dials: 3,
            seed: CI_SEED,
        }
    }
}

struct BenchOutcome {
    honest_total: u64,
    honest_verified: u64,
    flood: FloodStats,
    shed_busy: u64,
    shed_dials: u64,
    report: GatewayReport,
    elapsed: Duration,
    violations: Vec<String>,
}

fn provision(index: u64) -> (Prover, Verifier) {
    let config = ProverConfig::recommended();
    let mut key = [0x42u8; 16];
    key[0] ^= (index & 0xff) as u8;
    key[1] ^= ((index >> 8) & 0xff) as u8;
    let prover = Prover::provision(config.clone(), &key, b"app v1").expect("provision prover");
    let verifier = Verifier::new(&config, &key).expect("provision verifier");
    (prover, verifier)
}

fn boxed_connect(
    connector: &LoopbackConnector,
) -> impl FnMut() -> Result<Box<dyn Transport>, proverguard_transport::TransportError> + '_ {
    move || {
        connector
            .connect()
            .map(|conn| Box::new(conn) as Box<dyn Transport>)
    }
}

/// Client-side retry: patient (`Busy` shed is expected under flood) with
/// seeded jitter so concurrent threads decorrelate their re-dials.
fn client_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        timeout_ms: 10_000,
        max_retries: 40,
        backoff_base_ms: 5,
        backoff_factor: 1,
        jitter_per_mille: 500,
        jitter_seed: seed,
    }
}

/// Dials the saturated gateway once and reports whether it was shed with
/// a `Busy` frame. Mirrors the agent's drain semantics: the accept loop
/// writes `Busy` and hangs up, so the send may fail while the verdict
/// frame is already queued on our receiver.
fn dial_expect_busy(connector: &LoopbackConnector, device_id: u64) -> bool {
    let Ok(mut conn) = connector.connect() else {
        return false;
    };
    let _ = conn.set_deadline(Some(Duration::from_millis(1_000)));
    let _ = conn.send(&GatewayMsg::Hello { device_id }.encode());
    loop {
        match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
            Ok(Ok(GatewayMsg::Busy)) => return true,
            Ok(Ok(_)) => continue,
            _ => return false,
        }
    }
}

fn run_bench(cfg: &BenchConfig) -> BenchOutcome {
    let io_timeout = Duration::from_secs(10);
    let mut directory = DeviceDirectory::new();

    // Honest fleet: one device per thread.
    let mut agents = Vec::new();
    for t in 0..cfg.honest_threads {
        let (prover, verifier) = provision(t as u64);
        let id = directory.register(verifier, prover.expected_memory().to_vec());
        agents.push(ProverAgent::new(prover, id));
    }
    // The forgery flood's target: a real registered device whose key the
    // flood does not hold.
    let (_forge_prover, forge_verifier) = provision(0x1000);
    let forge_id = directory.register(forge_verifier, _forge_prover.expected_memory().to_vec());
    // Saturation-probe devices: their floor keeps a worker occupied long
    // enough to pigeonhole one probe session onto every worker and make
    // the `Busy` shed deterministic.
    let probe_count = cfg.workers + cfg.queue_depth;
    let mut probe_agents = Vec::new();
    for p in 0..probe_count {
        let (prover, verifier) = provision(0x2000 + p as u64);
        let id = directory.register_with_floor(
            verifier,
            prover.expected_memory().to_vec(),
            cfg.probe_floor_ms,
        );
        probe_agents.push(ProverAgent::new(prover, id));
    }

    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let gateway_config = GatewayConfig {
        workers: cfg.workers,
        queue_depth: cfg.queue_depth,
        read_timeout_ms: 2_000,
        write_timeout_ms: 2_000,
        retry: RetryPolicy {
            timeout_ms: 10_000,
            max_retries: 2,
            backoff_base_ms: 5,
            backoff_factor: 2,
            jitter_per_mille: 500,
            jitter_seed: cfg.seed,
        },
        backoff_cap_ms: 50,
        accept_poll_ms: 5,
        trace_capacity: 8_192,
        ..GatewayConfig::default()
    };
    let handle = Gateway::start(Box::new(hub), directory, gateway_config);
    let started = Instant::now();

    // Phase 1 — honest fleet under flood.
    let sessions_per_thread = cfg.sessions_per_thread;
    let seed = cfg.seed;
    let honest_joins: Vec<_> = agents
        .into_iter()
        .enumerate()
        .map(|(t, mut agent)| {
            let connector = connector.clone();
            let policy = client_policy(seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
            thread::spawn(move || {
                let mut verified = 0u64;
                for _ in 0..sessions_per_thread {
                    let outcome = agent.attest_with_retry(
                        boxed_connect(&connector),
                        &policy,
                        Duration::from_secs(10),
                        50,
                    );
                    if outcome.is_verified() {
                        verified += 1;
                    }
                }
                verified
            })
        })
        .collect();

    let forge_join = {
        let connector = connector.clone();
        let sessions = cfg.forgery_sessions;
        thread::spawn(move || {
            forgery_flood(
                boxed_connect(&connector),
                forge_id,
                sessions,
                seed,
                io_timeout,
            )
        })
    };
    let junk_join = {
        let connector = connector.clone();
        let frames = cfg.junk_frames;
        thread::spawn(move || junk_frame_flood(boxed_connect(&connector), frames, seed))
    };
    let raw_join = {
        let connector = connector.clone();
        let blasts = cfg.raw_blasts;
        thread::spawn(move || raw_garbage_flood(&connector, blasts, seed))
    };

    let honest_total = (cfg.honest_threads * cfg.sessions_per_thread) as u64;
    let mut honest_verified: u64 = honest_joins
        .into_iter()
        .map(|j| j.join().expect("honest thread panicked"))
        .sum();
    let mut flood = FloodStats::default();
    for stats in [
        forge_join.join().expect("forgery flood panicked"),
        junk_join.join().expect("junk flood panicked"),
        raw_join.join().expect("raw flood panicked"),
    ] {
        flood.attempts += stats.attempts;
        flood.busy += stats.busy;
        flood.byes += stats.byes;
        flood.forged_responses += stats.forged_responses;
        flood.closed += stats.closed;
    }

    // Phase 1.5 — forgery soak on the now-quiescent gateway: with the
    // honest load drained, every forged session reaches a worker, which
    // must burn its retries against the garbage responses and report the
    // session failed — never mis-verify.
    let quiescent = forgery_flood(
        boxed_connect(&connector),
        forge_id,
        cfg.forgery_sessions,
        seed ^ 0x5155_4945,
        io_timeout,
    );
    flood.attempts += quiescent.attempts;
    flood.busy += quiescent.busy;
    flood.byes += quiescent.byes;
    flood.forged_responses += quiescent.forged_responses;
    flood.closed += quiescent.closed;

    // Phase 2 — saturation probe: exactly workers + queue_depth sessions
    // against the floor devices. Each occupies its worker for at least
    // `probe_floor_ms`, so every worker serves at least one (pigeonhole)
    // and, mid-floor, the queue is provably full: the extra dials below
    // MUST come back `Busy`.
    let probe_total = probe_agents.len() as u64;
    let probe_joins: Vec<_> = probe_agents
        .into_iter()
        .enumerate()
        .map(|(p, mut agent)| {
            let connector = connector.clone();
            let policy = client_policy(seed ^ 0x7072_6f62 ^ (p as u64) << 8);
            // Staggered dials fill workers-then-queue in order, so no
            // probe bounces off a transiently full channel at spawn.
            thread::sleep(Duration::from_millis(3));
            thread::spawn(move || {
                agent
                    .attest_with_retry(
                        boxed_connect(&connector),
                        &policy,
                        Duration::from_secs(30),
                        50,
                    )
                    .is_verified() as u64
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(cfg.probe_floor_ms / 2));
    let mut shed_busy = 0u64;
    for _ in 0..cfg.shed_dials {
        if dial_expect_busy(&connector, forge_id) {
            shed_busy += 1;
        }
    }

    let probe_verified: u64 = probe_joins
        .into_iter()
        .map(|j| j.join().expect("probe thread panicked"))
        .sum();
    honest_verified += probe_verified;
    let elapsed = started.elapsed();
    let report = handle.shutdown();

    let mut violations = Vec::new();
    let all_honest = honest_total + probe_total;
    if honest_verified != all_honest {
        violations.push(format!(
            "honest sessions: {honest_verified}/{all_honest} verified"
        ));
    }
    if report.stats.sessions_ok != all_honest {
        violations.push(format!(
            "gateway verified {} sessions, expected exactly the {all_honest} honest ones",
            report.stats.sessions_ok
        ));
    }
    if shed_busy != cfg.shed_dials as u64 {
        violations.push(format!(
            "saturation probe: only {shed_busy}/{} dials shed with Busy",
            cfg.shed_dials
        ));
    }
    if report.stats.busy_rejected < shed_busy {
        violations.push(format!(
            "busy_rejected {} < shed probe count {shed_busy}",
            report.stats.busy_rejected
        ));
    }
    if !report.stats.partition_holds() {
        violations.push(format!("stats partition violated: {:?}", report.stats));
    }
    if let Some(idle) = report
        .stats
        .per_worker_sessions
        .iter()
        .position(|&sessions| sessions == 0)
    {
        violations.push(format!(
            "worker {idle} served zero sessions: {:?}",
            report.stats.per_worker_sessions
        ));
    }
    if report.dropped_spans != 0 {
        violations.push(format!("{} trace spans dropped", report.dropped_spans));
    }
    if flood.forged_responses == 0 {
        violations.push("forgery flood never reached a worker (no forged responses)".to_string());
    }
    if flood.byes == 0 {
        violations.push("no forged session was driven to a failed-session Bye verdict".to_string());
    }
    match report.metrics.histogram("gateway.session_us") {
        Some(hist) if hist.count() >= all_honest => {}
        Some(hist) => violations.push(format!(
            "session histogram holds {} samples, expected >= {all_honest}",
            hist.count()
        )),
        None => violations.push("gateway.session_us histogram missing".to_string()),
    }

    BenchOutcome {
        honest_total: all_honest,
        honest_verified,
        flood,
        shed_busy,
        shed_dials: cfg.shed_dials as u64,
        report,
        elapsed,
        violations,
    }
}

fn percentiles(outcome: &BenchOutcome) -> (u64, u64, u64) {
    outcome
        .report
        .metrics
        .histogram("gateway.session_us")
        .map_or((0, 0, 0), |h| {
            (h.percentile(50), h.percentile(90), h.percentile(99))
        })
}

fn throughput(outcome: &BenchOutcome) -> f64 {
    let secs = outcome.elapsed.as_secs_f64();
    if secs > 0.0 {
        outcome.report.stats.sessions_total() as f64 / secs
    } else {
        0.0
    }
}

fn print_run(cfg: &BenchConfig, outcome: &BenchOutcome) {
    let (p50, p90, p99) = percentiles(outcome);
    println!(
        "gateway bench [{}] seed {:#x}: {} workers / queue {}, {} honest threads x {} sessions",
        cfg.label,
        cfg.seed,
        cfg.workers,
        cfg.queue_depth,
        cfg.honest_threads,
        cfg.sessions_per_thread,
    );
    println!(
        "  honest: {}/{} verified (incl. {} worker-probe sessions)",
        outcome.honest_verified,
        outcome.honest_total,
        cfg.workers + cfg.queue_depth,
    );
    println!(
        "  flood: {} attempts -> {} busy, {} byes, {} forged responses, {} closed",
        outcome.flood.attempts,
        outcome.flood.busy,
        outcome.flood.byes,
        outcome.flood.forged_responses,
        outcome.flood.closed,
    );
    println!(
        "  shed probe: {}/{} dials answered Busy while saturated",
        outcome.shed_busy, outcome.shed_dials,
    );
    let stats = &outcome.report.stats;
    println!(
        "  gateway: ok {} / failed {} / handshake-failed {}, busy_rejected {}, queue peak {}",
        stats.sessions_ok,
        stats.sessions_failed,
        stats.handshake_failed,
        stats.busy_rejected,
        stats.queue_peak,
    );
    println!("  per-worker sessions: {:?}", stats.per_worker_sessions);
    println!(
        "  throughput: {:.1} sessions/s over {} ms; latency p50 {p50} us, p90 {p90} us, p99 {p99} us",
        throughput(outcome),
        outcome.elapsed.as_millis(),
    );
    println!(
        "  trace: {} spans recorded, {} dropped",
        outcome.report.spans, outcome.report.dropped_spans,
    );
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");

    if ci_mode {
        let cfg = BenchConfig::ci();
        let outcome = run_bench(&cfg);
        print_run(&cfg, &outcome);
        println!(
            "\nmerged gateway telemetry:\n{}",
            outcome.report.metrics.render()
        );
        if outcome.violations.is_empty() {
            println!("all gateway invariants held");
            return;
        }
        for violation in &outcome.violations {
            eprintln!("GATEWAY INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    }

    println!("verifier gateway under concurrent honest load + adversarial flood\n");
    let configs = vec![
        BenchConfig {
            label: "light flood".to_string(),
            honest_threads: 8,
            sessions_per_thread: 4,
            forgery_sessions: 4,
            junk_frames: 8,
            raw_blasts: 8,
            seed: CI_SEED ^ 1,
            ..BenchConfig::ci()
        },
        BenchConfig {
            label: "heavy flood".to_string(),
            honest_threads: 12,
            sessions_per_thread: 4,
            forgery_sessions: 24,
            junk_frames: 48,
            raw_blasts: 48,
            seed: CI_SEED ^ 2,
            ..BenchConfig::ci()
        },
    ];
    let mut rows = Vec::new();
    let mut all_violations = Vec::new();
    let mut last: Option<(BenchConfig, BenchOutcome)> = None;
    for cfg in configs {
        let outcome = run_bench(&cfg);
        let (p50, p90, p99) = percentiles(&outcome);
        rows.push(vec![
            cfg.label.clone(),
            format!("{}/{}", outcome.honest_verified, outcome.honest_total),
            format!("{}", outcome.flood.attempts),
            format!("{}", outcome.report.stats.busy_rejected),
            format!("{:.1}/s", throughput(&outcome)),
            format!("{p50}"),
            format!("{p90}"),
            format!("{p99}"),
        ]);
        for v in &outcome.violations {
            all_violations.push(format!("[{}] {v}", cfg.label));
        }
        last = Some((cfg, outcome));
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "honest ok",
                "flood",
                "shed",
                "throughput",
                "p50 us",
                "p90 us",
                "p99 us"
            ],
            &rows,
            &[16, 10, 8, 6, 12, 10, 10, 10],
        )
    );
    if let Some((cfg, outcome)) = &last {
        println!("detail of the last run:");
        print_run(cfg, outcome);
    }
    println!("\nreading the table: the queue is bounded, so the flood costs the");
    println!("gateway a frame decode or a Busy write — never a worker; honest");
    println!("sessions keep verifying and the latency tail stays flat.");
    if !all_violations.is_empty() {
        println!("\ninvariant violations observed:");
        for v in &all_violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}
