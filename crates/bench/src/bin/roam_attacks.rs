//! Regenerates the **§5 `Adv_roam` experiments**: every roaming-adversary
//! attack run against the unprotected baseline and against the EA-MAC
//! profiles of §6, reporting whether Phase II tampering succeeded, whether
//! the Phase III replay was accepted (= DoS), and what clock evidence
//! remains.

use proverguard_adversary::roam::{run_roam_attack, RoamAttack};
use proverguard_adversary::world::World;
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::ProverConfig;
use proverguard_bench::render_table;

fn main() {
    println!("§5 — roaming adversary (three phases: eavesdrop, compromise, replay)\n");

    let wait_ms = 5000;
    let scenarios: Vec<(&str, RoamAttack, ProverConfig)> = vec![
        (
            "counter rollback",
            RoamAttack::CounterRollback,
            ProverConfig::recommended(),
        ),
        (
            "clock reset (HW 64-bit)",
            RoamAttack::ClockReset,
            ProverConfig::timestamp_hw64(),
        ),
        (
            "clock reset (SW-clock)",
            RoamAttack::ClockReset,
            ProverConfig::timestamp_sw_clock(),
        ),
        (
            "IDT hijack (SW-clock)",
            RoamAttack::IdtHijack,
            ProverConfig::timestamp_sw_clock(),
        ),
        (
            "timer kill (SW-clock)",
            RoamAttack::TimerKill,
            ProverConfig::timestamp_sw_clock(),
        ),
        (
            "key extraction + forgery",
            RoamAttack::KeyExtraction,
            ProverConfig::recommended(),
        ),
    ];

    let mut rows = Vec::new();
    for (label, attack, config) in scenarios {
        for protection in [Protection::Open, Protection::EaMac] {
            let mut cfg = config.clone();
            cfg.protection = protection;
            let mut world = World::new(cfg).expect("provision");
            let outcome = run_roam_attack(&mut world, attack, wait_ms).expect("scenario");
            let tampered = outcome.tampering.iter().filter(|t| t.succeeded).count();
            rows.push(vec![
                label.to_string(),
                match protection {
                    Protection::Open => "open".to_string(),
                    Protection::EaMac => "EA-MAC".to_string(),
                },
                format!("{}/{}", tampered, outcome.tampering.len()),
                if outcome.replay_accepted {
                    "DoS!"
                } else {
                    "rejected"
                }
                .to_string(),
                match outcome.clock_lag_ms {
                    Some(lag) if lag > 100 => format!("clock lags {lag} ms"),
                    Some(_) => "none".to_string(),
                    None => "n/a (no clock)".to_string(),
                },
            ]);
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "attack",
                "device",
                "tampering",
                "phase III",
                "evidence left"
            ],
            &rows,
            &[26, 8, 10, 10, 20],
        )
    );

    println!("expected (paper §5/§6):");
    println!("  open devices: every attack succeeds; counter rollback leaves no evidence,");
    println!("  clock attacks leave the prover clock behind by ~δ (5000 ms here).");
    println!("  EA-MAC devices: every Phase II tamper is denied, every replay rejected.");
}
