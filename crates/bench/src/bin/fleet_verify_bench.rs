//! Measures what the fleet-wide expected-image cache buys the verifier:
//! cost per verification as fleet size grows at a fixed number of
//! firmware versions.
//!
//! With segmented attestation the per-segment digests depend only on
//! image contents, so every device on the same firmware shares one
//! digest vector (DESIGN §17). The cached path (the real
//! `DeviceDirectory` machinery both gateway drivers use) pays one
//! freshness-segment digest + one outer MAC per verification; the
//! uncached reference re-clones and re-sweeps the full expected image
//! every time — exactly what the gateway did before the cache. Default
//! mode prints the cost-per-device curve; `--ci` gates on the curve
//! flattening (cached ≥ 5× cheaper than uncached at 1 000 devices /
//! 3 images, ≥ 99 % steady-state hit rate, stats conservation law) and
//! writes `BENCH_fleet_verify.json`.
//!
//! ```sh
//! cargo run --release -p proverguard-bench --bin fleet_verify_bench
//! cargo run --release -p proverguard-bench --bin fleet_verify_bench -- --ci
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use proverguard_attest::freshness::patch_expected_image;
use proverguard_attest::gateway::DeviceDirectory;
use proverguard_attest::message::{AttestRequest, AttestResponse, AttestScope};
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::segcache::{combined_input, segment_digest, segment_digests};
use proverguard_attest::verifier::Verifier;
use proverguard_bench::render_table;
use proverguard_crypto::mac::MacKey;

const KEY: [u8; 16] = [0x42; 16];

/// Firmware-version cardinality of every phase (the ISSUE's "handful").
const IMAGES: usize = 3;

/// Bytes per expected image (16 segments at the default 8 KiB
/// granularity — large enough that the sweep dominates, small enough
/// that a 1 000-device fleet's scratch buffers stay cheap).
const IMAGE_LEN: usize = 128 * 1024;

/// Steady-state rounds per device in the cached phase.
const CACHED_ROUNDS: usize = 4;

/// Rounds per device in the uncached reference phase.
const UNCACHED_ROUNDS: usize = 2;

/// CI gate: cached cost per verification must be at most 1/5 of the
/// uncached cost at the largest fleet size.
const CI_MIN_SPEEDUP: f64 = 5.0;

/// CI gate: steady-state cache hit rate.
const CI_MIN_HIT_RATE: f64 = 0.99;

/// Seed for the deterministic image contents.
const SEED: u64 = 0xF1EE_7CAC_4E01;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One firmware version: baseline bytes plus the precomputed digest
/// vector the honest-device fabricator answers from (setup cost, outside
/// every timed region).
struct Firmware {
    bytes: Vec<u8>,
    digests: Vec<[u8; 20]>,
}

fn firmwares(seg_len: usize) -> Vec<Firmware> {
    let mut rng = SEED;
    (0..IMAGES)
        .map(|_| {
            let mut bytes = vec![0u8; IMAGE_LEN];
            for chunk in bytes.chunks_mut(8) {
                let w = splitmix64(&mut rng).to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            let digests = segment_digests(&bytes, seg_len);
            Firmware { bytes, digests }
        })
        .collect()
}

/// Fabricates the response an honest device on `fw` produces for
/// `request`: patch the freshness word into segment 0, re-digest that one
/// segment, combine-MAC. This is the prover's (cheap) side — deliberately
/// not part of either timed verifier path.
fn fabricate(
    fw: &Firmware,
    key: &MacKey,
    seg_len: usize,
    request: &AttestRequest,
) -> AttestResponse {
    assert_eq!(request.scope, AttestScope::Segmented);
    let mut seg0 = fw.bytes[..seg_len.min(fw.bytes.len())].to_vec();
    patch_expected_image(&mut seg0, &request.freshness);
    let mut digests = fw.digests.clone();
    digests[0] = segment_digest(0, &seg0);
    let combined = combined_input(&request.signed_bytes(), seg_len as u32, &digests);
    AttestResponse {
        report: key.compute(&combined),
    }
}

struct Row {
    devices: usize,
    cached_ns: f64,
    uncached_ns: f64,
    hit_rate: f64,
    digest_sweeps: u64,
    scratch_rebuilds: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.cached_ns > 0.0 {
            self.uncached_ns / self.cached_ns
        } else {
            f64::INFINITY
        }
    }
}

fn run_fleet(devices: usize, violations: &mut Vec<String>) -> Row {
    let config = ProverConfig::recommended_segmented();
    let seg_len = config.segmented.expect("segmented config").segment_len as usize;
    let fw = firmwares(seg_len);
    let response_key = MacKey::new(config.response_mac, &KEY).expect("response key");

    // Cached fleet: the production DeviceDirectory path.
    let mut directory = DeviceDirectory::new();
    for i in 0..devices {
        let verifier = Verifier::new(&config, &KEY).expect("verifier");
        directory.register(verifier, fw[i % IMAGES].bytes.clone());
    }
    let after_setup = directory.cache().stats();
    if after_setup.distinct_keys != IMAGES as u64 {
        violations.push(format!(
            "expected {IMAGES} distinct interned images, saw {}",
            after_setup.distinct_keys
        ));
    }

    let mut cached_elapsed = 0u128;
    for _ in 0..CACHED_ROUNDS {
        for id in 0..devices as u64 {
            let request = directory
                .with_verifier(id, |v| v.make_request())
                .expect("registered")
                .expect("request");
            let response = fabricate(&fw[id as usize % IMAGES], &response_key, seg_len, &request);
            let t = Instant::now();
            let verified = directory
                .verify_response(id, &request, &response)
                .expect("registered");
            cached_elapsed += t.elapsed().as_nanos();
            if !verified {
                violations.push(format!("cached path rejected honest device {id}"));
            }
        }
    }
    let steady = directory.cache().stats() - after_setup;
    let final_stats = directory.cache().stats();
    if !final_stats.conservation_holds() {
        violations.push(format!("cache conservation law violated: {final_stats:?}"));
    }

    // Differential guard: a tampered response must fail through the
    // cached path exactly like the uncached reference below.
    {
        let request = directory
            .with_verifier(0, |v| v.make_request())
            .expect("registered")
            .expect("request");
        let mut response = fabricate(&fw[0], &response_key, seg_len, &request);
        response.report[0] ^= 1;
        if directory.verify_response(0, &request, &response) != Some(false) {
            violations.push("cached path accepted a tampered response".to_string());
        }
    }

    // Uncached reference: a fresh verifier fleet (same key ⇒ same request
    // sequence shape) paying the original per-attempt clone + full sweep.
    let mut reference: Vec<Verifier> = (0..devices)
        .map(|_| Verifier::new(&config, &KEY).expect("verifier"))
        .collect();
    let mut uncached_elapsed = 0u128;
    for _ in 0..UNCACHED_ROUNDS {
        for (i, verifier) in reference.iter_mut().enumerate() {
            let request = verifier.make_request().expect("request");
            let response = fabricate(&fw[i % IMAGES], &response_key, seg_len, &request);
            let t = Instant::now();
            let mut expected = fw[i % IMAGES].bytes.clone();
            patch_expected_image(&mut expected, &request.freshness);
            let verified = verifier.check_response(&request, &response, &expected);
            if verified {
                verifier.note_verified(&request, &response, &expected);
            } else {
                verifier.note_failed(&request);
            }
            uncached_elapsed += t.elapsed().as_nanos();
            if !verified {
                violations.push(format!("uncached path rejected honest device {i}"));
            }
        }
    }

    Row {
        devices,
        cached_ns: cached_elapsed as f64 / (devices * CACHED_ROUNDS) as f64,
        uncached_ns: uncached_elapsed as f64 / (devices * UNCACHED_ROUNDS) as f64,
        hit_rate: steady.hit_rate(),
        digest_sweeps: final_stats.digest_sweeps,
        scratch_rebuilds: final_stats.scratch_rebuilds,
    }
}

fn write_json(path: &str, rows: &[Row], violations: &[String]) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet_verify\",");
    let _ = writeln!(out, "  \"images\": {IMAGES},");
    let _ = writeln!(out, "  \"image_len\": {IMAGE_LEN},");
    let _ = writeln!(out, "  \"cached_rounds\": {CACHED_ROUNDS},");
    let _ = writeln!(out, "  \"uncached_rounds\": {UNCACHED_ROUNDS},");
    let _ = writeln!(out, "  \"min_speedup\": {CI_MIN_SPEEDUP},");
    let _ = writeln!(out, "  \"min_hit_rate\": {CI_MIN_HIT_RATE},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"devices\": {}, \"cached_ns_per_verify\": {:.0}, \
             \"uncached_ns_per_verify\": {:.0}, \"speedup\": {:.2}, \"hit_rate\": {:.4}, \
             \"digest_sweeps\": {}, \"scratch_rebuilds\": {}}}{}",
            r.devices,
            r.cached_ns,
            r.uncached_ns,
            r.speedup(),
            r.hit_rate,
            r.digest_sweeps,
            r.scratch_rebuilds,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"violations\": {}", violations.len());
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let mut violations = Vec::new();

    let fleet_sizes = [64usize, 256, 1000];
    let rows: Vec<Row> = fleet_sizes
        .iter()
        .map(|&n| run_fleet(n, &mut violations))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.devices),
                format!("{:.1}", r.uncached_ns / 1000.0),
                format!("{:.1}", r.cached_ns / 1000.0),
                format!("{:.1}x", r.speedup()),
                format!("{:.2}%", r.hit_rate * 100.0),
                format!("{}", r.digest_sweeps),
            ]
        })
        .collect();
    println!(
        "fleet verification cost per device ({IMAGES} firmware images, \
         {IMAGE_LEN} B expected images)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "devices",
                "uncached us",
                "cached us",
                "speedup",
                "hit rate",
                "sweeps"
            ],
            &table,
            &[8, 12, 10, 8, 9, 7],
        )
    );
    println!(
        "verifying N same-image devices costs N outer MACs + {IMAGES} digest sweeps\n\
         total — the per-device curve flattens instead of re-sweeping per attempt."
    );

    // CI gates on the largest fleet.
    let largest = rows.last().expect("at least one fleet size");
    if largest.speedup() < CI_MIN_SPEEDUP {
        violations.push(format!(
            "cached path only {:.2}x cheaper than uncached at {} devices (gate {CI_MIN_SPEEDUP}x)",
            largest.speedup(),
            largest.devices
        ));
    }
    if largest.hit_rate < CI_MIN_HIT_RATE {
        violations.push(format!(
            "steady-state hit rate {:.4} below {CI_MIN_HIT_RATE}",
            largest.hit_rate
        ));
    }

    if ci_mode {
        let json_path = "BENCH_fleet_verify.json";
        if let Err(e) = write_json(json_path, &rows, &violations) {
            eprintln!("FLEET VERIFY BENCH: failed to write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
        if violations.is_empty() {
            println!("all fleet-verify invariants held");
            return;
        }
    }
    if !violations.is_empty() {
        for violation in &violations {
            eprintln!("FLEET VERIFY INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    }
}
