//! Regenerates the **§6.3 clock wrap-around arithmetic**: a 64-bit
//! register at 24 MHz wraps after ~24,372.6 years; a raw 32-bit register
//! after ~3 minutes; dividing by 2²⁰ stretches that to ~6 years at ~42 ms
//! resolution. Also demonstrates, by simulation, what a wrap does to a
//! timestamp-checking prover.

use proverguard_bench::render_table;
use proverguard_hw::components::{Component, HardwareClock};
use proverguard_mcu::rtc::HwRtc;
use proverguard_mcu::CLOCK_HZ;

fn main() {
    println!("§6.3 — clock register sizing at 24 MHz\n");

    let designs = [
        ("64-bit, /1", HardwareClock::custom(64, 0)),
        ("32-bit, /1", HardwareClock::custom(32, 0)),
        ("32-bit, /2^20", HardwareClock::divided32()),
        ("24-bit, /2^20", HardwareClock::custom(24, 20)),
        ("16-bit, /2^20", HardwareClock::custom(16, 20)),
    ];
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|(label, clock)| {
            let wrap_s = clock.wraparound_seconds(24e6);
            let res_ms = clock.resolution_seconds(24e6) * 1e3;
            vec![
                (*label).to_string(),
                human_duration(wrap_s),
                format!("{res_ms:.4}"),
                format!("{}", clock.cost()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["design", "wraps after", "resolution ms", "hardware cost"],
            &rows,
            &[14, 16, 14, 24],
        )
    );

    println!("paper: 64-bit wraps after 24,372.6 years; raw 32-bit after ~3 minutes;");
    println!("32-bit / 2^20 after ~6 years at 42 ms resolution.\n");

    // Simulated wrap demonstration with a deliberately narrow clock.
    println!("simulation — a 24-bit/1 clock wrapping mid-deployment:");
    let mut rtc = HwRtc::custom(24, 0);
    let wrap_cycles = 1u64 << 24; // ~0.7 s at 24 MHz
    rtc.advance(wrap_cycles - 1000);
    let before = rtc.read();
    rtc.advance(2000);
    let after = rtc.read();
    println!("  ticks before wrap: {before}, after: {after} -> time appears to jump backwards");
    println!(
        "  ({:.2} s of real time elapsed; the prover would now reject every genuine",
        (wrap_cycles + 1000) as f64 / CLOCK_HZ as f64
    );
    println!("  timestamped request as far-future: a self-inflicted DoS. Hence §6.3's");
    println!("  sizing rule: never wrap within the device lifetime.");
}

fn human_duration(seconds: f64) -> String {
    const YEAR: f64 = 365.25 * 86_400.0;
    if seconds >= YEAR {
        format!("{:.1} years", seconds / YEAR)
    } else if seconds >= 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 3600.0 {
        format!("{:.1} hours", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{seconds:.1} s")
    }
}
