//! Regenerates the **§3.1 primary-task interference experiment**: how many
//! deadlines a 10 Hz control loop misses while the prover fields a forgery
//! flood, per defence level and flood rate.

use proverguard_adversary::workload::{standard_interference, PeriodicTask};
use proverguard_bench::render_table;

fn main() {
    println!("§3.1 — attestation DoS vs the prover's primary task");
    println!("(10 Hz control loop, 10 ms budget per period, non-preemptive attestation)\n");

    let task = PeriodicTask::control_loop_10hz();
    let mut rows = Vec::new();
    for rate in [1u64, 2, 5, 10, 50] {
        let reports = standard_interference(task, rate, 20).expect("runs");
        for report in reports {
            rows.push(vec![
                format!("{rate}/s"),
                report.label.clone(),
                format!("{:.3}", report.ms_per_forgery),
                format!("{}/{}", report.missed, report.periods),
                format!("{:.1}%", report.miss_ratio() * 100.0),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "flood",
                "prover",
                "ms/forgery",
                "deadlines missed",
                "miss rate"
            ],
            &rows,
            &[6, 14, 12, 18, 10],
        )
    );

    println!("reading the table:");
    println!("  - the unprotected prover's control loop collapses at ~1-2 forgeries/s");
    println!("    (each one blocks the CPU for ~754 ms, §3.1's uninterruptible MAC);");
    println!("  - the ECDSA-gated prover survives light floods but saturates around");
    println!("    5/s (170.9 ms per check) — the §4.1 paradox from the task's view;");
    println!("  - the Speck-gated prover never misses a deadline at any rate shown.");
}
