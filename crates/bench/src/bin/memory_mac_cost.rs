//! Regenerates the **§3.1 whole-memory MAC cost** example: MACing the
//! prover's 512 KB of RAM takes ≈ 754 ms at 24 MHz — the quantity that
//! makes bogus attestation requests an effective DoS.
//!
//! Prints the model cost across memory sizes and cross-checks the exact
//! figure against an end-to-end `handle_request` on the simulated device.

use std::time::Instant;

use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;
use proverguard_bench::{fmt_ms, render_table};
use proverguard_crypto::mac::MacAlgorithm;
use proverguard_mcu::cycles::{cycles_to_ms, CostTable};

fn main() {
    let cost = CostTable::siskiyou_peak();

    println!("§3.1 — cost of a MAC over the prover's writable memory (model)\n");
    let sizes: [(usize, &str); 6] = [
        (64, "64 B"),
        (1 << 10, "1 KB"),
        (16 << 10, "16 KB"),
        (64 << 10, "64 KB"),
        (256 << 10, "256 KB"),
        (512 << 10, "512 KB"),
    ];
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|(bytes, label)| {
            let cycles = cost.mac_cost(MacAlgorithm::HmacSha1, *bytes);
            vec![
                (*label).to_string(),
                (bytes / 64).to_string(),
                cycles.to_string(),
                fmt_ms(cycles_to_ms(cycles)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["memory", "64B blocks", "cycles @24MHz", "model ms"],
            &rows,
            &[8, 12, 14, 10],
        )
    );

    let full = cost.whole_memory_mac(512 << 10);
    println!(
        "512 KB whole-memory MAC: {} ms (paper: 754.032 ms; printed formula is inconsistent,\n\
         see crates/mcu/src/cycles.rs for the reconciliation)\n",
        fmt_ms(cycles_to_ms(full))
    );

    // End-to-end cross-check on the simulated prover.
    println!("end-to-end cross-check (simulated device, one accepted request):");
    let config = ProverConfig::recommended();
    let key = [0x42u8; 16];
    let mut prover = Prover::provision(config.clone(), &key, b"app").expect("provision");
    let mut verifier = Verifier::new(&config, &key).expect("verifier");
    let request = verifier.make_request().expect("request");
    let host_start = Instant::now();
    prover.handle_request(&request).expect("accepted");
    let host_elapsed = host_start.elapsed();
    let breakdown = prover.last_cost();
    println!(
        "  auth check     : {} ms",
        fmt_ms(cycles_to_ms(breakdown.auth_cycles))
    );
    println!(
        "  freshness check: {} ms",
        fmt_ms(cycles_to_ms(breakdown.freshness_cycles))
    );
    println!(
        "  memory MAC     : {} ms",
        fmt_ms(cycles_to_ms(breakdown.response_cycles))
    );
    println!("  total (model)  : {} ms", fmt_ms(breakdown.total_ms()));
    println!(
        "  (host wall time for the same work: {:.1} ms on this machine)",
        host_elapsed.as_secs_f64() * 1e3
    );
}
