//! Measures what the attested secure channel buys the prover: a session
//! is opened by one full-scope attested handshake, after which each
//! periodic re-attestation is a sealed `History` round whose entire auth
//! cost is one short frame HMAC — no signature check, no challenge-bound
//! outer MAC over the whole report.
//!
//! The cycle legs are measured end-to-end on the wire bytes (real
//! `GatewayMsg` frames, real channel seal/open) but in-process, so the
//! numbers are the device's deterministic cycle clock, not wall time.
//! The adversary gauntlet then runs against a real loopback gateway:
//! replayed session frames, cross-session key reuse, downgrade to the
//! one-shot protocol, and a mid-session reboot ghost.
//!
//! Default mode prints the amortization table; `--ci` additionally gates
//! that (1) a quiescent in-session `History` round costs ≤ 2 % of the
//! cold one-shot full attest, (2) every adversary row is rejected with
//! **zero** replays accepted and **zero** HKDF derivations while under
//! attack, (3) the honest device re-converges after every attack, and
//! (4) the gateway's session-table partition
//! `opened = active + expired + evicted + rekeyed` holds — and writes
//! `BENCH_session.json`.
//!
//! ```sh
//! cargo run --release -p proverguard-bench --bin session_bench
//! cargo run --release -p proverguard-bench --bin session_bench -- --ci
//! ```

use std::fmt::Write as _;
use std::time::Duration;

use proverguard_adversary::wire::{session_attack_suite, SessionAttackStats};
use proverguard_attest::channel;
use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayMsg, GatewaySnapshot, ProverAgent,
};
use proverguard_attest::message::AttestResponse;
use proverguard_attest::prover::{CostBreakdown, Prover, ProverConfig};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_bench::{fmt_ms, render_table};
use proverguard_crypto::mac::MacAlgorithm;
use proverguard_transport::frame::DEFAULT_MAX_FRAME;
use proverguard_transport::mem::LoopbackHub;
use proverguard_transport::Transport;

/// CI acceptance threshold: a quiescent in-session round must cost no
/// more than this fraction of the cold one-shot full attest (recorded in
/// EXPERIMENTS.md E13).
const CI_MAX_RATIO: f64 = 0.02;

/// Rekey cadence used for the measured session — small enough that the
/// measured rounds cross two ratchets, proving rekeys stay lockstep.
const REKEY_AFTER: u32 = 3;

/// Sealed rounds driven through the measured session.
const ROUNDS: u32 = 8;

/// Attack dials [`session_attack_suite`] makes (key-reuse fires two).
const SUITE_ATTEMPTS: u64 = 5;

/// Probes in the suite, each followed by one honest recovery dial.
const SUITE_PROBES: u64 = 4;

const KEY: [u8; 16] = [0x42; 16];

struct Costs {
    cold_cycles: u64,
    cold_ms: f64,
    handshake_cycles: u64,
    bootstrap_cycles: u64,
    quiescent_cycles: u64,
    quiescent_ms: f64,
    rekeys: u32,
}

fn cycles_ms(cycles: u64) -> f64 {
    CostBreakdown {
        response_cycles: cycles,
        ..CostBreakdown::default()
    }
    .total_ms()
}

/// Drives the cold one-shot, the handshake, and `ROUNDS` sealed session
/// rounds over real wire bytes, charging the prover's cycle clock the
/// same stages the wire agent does (pipeline + the two frame HMACs).
fn measure(violations: &mut Vec<String>) -> Costs {
    let config = ProverConfig::recommended_segmented();
    let mut prover = Prover::provision(config.clone(), &KEY, b"app v1").expect("provision");
    let mut verifier = Verifier::new(&config, &KEY).expect("verifier");
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });

    // Cold one-shot: what a sessionless deployment pays for *every*
    // round — signed full-scope request, full sweep, outer response MAC.
    // The expected image is snapshotted *after* the prover answers: the
    // freshness value is committed into attested RAM before MACing.
    let request = verifier.make_full_request().expect("request");
    let response = match prover.handle_wire_request(&request.to_bytes()) {
        Ok(bytes) => AttestResponse::from_bytes(&bytes).ok(),
        Err(_) => None,
    };
    let expected = prover.expected_memory().to_vec();
    match response {
        Some(response) if verifier.check_response(&request, &response, &expected) => {
            verifier.note_verified(&request, &response, &expected);
        }
        _ => violations.push("cold one-shot round failed".to_string()),
    }
    let cold = *prover.last_cost();

    // Handshake: the prover's fresh full-scope response doubles as the
    // key-confirmation transcript.
    let (init, hs_request) = channel::verifier_begin(&mut verifier, REKEY_AFTER).expect("begin");
    let (accept, mut chan_p) = channel::prover_accept(&mut prover, &init).expect("accept");
    let handshake_cycles = prover.last_cost().total();
    let expected = prover.expected_memory().to_vec();
    let mut chan_v =
        channel::verifier_confirm(&mut verifier, &init, &hs_request, &accept, &expected)
            .expect("confirm");

    let mut bootstrap_cycles = 0u64;
    let mut quiescent_cycles = 0u64;
    let mut rekeys = 0u32;
    for round in 1..=ROUNDS {
        let req = verifier.make_session_request().expect("session request");
        let frame = chan_v.seal_next(&GatewayMsg::AttReq(req.to_bytes()).encode());

        // Prover end. The per-frame HMACs are the whole in-session auth
        // cost; the inner request rides pre-authenticated (stage 1
        // skipped), exactly as over the live gateway.
        let open_mac = prover
            .mcu()
            .cost_table()
            .mac_cost(MacAlgorithm::HmacSha1, frame.len());
        let inner = chan_p.open(&frame).expect("prover opens frame");
        let req_raw = match GatewayMsg::decode(&inner) {
            Ok(GatewayMsg::AttReq(raw)) => raw,
            other => {
                violations.push(format!("round {round}: bad inner message {other:?}"));
                break;
            }
        };
        let resp_bytes = match prover.handle_session_wire_request(&req_raw) {
            Ok(bytes) => bytes,
            Err(e) => {
                violations.push(format!("round {round}: prover rejected: {e:?}"));
                break;
            }
        };
        let pipeline = *prover.last_cost();
        let reply_frame = chan_p.seal_next(&GatewayMsg::AttResp(resp_bytes).encode());
        let seal_mac = prover
            .mcu()
            .cost_table()
            .mac_cost(MacAlgorithm::HmacSha1, reply_frame.len());
        let round_cycles = pipeline.total() + open_mac + seal_mac;

        // Verifier end.
        let opened = chan_v.open(&reply_frame).expect("verifier opens reply");
        let expected = prover.expected_memory().to_vec();
        let resp = match GatewayMsg::decode(&opened) {
            Ok(GatewayMsg::AttResp(raw)) => AttestResponse::from_bytes(&raw).ok(),
            _ => None,
        };
        match resp {
            Some(resp) if verifier.check_response(&req, &resp, &expected) => {
                verifier.note_verified(&req, &resp, &expected);
            }
            _ => violations.push(format!("round {round}: response did not verify")),
        }
        let ratchet_v = chan_v.note_round();
        let ratchet_p = chan_p.note_round();
        if ratchet_v != ratchet_p {
            violations.push(format!("round {round}: rekey ratchet desynced"));
            break;
        }
        if ratchet_v {
            rekeys += 1;
        }
        match round {
            // Round 1 re-covers whatever the handshake round left dirty
            // (the freshness-commit segment) — the in-session bootstrap.
            1 => bootstrap_cycles = round_cycles,
            // Round 2 is the steady state the ≤2 % gate is about.
            2 => quiescent_cycles = round_cycles,
            _ => {}
        }
    }
    if rekeys < 2 {
        violations.push(format!(
            "lockstep rekey fired {rekeys} times over {ROUNDS} rounds (cadence {REKEY_AFTER})"
        ));
    }

    Costs {
        cold_cycles: cold.total(),
        cold_ms: cold.total_ms(),
        handshake_cycles,
        bootstrap_cycles,
        quiescent_cycles,
        quiescent_ms: cycles_ms(quiescent_cycles),
        rekeys,
    }
}

struct Gauntlet {
    stats: SessionAttackStats,
    report: GatewaySnapshot,
    session_partition_holds: bool,
}

/// Runs the four wire session attacks against a real loopback gateway
/// and grades the full security story: every row rejected, no key
/// derivations while under attack, honest device re-converged each time,
/// session-table accounting exact.
fn run_gauntlet(violations: &mut Vec<String>) -> Gauntlet {
    let config = ProverConfig::recommended_segmented();
    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let prover = Prover::provision(config.clone(), &KEY, b"app v1").expect("provision");
    let mut verifier = Verifier::new(&config, &KEY).expect("verifier");
    verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
    let mut directory = DeviceDirectory::new();
    let device_id = directory.register(verifier, prover.expected_memory().to_vec());
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            workers: 2,
            read_timeout_ms: 10_000,
            ..GatewayConfig::default()
        },
    );
    let mut agent = ProverAgent::with_sessions(prover, device_id);

    let stats = session_attack_suite(
        || {
            connector
                .connect()
                .map(|c| Box::new(c) as Box<dyn Transport>)
        },
        &mut agent,
        device_id,
        Duration::from_secs(30),
    );

    if stats.attempts != SUITE_ATTEMPTS {
        violations.push(format!(
            "adversary suite made {} attack dials (expected {SUITE_ATTEMPTS})",
            stats.attempts
        ));
    }
    if stats.accepted != 0 {
        violations.push(format!(
            "{} adversary frames ACCEPTED (replay/forgery reached the pipeline)",
            stats.accepted
        ));
    }
    if stats.rejected != stats.attempts {
        violations.push(format!(
            "only {}/{} adversary dials rejected",
            stats.rejected, stats.attempts
        ));
    }
    if stats.derives_during_attack != 0 {
        violations.push(format!(
            "{} HKDF derivations ran while under attack (keys touched before reject)",
            stats.derives_during_attack
        ));
    }
    if stats.honest_recovered != SUITE_PROBES {
        violations.push(format!(
            "honest device re-converged only {}/{SUITE_PROBES} times after attacks",
            stats.honest_recovered
        ));
    }

    let report = handle.shutdown();
    let session_partition_holds = report.stats.session_partition_holds();
    if !report.stats.partition_holds() {
        violations.push("gateway connection-stats partition broke".to_string());
    }
    if !session_partition_holds {
        violations.push(format!(
            "session-table partition broke: opened {} != active {} + expired {} + evicted {} + rekeyed {}",
            report.stats.sessions_opened,
            report.stats.sessions_active,
            report.stats.sessions_expired,
            report.stats.sessions_evicted,
            report.stats.sessions_rekeyed
        ));
    }
    Gauntlet {
        stats,
        report: report.stats,
        session_partition_holds,
    }
}

fn write_json(path: &str, costs: &Costs, gauntlet: &Gauntlet) -> std::io::Result<()> {
    let ratio = costs.quiescent_cycles as f64 / costs.cold_cycles as f64;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"session\",");
    let _ = writeln!(out, "  \"threshold_ratio\": {CI_MAX_RATIO},");
    let _ = writeln!(out, "  \"cold_full_attest_cycles\": {},", costs.cold_cycles);
    let _ = writeln!(out, "  \"handshake_cycles\": {},", costs.handshake_cycles);
    let _ = writeln!(
        out,
        "  \"bootstrap_round_cycles\": {},",
        costs.bootstrap_cycles
    );
    let _ = writeln!(
        out,
        "  \"quiescent_round_cycles\": {},",
        costs.quiescent_cycles
    );
    let _ = writeln!(out, "  \"quiescent_ratio_vs_cold\": {ratio:.4},");
    let _ = writeln!(out, "  \"rounds_measured\": {ROUNDS},");
    let _ = writeln!(out, "  \"rekey_after_rounds\": {REKEY_AFTER},");
    let _ = writeln!(out, "  \"rekeys\": {},", costs.rekeys);
    let _ = writeln!(out, "  \"amortization\": [");
    let ks = [1u32, 2, 4, 8, 16, 32, 64];
    for (i, k) in ks.iter().enumerate() {
        let avg = (costs.handshake_cycles as f64 + f64::from(*k) * costs.quiescent_cycles as f64)
            / f64::from(*k);
        let _ = writeln!(
            out,
            "    {{\"rounds\": {k}, \"avg_cycles_per_round\": {avg:.0}, \"vs_cold\": {:.4}}}{}",
            avg / costs.cold_cycles as f64,
            if i + 1 == ks.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ],");
    let s = &gauntlet.stats;
    let _ = writeln!(out, "  \"adversary\": {{");
    let _ = writeln!(out, "    \"attack_dials\": {},", s.attempts);
    let _ = writeln!(out, "    \"rejected\": {},", s.rejected);
    let _ = writeln!(out, "    \"accepted\": {},", s.accepted);
    let _ = writeln!(
        out,
        "    \"key_derivations_under_attack\": {},",
        s.derives_during_attack
    );
    let _ = writeln!(out, "    \"honest_recovered\": {}", s.honest_recovered);
    let _ = writeln!(out, "  }},");
    let r = &gauntlet.report;
    let _ = writeln!(out, "  \"session_table\": {{");
    let _ = writeln!(out, "    \"opened\": {},", r.sessions_opened);
    let _ = writeln!(out, "    \"active\": {},", r.sessions_active);
    let _ = writeln!(out, "    \"expired\": {},", r.sessions_expired);
    let _ = writeln!(out, "    \"evicted\": {},", r.sessions_evicted);
    let _ = writeln!(out, "    \"rekeyed\": {},", r.sessions_rekeyed);
    let _ = writeln!(
        out,
        "    \"partition_holds\": {}",
        gauntlet.session_partition_holds
    );
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let mut violations = Vec::new();

    let costs = measure(&mut violations);
    let ratio = costs.quiescent_cycles as f64 / costs.cold_cycles as f64;
    if ratio > CI_MAX_RATIO {
        violations.push(format!(
            "quiescent in-session round cost {:.2}% of a cold full attest (budget {:.0}%)",
            ratio * 100.0,
            CI_MAX_RATIO * 100.0
        ));
    }
    let gauntlet = run_gauntlet(&mut violations);

    let pct = |cycles: u64| format!("{:.2}%", cycles as f64 / costs.cold_cycles as f64 * 100.0);
    let rows = vec![
        vec![
            "cold one-shot (full)".to_string(),
            costs.cold_cycles.to_string(),
            fmt_ms(costs.cold_ms),
            "100%".to_string(),
        ],
        vec![
            "handshake (attested)".to_string(),
            costs.handshake_cycles.to_string(),
            fmt_ms(cycles_ms(costs.handshake_cycles)),
            pct(costs.handshake_cycles),
        ],
        vec![
            "round 1 (bootstrap)".to_string(),
            costs.bootstrap_cycles.to_string(),
            fmt_ms(cycles_ms(costs.bootstrap_cycles)),
            pct(costs.bootstrap_cycles),
        ],
        vec![
            "round 2+ (quiescent)".to_string(),
            costs.quiescent_cycles.to_string(),
            fmt_ms(costs.quiescent_ms),
            pct(costs.quiescent_cycles),
        ],
    ];
    println!("attested session amortization (prover cycles, 24 MHz device)\n");
    println!(
        "{}",
        render_table(&["leg", "cycles", "ms", "vs cold"], &rows, &[22, 12, 10, 9])
    );
    println!(
        "{} sealed rounds, rekey cadence {}: {} lockstep rekeys, ratchet never desynced.",
        ROUNDS, REKEY_AFTER, costs.rekeys
    );
    let s = &gauntlet.stats;
    println!(
        "adversary gauntlet: {} attack dials, {} rejected, {} accepted, {} key\n\
         derivations under attack; honest device re-converged {}/{SUITE_PROBES}.",
        s.attempts, s.rejected, s.accepted, s.derives_during_attack, s.honest_recovered
    );

    if ci_mode {
        let json_path = "BENCH_session.json";
        if let Err(e) = write_json(json_path, &costs, &gauntlet) {
            eprintln!("SESSION BENCH: failed to write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
    }
    if violations.is_empty() {
        if ci_mode {
            println!("all session invariants held");
        }
        return;
    }
    for violation in &violations {
        eprintln!("SESSION INVARIANT VIOLATION: {violation}");
    }
    std::process::exit(1);
}
