//! Measures the epoch-log defence against transient (TOCTOU) malware:
//! the detection matrix across attestation scopes, and what a `History`
//! round costs relative to a full sweep.
//!
//! The adversary infects a segment of the application image, acts, and
//! restores the original bytes between rounds. Content sweeps (`Whole`,
//! `Segmented`) see pristine memory and verify — time-of-check vs
//! time-of-use. A `History` round reports the authenticated set of
//! segments *written* since the last verified round, so the restore
//! cannot hide the write event — and because it ships a bitmap plus
//! fresh digests only for modified segments, a quiescent round costs a
//! tiny fraction of a full sweep.
//!
//! Default mode prints the detection matrix and the cycle costs; `--ci`
//! additionally gates that (1) the transient strike defeats `Whole` and
//! `Segmented` but is flagged by `History`, (2) a quiescent History
//! round costs < 3 % of the cold full sweep, and writes
//! `BENCH_toctou.json`.
//!
//! ```sh
//! cargo run --release -p proverguard-bench --bin toctou_bench
//! cargo run --release -p proverguard-bench --bin toctou_bench -- --ci
//! ```

use std::fmt::Write as _;

use proverguard_adversary::toctou::{toctou_alarm, TransientMalware};
use proverguard_adversary::world::World;
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::verifier::ScopePolicy;
use proverguard_bench::{fmt_ms, render_table};
use proverguard_mcu::DEFAULT_SEGMENT_LEN;

/// CI acceptance threshold: a quiescent History round must cost less
/// than this fraction of the cold full sweep (recorded in EXPERIMENTS.md
/// E12).
const CI_MAX_RATIO: f64 = 0.03;

/// One scope's fate against the infect/act/restore adversary.
struct MatrixRow {
    scope: &'static str,
    verified_after_strike: bool,
    detected: bool,
}

/// Drives one attestation round end to end, including the verifier-side
/// bookkeeping hooks a session link would call.
fn round(world: &mut World) -> bool {
    let request = world.verifier.make_request().expect("request");
    let Ok(response) = world.prover.handle_request(&request) else {
        world.verifier.note_failed(&request);
        return false;
    };
    let expected = world.prover.expected_memory().to_vec();
    let ok = world
        .verifier
        .check_response(&request, &response, &expected);
    if ok {
        world.verifier.note_verified(&request, &response, &expected);
    } else {
        world.verifier.note_failed(&request);
    }
    ok
}

/// Runs baseline round → strike → post-strike round under `config`, and
/// reports whether the post-strike round verified and whether the TOCTOU
/// alarm fired.
fn matrix_row(
    scope: &'static str,
    config: ProverConfig,
    policy: Option<ScopePolicy>,
    violations: &mut Vec<String>,
) -> MatrixRow {
    let mut world = World::new(config).expect("provision");
    if let Some(policy) = policy {
        world.verifier.set_scope_policy(policy);
    }
    if !round(&mut world) {
        violations.push(format!("{scope}: baseline round failed"));
    }
    let mut malware = TransientMalware::default();
    malware.strike(&mut world).expect("strike");
    let verified = round(&mut world);
    let detected = world
        .verifier
        .last_history()
        .is_some_and(|outcome| toctou_alarm(outcome, seg_len(&world)));
    MatrixRow {
        scope,
        verified_after_strike: verified,
        detected,
    }
}

fn seg_len(world: &World) -> u32 {
    world
        .prover
        .segment_cache()
        .map_or(DEFAULT_SEGMENT_LEN, |c| c.segment_len() as u32)
}

struct Costs {
    full_sweep_cycles: u64,
    full_sweep_ms: f64,
    quiescent_cycles: u64,
    quiescent_ms: f64,
    strike_cycles: u64,
}

/// Measures History-round costs: the cold bootstrap (full coverage), a
/// quiescent warm round, and a warm round right after a strike.
fn measure_costs(violations: &mut Vec<String>) -> Costs {
    let mut world = World::new(ProverConfig::recommended_segmented()).expect("provision");
    world
        .verifier
        .set_scope_policy(ScopePolicy::History { full_every: 0 });

    // Bootstrap: History { since_round: 0 } recomputes every segment —
    // this is the full sweep every later round is judged against.
    if !round(&mut world) {
        violations.push("history bootstrap round failed".to_string());
    }
    let full_sweep_cycles = world.prover.last_cost().response_cycles;
    let full_sweep_ms = world.prover.last_cost().total_ms();

    // Quiescent: nothing wrote app RAM since; only the freshness-commit
    // segment re-digests.
    if !round(&mut world) {
        violations.push("quiescent history round failed".to_string());
    }
    let quiescent_cycles = world.prover.last_cost().response_cycles;
    let quiescent_ms = world.prover.last_cost().total_ms();

    // Post-strike: one more segment in the modified set.
    TransientMalware::default()
        .strike(&mut world)
        .expect("strike");
    if !round(&mut world) {
        violations.push("post-strike history round failed".to_string());
    }
    let strike_cycles = world.prover.last_cost().response_cycles;

    Costs {
        full_sweep_cycles,
        full_sweep_ms,
        quiescent_cycles,
        quiescent_ms,
        strike_cycles,
    }
}

fn write_json(path: &str, matrix: &[MatrixRow], costs: &Costs) -> std::io::Result<()> {
    let ratio = costs.quiescent_cycles as f64 / costs.full_sweep_cycles as f64;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"toctou\",");
    let _ = writeln!(out, "  \"threshold_ratio\": {CI_MAX_RATIO},");
    let _ = writeln!(out, "  \"full_sweep_cycles\": {},", costs.full_sweep_cycles);
    let _ = writeln!(
        out,
        "  \"quiescent_history_cycles\": {},",
        costs.quiescent_cycles
    );
    let _ = writeln!(out, "  \"quiescent_ratio_vs_full\": {ratio:.4},");
    let _ = writeln!(
        out,
        "  \"post_strike_history_cycles\": {},",
        costs.strike_cycles
    );
    let _ = writeln!(out, "  \"detection\": [");
    for (i, row) in matrix.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scope\": \"{}\", \"verified_after_strike\": {}, \"detected\": {}}}{}",
            row.scope,
            row.verified_after_strike,
            row.detected,
            if i + 1 == matrix.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let mut violations = Vec::new();

    let matrix = vec![
        matrix_row("whole", ProverConfig::recommended(), None, &mut violations),
        matrix_row(
            "segmented",
            ProverConfig::recommended_segmented(),
            None,
            &mut violations,
        ),
        matrix_row(
            "history",
            ProverConfig::recommended_segmented(),
            Some(ScopePolicy::History { full_every: 0 }),
            &mut violations,
        ),
    ];
    let costs = measure_costs(&mut violations);

    // The matrix is the point: every scope verifies the restored memory,
    // only History sees the write events.
    for row in &matrix {
        if !row.verified_after_strike {
            violations.push(format!(
                "{}: restored memory failed verification (content is pristine)",
                row.scope
            ));
        }
        let should_detect = row.scope == "history";
        if row.detected != should_detect {
            violations.push(format!(
                "{}: detected={} (expected {})",
                row.scope, row.detected, should_detect
            ));
        }
    }
    let ratio = costs.quiescent_cycles as f64 / costs.full_sweep_cycles as f64;
    if ratio >= CI_MAX_RATIO {
        violations.push(format!(
            "quiescent history round cost {:.2}% of a full sweep (budget {:.0}%)",
            ratio * 100.0,
            CI_MAX_RATIO * 100.0
        ));
    }

    let rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|r| {
            vec![
                r.scope.to_string(),
                if r.verified_after_strike {
                    "pass"
                } else {
                    "FAIL"
                }
                .to_string(),
                if r.detected { "DETECTED" } else { "missed" }.to_string(),
            ]
        })
        .collect();
    println!("transient malware (infect / act / restore between rounds)\n");
    println!(
        "{}",
        render_table(&["scope", "verifies", "strike"], &rows, &[12, 10, 10],)
    );
    println!(
        "history round cost: bootstrap (full coverage) {} cycles ({}), quiescent\n\
         {} cycles ({}) = {:.2}% of full; post-strike {} cycles.",
        costs.full_sweep_cycles,
        fmt_ms(costs.full_sweep_ms),
        costs.quiescent_cycles,
        fmt_ms(costs.quiescent_ms),
        ratio * 100.0,
        costs.strike_cycles,
    );

    if ci_mode {
        let json_path = "BENCH_toctou.json";
        if let Err(e) = write_json(json_path, &matrix, &costs) {
            eprintln!("TOCTOU BENCH: failed to write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
    }
    if violations.is_empty() {
        if ci_mode {
            println!("all toctou invariants held");
        }
        return;
    }
    for violation in &violations {
        eprintln!("TOCTOU INVARIANT VIOLATION: {violation}");
    }
    std::process::exit(1);
}
