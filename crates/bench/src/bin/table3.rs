//! Regenerates **Table 3** (hardware cost per component) and the **§6.3
//! overhead** arithmetic, plus two ablations the paper does not report:
//! the structural-estimator cross-check and an EA-MPU rule-count sweep.

use proverguard_bench::render_table;
use proverguard_hw::components::{
    AttestKey, Component, EaMpu, HardwareClock, ReplayCounter, SiskiyouPeak, SoftwareClock,
};
use proverguard_hw::design::{ClockKind, Design};
use proverguard_hw::structural;

fn main() {
    // ---- Table 3 ------------------------------------------------------------
    println!("Table 3 — hardware cost per component (#r = configurable EA-MPU rules)\n");
    let mpu1 = EaMpu::new(1);
    let per_rule = EaMpu::rule_cost();
    let base = EaMpu::new(0).cost();
    let rows: Vec<Vec<String>> = vec![
        component_row(&SiskiyouPeak),
        vec![
            mpu1.name().to_string(),
            "1/rule".to_string(),
            format!("{} + {}*#r", base.registers, per_rule.registers),
            format!("{} + {}*#r", base.luts, per_rule.luts),
        ],
        component_row(&AttestKey),
        component_row(&ReplayCounter),
        component_row(&HardwareClock::wide64()),
        component_row(&HardwareClock::divided32()),
        component_row(&SoftwareClock),
    ];
    println!(
        "{}",
        render_table(
            &["component", "EA-MPU rules", "registers", "look-up tables"],
            &rows,
            &[22, 12, 16, 16],
        )
    );

    // ---- §6.3 overheads -------------------------------------------------------
    println!("§6.3 — overhead over the base-line system\n");
    let baseline = Design::baseline().synthesize();
    println!(
        "base-line: {} (paper: 6038 registers / 15142 LUTs), {} EA-MPU rules\n",
        baseline.total(),
        baseline.mpu_rules()
    );

    let variants = [
        (
            "64 bit clock",
            Design::with_clock(ClockKind::Wide64),
            "2.98% / 1.62%",
        ),
        (
            "32 bit clock (/2^20)",
            Design::with_clock(ClockKind::Divided32),
            "2.45% / 1.41%",
        ),
        (
            "SW-clock (3 rules)",
            Design::full(ClockKind::Software),
            "5.76% / 3.61%",
        ),
    ];
    let mut overhead_rows = Vec::new();
    for (label, design, paper) in variants {
        let report = design.synthesize();
        let delta = report.delta_vs(&baseline);
        let (reg_pct, lut_pct) = report.overhead_vs(&baseline);
        overhead_rows.push(vec![
            label.to_string(),
            format!("+{}", delta.registers),
            format!("+{}", delta.luts),
            format!("{reg_pct:.2}% / {lut_pct:.2}%"),
            paper.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["variant", "Δ registers", "Δ LUTs", "measured", "paper"],
            &overhead_rows,
            &[22, 12, 10, 16, 16],
        )
    );

    // ---- Ablation 1: structural estimator cross-check -------------------------
    println!("ablation — structural estimator vs calibrated constants\n");
    let mut structural_rows = Vec::new();
    for rules in [1u32, 2, 4, 8] {
        let est = structural::ea_mpu_estimate(rules);
        let cal = EaMpu::new(u64::from(rules)).cost();
        structural_rows.push(vec![
            format!("EA-MPU, #r = {rules}"),
            format!("{}/{}", est.registers, est.luts),
            format!("{}/{}", cal.registers, cal.luts),
            format!(
                "{:+.1}%",
                100.0 * (est.registers as f64 - cal.registers as f64) / cal.registers as f64
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "design",
                "structural reg/LUT",
                "calibrated reg/LUT",
                "reg err"
            ],
            &structural_rows,
            &[16, 20, 20, 10],
        )
    );

    // ---- Ablation 2: where does protection stop being cheap? ------------------
    println!("ablation — EA-MPU rule-count sweep (cost vs base-line)\n");
    let base_total = baseline.total();
    let mut sweep_rows = Vec::new();
    for rules in [2u64, 4, 8, 16, 32] {
        let total = SiskiyouPeak.cost() + EaMpu::new(rules).cost();
        let reg_pct = 100.0 * total.registers as f64 / base_total.registers as f64 - 100.0;
        sweep_rows.push(vec![
            rules.to_string(),
            total.registers.to_string(),
            total.luts.to_string(),
            format!("{reg_pct:+.2}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["#r", "registers", "LUTs", "reg vs base"],
            &sweep_rows,
            &[4, 10, 10, 12],
        )
    );
}

fn component_row<C: Component>(c: &C) -> Vec<String> {
    let cost = c.cost();
    vec![
        c.name().to_string(),
        c.mpu_rules_required().to_string(),
        cost.registers.to_string(),
        cost.luts.to_string(),
    ]
}
