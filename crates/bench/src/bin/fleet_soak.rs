//! Chaos soak across a simulated fleet: N provers behind seeded faulty
//! channels, a per-round forgery flood at every device, verifier-side
//! circuit breakers + bounded-concurrency scheduling, prover-side
//! admission control — the fleet-scale version of the paper's Table 1
//! DoS economics.
//!
//! Default mode compares defence configurations and prints fleet-level
//! throughput and energy burn per configuration. `--ci` runs only the
//! short deterministic gate (seed recorded in EXPERIMENTS.md) and exits
//! non-zero if any liveness invariant is violated.

use proverguard_adversary::soak::{run_soak, SoakConfig, SoakReport};
use proverguard_bench::render_table;

/// The comparison ladder: each rung strips one defence layer.
fn configurations() -> Vec<SoakConfig> {
    let base = SoakConfig {
        label: "auth + admission (defended)".to_string(),
        devices: 6,
        compromised_devices: 1,
        faulty_devices: 2,
        rounds: 15,
        ..SoakConfig::ci()
    };
    let auth_only = SoakConfig {
        label: "auth only (no admission)".to_string(),
        admission: None,
        ..base.clone()
    };
    let undefended = SoakConfig {
        label: "undefended (open prover)".to_string(),
        admission: None,
        config: proverguard_attest::prover::ProverConfig::unprotected(),
        ..base.clone()
    };
    vec![base, auth_only, undefended]
}

fn summarize(report: &SoakReport) -> Vec<String> {
    let min_battery = report
        .devices
        .iter()
        .map(|d| d.min_battery_fraction)
        .fold(1.0f64, f64::min);
    let throttled: u64 = report.devices.iter().map(|d| d.throttled).sum();
    let trips: u64 = report.devices.iter().map(|d| d.breaker_trips).sum();
    vec![
        report.label.clone(),
        format!("{}/{}", report.total_successes, report.total_sessions),
        format!("{}", report.total_flood),
        format!("{throttled}"),
        format!("{:.3}", report.fleet_energy_joules),
        format!("{:.0} %", min_battery * 100.0),
        format!("{trips}"),
        format!("{}", report.violations.len()),
    ]
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");

    if ci_mode {
        let cfg = SoakConfig::ci();
        let report = run_soak(&cfg).expect("ci soak provisions");
        println!(
            "chaos soak [{}] seed {:#x}: {} devices, {} rounds — {} sessions ({} ok), {} forgeries",
            report.label,
            SoakConfig::CI_SEED,
            cfg.devices,
            report.rounds,
            report.total_sessions,
            report.total_successes,
            report.total_flood,
        );
        if report.liveness_ok() {
            println!("all liveness invariants held");
            return;
        }
        for violation in &report.violations {
            eprintln!("LIVENESS VIOLATION: {violation}");
        }
        std::process::exit(1);
    }

    println!("fleet chaos soak — defence-configuration comparison\n");
    let mut rows = Vec::new();
    let mut all_violations = Vec::new();
    for cfg in configurations() {
        let report = run_soak(&cfg).expect("soak provisions");
        rows.push(summarize(&report));
        for v in &report.violations {
            all_violations.push(format!("[{}] {v}", report.label));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "attested",
                "forgeries",
                "shed",
                "J burned",
                "min battery",
                "trips",
                "violations"
            ],
            &rows,
            &[28, 10, 10, 8, 10, 12, 6, 10],
        )
    );
    println!("reading the table:");
    println!("  - the defended fleet sheds the flood before MAC work and keeps");
    println!("    every battery above the floor while honest devices attest;");
    println!("  - stripping auth turns every forgery into a ~754 ms memory MAC,");
    println!("    so the open fleet burns orders of magnitude more energy and");
    println!("    breaches the energy floor — the Table 1 economics, fleet-wide.");
    if !all_violations.is_empty() {
        println!("\nliveness violations observed (expected for undefended rungs):");
        for v in &all_violations {
            println!("  - {v}");
        }
    }
}
