//! Gateway concurrency-scaling harness: how many simultaneous honest
//! sessions can one verifier process hold?
//!
//! Three phases, all over the loopback hub with wire-honest
//! [`SimDevice`] fleets (one HMAC per response — no MCU simulation, so
//! the *gateway* is the bottleneck being measured):
//!
//! 1. **Thread-pool ceiling.** The blocking driver's concurrency is
//!    structural: `workers + queue_depth` connections, every one pinning
//!    an OS thread or a queue slot. A floor-pinned wave larger than that
//!    ceiling measures it exactly — the surplus comes back `Busy`.
//! 2. **Reactor sweep.** The event-driven driver takes connection waves
//!    of 1k/8k/32k (CI: 256/1024) on the *same number of threads* as the
//!    thread-pool run and must verify every single session, reporting
//!    p50/p90/p99 dial-to-verdict latency and shed rate per level.
//! 3. **Deterministic shed.** With one shard capped at 16 connections, a
//!    floor-pinned wave of 32 must split into exactly 16 served / 16
//!    `Busy` — admission control stays exact at the readiness layer.
//!
//! `--ci` gates: every swept session verified with zero shed, the shed
//! probe exact, per-shard and global partition laws intact, and the
//! reactor's top verified level at least **10×** the thread-pool
//! ceiling. Results land in `BENCH_gateway_scale.json`.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use proverguard_adversary::scale::{drive_oneshot_wave, SimDevice, WaveReport};
use proverguard_attest::gateway::{
    DeviceDirectory, Gateway, GatewayConfig, GatewayHandle, GatewayReport, IoDriver, ShardSnapshot,
};
use proverguard_attest::session::RetryPolicy;
use proverguard_attest::verifier::Verifier;
use proverguard_bench::render_table;
use proverguard_transport::{LoopbackHub, DEFAULT_MAX_FRAME};

/// Seed for the `--ci` gate (recorded in EXPERIMENTS.md).
const CI_SEED: u64 = 0xDAC1_5CA1_E000;

/// Worker threads for the thread-pool run; shard threads for the reactor
/// runs. Equal on both sides, so the sweep compares I/O architecture,
/// not thread budget.
const THREADS: usize = 4;
/// Thread-pool work-queue depth: its ceiling is `THREADS + QUEUE_DEPTH`.
const QUEUE_DEPTH: usize = 16;
/// The reactor must hold at least this multiple of the thread-pool
/// ceiling (the tentpole acceptance gate).
const MIN_SCALE_RATIO: u64 = 10;
/// Shed-probe geometry: one shard, capped, dialed to twice the cap.
const SHED_CAP: usize = 16;
/// Service floor pinning probe connections (must dwarf the accept-drain
/// time of the whole wave so admission decisions are deterministic).
const PROBE_FLOOR_MS: u64 = 500;

fn sweep_levels(ci: bool) -> Vec<usize> {
    if ci {
        vec![256, 1024]
    } else {
        vec![1_000, 8_000, 32_000]
    }
}

/// One synthetic 64-byte device image, unique per device index.
fn sim_image(index: u64) -> Vec<u8> {
    let mut image = vec![0u8; 64];
    for (i, byte) in image.iter_mut().enumerate() {
        *byte = (i as u8).wrapping_mul(31) ^ (index as u8);
    }
    image
}

fn device_key(index: u64) -> [u8; 16] {
    let mut key = [0x42u8; 16];
    key[..8].copy_from_slice(&(index ^ CI_SEED).to_le_bytes());
    key
}

/// Provisions `count` SimDevices into a fresh directory; `floor_ms`
/// pins each accepted session for the admission probes.
fn provision_fleet(count: usize, floor_ms: u64) -> (DeviceDirectory, Vec<(u64, Arc<SimDevice>)>) {
    let mut directory = DeviceDirectory::new();
    let mut devices = Vec::with_capacity(count);
    for index in 0..count as u64 {
        let key = device_key(index);
        let sim = SimDevice::new(&key, sim_image(index));
        let config = proverguard_attest::prover::ProverConfig::recommended();
        let verifier = Verifier::new(&config, &key).expect("provision verifier");
        let id = directory.register_with_floor(verifier, sim.image().to_vec(), floor_ms);
        devices.push((id, Arc::new(sim)));
    }
    (directory, devices)
}

fn gateway_retry() -> RetryPolicy {
    RetryPolicy {
        timeout_ms: 10_000,
        max_retries: 2,
        backoff_base_ms: 5,
        backoff_factor: 2,
        jitter_per_mille: 500,
        jitter_seed: CI_SEED,
    }
}

/// Spins until every shard has released its connections, then snapshots.
/// The wave has already joined, so this converges within the drain of
/// the final `Bye` frames.
fn quiesced_shards(handle: &GatewayHandle) -> Vec<ShardSnapshot> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snaps = handle.shard_stats();
        if snaps.iter().all(|s| s.registered == 0) || Instant::now() > deadline {
            return snaps;
        }
        thread::sleep(Duration::from_millis(2));
    }
}

struct LevelOutcome {
    level: usize,
    wave: WaveReport,
    wall: Duration,
    shards: Vec<ShardSnapshot>,
    report: GatewayReport,
}

/// One reactor sweep level: a fresh gateway sized to hold `level`
/// concurrent sessions, one dial per device, everything concurrent.
fn run_reactor_level(level: usize, deadline: Duration) -> LevelOutcome {
    let (directory, devices) = provision_fleet(level, 0);
    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            io_driver: IoDriver::Reactor,
            reactor_shards: THREADS,
            max_conns_per_shard: level.div_ceil(THREADS) + 64,
            retry: gateway_retry(),
            read_timeout_ms: 10_000,
            accept_poll_ms: 1,
            ..GatewayConfig::default()
        },
    );
    let started = Instant::now();
    let wave = drive_oneshot_wave(&connector, &devices, deadline);
    let wall = started.elapsed();
    let shards = quiesced_shards(&handle);
    let report = handle.shutdown();
    LevelOutcome {
        level,
        wave,
        wall,
        shards,
        report,
    }
}

struct ProbeOutcome {
    capacity: u64,
    wave: WaveReport,
    report: GatewayReport,
}

/// Measures the thread-pool ceiling. Two waves make it exact: the first
/// pins every worker with a floor-held session (workers pop the queue as
/// fast as the accept loop fills it, so a combined wave would race);
/// once the workers are provably occupied, the second wave fills the
/// queue and overflows it — exactly `queue_depth` more are admitted,
/// the rest come back `Busy`.
fn run_threadpool_probe() -> ProbeOutcome {
    let ceiling = THREADS + QUEUE_DEPTH;
    let extra = 12;
    let (directory, devices) = provision_fleet(ceiling + extra, PROBE_FLOOR_MS);
    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            workers: THREADS,
            queue_depth: QUEUE_DEPTH,
            retry: gateway_retry(),
            read_timeout_ms: 10_000,
            accept_poll_ms: 1,
            ..GatewayConfig::default()
        },
    );
    let (pin_devices, flood_devices) = devices.split_at(THREADS);
    let pinner = thread::spawn({
        let connector = connector.clone();
        let pin_devices = pin_devices.to_vec();
        move || drive_oneshot_wave(&connector, &pin_devices, Duration::from_secs(60))
    });
    // The pin wave reaches the workers within one accept-poll tick; the
    // floor then holds all of them far longer than the flood below needs.
    thread::sleep(Duration::from_millis(PROBE_FLOOR_MS / 5));
    let flood = drive_oneshot_wave(&connector, flood_devices, Duration::from_secs(60));
    let pins = pinner.join().expect("pin wave panicked");
    let report = handle.shutdown();
    let mut wave = WaveReport {
        dialed: pins.dialed + flood.dialed,
        verified: pins.verified + flood.verified,
        shed: pins.shed + flood.shed,
        failed: pins.failed + flood.failed,
        latencies_us: pins.latencies_us,
    };
    wave.latencies_us.extend(flood.latencies_us);
    ProbeOutcome {
        capacity: wave.verified,
        wave,
        report,
    }
}

/// Deterministic shed at the readiness layer: one shard, `SHED_CAP`
/// slots, `2 * SHED_CAP` floor-pinned dials.
fn run_shed_probe() -> (ProbeOutcome, Vec<ShardSnapshot>) {
    let dialed = 2 * SHED_CAP;
    let (directory, devices) = provision_fleet(dialed, PROBE_FLOOR_MS);
    let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
    let handle = Gateway::start(
        Box::new(hub),
        directory,
        GatewayConfig {
            io_driver: IoDriver::Reactor,
            reactor_shards: 1,
            max_conns_per_shard: SHED_CAP,
            retry: gateway_retry(),
            read_timeout_ms: 10_000,
            accept_poll_ms: 1,
            ..GatewayConfig::default()
        },
    );
    let wave = drive_oneshot_wave(&connector, &devices, Duration::from_secs(60));
    let shards = quiesced_shards(&handle);
    let report = handle.shutdown();
    (
        ProbeOutcome {
            capacity: wave.verified,
            wave,
            report,
        },
        shards,
    )
}

fn check_level(outcome: &LevelOutcome, violations: &mut Vec<String>) {
    let level = outcome.level;
    if outcome.wave.verified != level as u64 {
        violations.push(format!(
            "level {level}: {}/{} sessions verified ({} shed, {} failed)",
            outcome.wave.verified, level, outcome.wave.shed, outcome.wave.failed
        ));
    }
    if outcome.wave.shed != 0 {
        violations.push(format!(
            "level {level}: {} sessions shed by an un-saturated gateway",
            outcome.wave.shed
        ));
    }
    if !outcome.report.stats.partition_holds() {
        violations.push(format!(
            "level {level}: stats partition violated: {:?}",
            outcome.report.stats
        ));
    }
    for snap in &outcome.shards {
        if !snap.partition_holds() {
            violations.push(format!(
                "level {level}: shard conservation law violated: {snap:?}"
            ));
        }
    }
    let assigned: u64 = outcome.shards.iter().map(|s| s.assigned).sum();
    if assigned != outcome.report.stats.enqueued {
        violations.push(format!(
            "level {level}: shard assignment {assigned} != enqueued {}",
            outcome.report.stats.enqueued
        ));
    }
}

fn write_json(
    path: &str,
    ci: bool,
    probe: &ProbeOutcome,
    levels: &[LevelOutcome],
    shed: &ProbeOutcome,
    ratio: u64,
) -> std::io::Result<()> {
    let mut out = std::fs::File::create(path)?;
    writeln!(out, "{{")?;
    writeln!(out, "  \"bench\": \"gateway_scale\",")?;
    writeln!(out, "  \"mode\": \"{}\",", if ci { "ci" } else { "full" })?;
    writeln!(out, "  \"threads\": {THREADS},")?;
    writeln!(
        out,
        "  \"threadpool\": {{ \"workers\": {THREADS}, \"queue_depth\": {QUEUE_DEPTH}, \"measured_capacity\": {}, \"shed\": {} }},",
        probe.capacity, probe.wave.shed
    )?;
    writeln!(out, "  \"reactor_levels\": [")?;
    for (i, o) in levels.iter().enumerate() {
        let comma = if i + 1 == levels.len() { "" } else { "," };
        writeln!(
            out,
            "    {{ \"connections\": {}, \"verified\": {}, \"shed\": {}, \"failed\": {}, \"shed_rate\": {:.4}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"wall_ms\": {}, \"sessions_per_sec\": {:.1} }}{comma}",
            o.level,
            o.wave.verified,
            o.wave.shed,
            o.wave.failed,
            o.wave.shed_rate(),
            o.wave.latency_percentile(50),
            o.wave.latency_percentile(90),
            o.wave.latency_percentile(99),
            o.wall.as_millis(),
            o.wave.verified as f64 / o.wall.as_secs_f64().max(1e-9),
        )?;
    }
    writeln!(out, "  ],")?;
    writeln!(
        out,
        "  \"shed_probe\": {{ \"shard_cap\": {SHED_CAP}, \"dialed\": {}, \"served\": {}, \"shed\": {} }},",
        shed.wave.dialed, shed.wave.verified, shed.wave.shed
    )?;
    writeln!(out, "  \"min_scale_ratio\": {MIN_SCALE_RATIO},")?;
    writeln!(out, "  \"scale_ratio\": {ratio}")?;
    writeln!(out, "}}")?;
    Ok(())
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let deadline = Duration::from_secs(if ci { 60 } else { 240 });
    let mut violations: Vec<String> = Vec::new();

    println!("gateway scale: event-driven reactor vs thread-pool ceiling\n");

    // Phase 1 — thread-pool ceiling.
    let probe = run_threadpool_probe();
    let ceiling = (THREADS + QUEUE_DEPTH) as u64;
    println!(
        "thread-pool ({THREADS} workers, queue {QUEUE_DEPTH}): \
         {} concurrent sessions held, {} shed of {} dialed",
        probe.capacity, probe.wave.shed, probe.wave.dialed
    );
    if probe.capacity != ceiling {
        violations.push(format!(
            "thread-pool ceiling measured {} != structural {ceiling}",
            probe.capacity
        ));
    }
    if probe.wave.verified + probe.wave.shed != probe.wave.dialed {
        violations.push(format!(
            "thread-pool probe leaked sessions: {:?}",
            probe.wave
        ));
    }
    if !probe.report.stats.partition_holds() {
        violations.push(format!(
            "thread-pool probe partition violated: {:?}",
            probe.report.stats
        ));
    }

    // Phase 2 — reactor sweep on the same thread budget.
    let mut levels = Vec::new();
    let mut rows = Vec::new();
    for level in sweep_levels(ci) {
        let outcome = run_reactor_level(level, deadline);
        check_level(&outcome, &mut violations);
        println!(
            "reactor level {:>6}: {}/{} verified, {} shed, wall {} ms, \
             p50 {} us / p90 {} us / p99 {} us",
            outcome.level,
            outcome.wave.verified,
            outcome.level,
            outcome.wave.shed,
            outcome.wall.as_millis(),
            outcome.wave.latency_percentile(50),
            outcome.wave.latency_percentile(90),
            outcome.wave.latency_percentile(99),
        );
        rows.push(vec![
            format!("{}", outcome.level),
            format!("{}/{}", outcome.wave.verified, outcome.level),
            format!("{:.4}", outcome.wave.shed_rate()),
            format!("{}", outcome.wave.latency_percentile(50)),
            format!("{}", outcome.wave.latency_percentile(90)),
            format!("{}", outcome.wave.latency_percentile(99)),
            format!(
                "{:.0}/s",
                outcome.wave.verified as f64 / outcome.wall.as_secs_f64().max(1e-9)
            ),
        ]);
        levels.push(outcome);
    }

    // Phase 3 — deterministic shed at the readiness layer.
    let (shed, shed_shards) = run_shed_probe();
    println!(
        "shed probe (1 shard, cap {SHED_CAP}): {} served, {} Busy of {} dialed",
        shed.wave.verified, shed.wave.shed, shed.wave.dialed
    );
    if shed.wave.verified != SHED_CAP as u64 || shed.wave.shed != SHED_CAP as u64 {
        violations.push(format!(
            "shed probe not deterministic: {} served / {} shed, expected {SHED_CAP}/{SHED_CAP}",
            shed.wave.verified, shed.wave.shed
        ));
    }
    if shed.report.stats.busy_rejected != shed.wave.shed {
        violations.push(format!(
            "busy_rejected {} disagrees with client-side shed count {}",
            shed.report.stats.busy_rejected, shed.wave.shed
        ));
    }
    for snap in &shed_shards {
        if !snap.partition_holds() {
            violations.push(format!("shed probe shard law violated: {snap:?}"));
        }
    }

    // The tentpole gate: connection count, same thread budget.
    let top_verified = levels
        .iter()
        .filter(|o| o.wave.verified == o.level as u64)
        .map(|o| o.wave.verified)
        .max()
        .unwrap_or(0);
    let ratio = top_verified / probe.capacity.max(1);
    println!(
        "\nscale ratio: {top_verified} reactor sessions / {} thread-pool ceiling = {ratio}x (gate: >= {MIN_SCALE_RATIO}x)",
        probe.capacity
    );
    if ratio < MIN_SCALE_RATIO {
        violations.push(format!(
            "reactor held only {ratio}x the thread-pool ceiling (need {MIN_SCALE_RATIO}x)"
        ));
    }

    println!(
        "\n{}",
        render_table(
            &[
                "connections",
                "verified",
                "shed rate",
                "p50 us",
                "p90 us",
                "p99 us",
                "throughput"
            ],
            &rows,
            &[12, 14, 10, 10, 10, 10, 12],
        )
    );

    if let Err(e) = write_json(
        "BENCH_gateway_scale.json",
        ci,
        &probe,
        &levels,
        &shed,
        ratio,
    ) {
        violations.push(format!("failed to write BENCH_gateway_scale.json: {e}"));
    } else {
        println!("wrote BENCH_gateway_scale.json");
    }

    println!("\nreading the table: the thread-pool driver tops out at its");
    println!("structural ceiling (workers + queue slots); the reactor holds");
    println!("every swept connection count on the same thread budget, so the");
    println!("verifier's session capacity is bounded by memory and protocol");
    println!("work, not by OS threads.");

    if violations.is_empty() {
        println!("\nall gateway-scale invariants held");
    } else {
        for v in &violations {
            eprintln!("GATEWAY SCALE VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
