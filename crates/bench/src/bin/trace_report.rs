//! Cycle-accurate phase report for the prover pipeline, built on the
//! telemetry subsystem — and a validation of that subsystem against the
//! paper's cycle model.
//!
//! The workload replays the README quickstart (driven attestation
//! sessions over a direct link) plus a forgery flood and a garbage flood
//! against one prover, with the tracer on. It then prints the per-phase
//! table (parse → admission → auth → freshness → attest-MAC): where the
//! cycles died, which is the paper's whole argument in one table.
//!
//! `--ci` runs the same workload and gates on four checks:
//!
//! 1. the `prover.*` phase table sums exactly to
//!    `ProverStats.attestation_cycles` (the spans measure the same clock
//!    the stats account);
//! 2. the measured attest-MAC phase matches
//!    `CostTable::whole_memory_mac` for the device's RAM size within 1 %
//!    (telemetry agrees with Table 1);
//! 3. re-running the identical workload with the tracer *disabled* spends
//!    exactly the same number of device cycles (instrumentation is free
//!    when off);
//! 4. no trace events were dropped.
//!
//! `--jsonl PATH` / `--chrome PATH` additionally export the trace.

use proverguard_adversary::world::World;
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::session::{DirectLink, SessionDriver};
use proverguard_mcu::{map, CLOCK_HZ};
use proverguard_telemetry::export::PhaseTable;
use proverguard_telemetry::{metrics, trace};

/// Driven sessions in the workload (the quickstart, three times over).
const SESSIONS: u64 = 3;
/// Forged (bad-auth) requests in the flood phase.
const FORGERIES: u64 = 40;
/// Malformed wire blobs in the garbage phase.
const GARBAGE: u64 = 25;

/// Replays the fixed workload against a fresh world and returns it for
/// inspection. Fully deterministic: same requests, same cycle counts,
/// every run — which is what makes the tracer-overhead check meaningful.
fn run_workload() -> World {
    let mut world = World::new(ProverConfig::recommended()).expect("provisioning");
    world.advance_ms(1000).expect("idle");

    for _ in 0..SESSIONS {
        let mut link = DirectLink::new(&mut world.verifier, &mut world.prover);
        let _ = SessionDriver::default().run(&mut link);
    }

    for i in 0..FORGERIES {
        // Adv_ext: plausible header (fresh-looking counter), garbage MAC.
        let bogus = AttestRequest {
            scope: AttestScope::Whole,
            freshness: FreshnessField::Counter(1_000 + i),
            challenge: [0xbb; 16],
            auth: vec![0u8; 8],
        };
        let _ = world.prover.handle_wire_request(&bogus.to_bytes());
        let _ = world.advance_ms(5);
    }

    for i in 0..GARBAGE {
        // Line noise: wrong version byte, then filler of varying length.
        let mut blob = vec![0xff_u8];
        blob.extend((0..(i % 48)).map(|j| (i ^ j) as u8));
        let _ = world.prover.handle_wire_request(&blob);
        let _ = world.advance_ms(5);
    }

    world
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ci_mode = args.iter().any(|a| a == "--ci");
    let path_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    // Instrumented run.
    trace::reset();
    metrics::reset();
    trace::enable();
    let world = run_workload();
    trace::disable();
    let events = trace::drain();
    let dropped = trace::dropped();
    let stats = *world.prover.stats();

    let prover_phases = PhaseTable::from_events_with_prefix(&events, "prover.");
    let crypto_phases = PhaseTable::from_events_with_prefix(&events, "crypto.");

    if let Some(path) = path_after("--jsonl") {
        std::fs::write(&path, proverguard_telemetry::to_jsonl(&events)).expect("write jsonl");
        println!("wrote {} events to {path}", events.len());
    }
    if let Some(path) = path_after("--chrome") {
        std::fs::write(
            &path,
            proverguard_telemetry::to_chrome_trace(&events, CLOCK_HZ),
        )
        .expect("write chrome trace");
        println!("wrote Chrome trace to {path} (open in chrome://tracing)");
    }

    println!(
        "trace report — {SESSIONS} sessions, {FORGERIES} forgeries, {GARBAGE} garbage blobs \
         ({} requests seen, {} accepted)\n",
        stats.requests_seen, stats.accepted
    );
    println!(
        "prover pipeline phases (device cycles @ {} MHz):",
        CLOCK_HZ / 1_000_000
    );
    println!("{}", prover_phases.render(CLOCK_HZ));
    println!("host crypto primitives (call counts; spans ride the device clock):");
    println!("{}", crypto_phases.render(CLOCK_HZ));
    println!("metrics:");
    println!("{}", metrics::snapshot().render());

    // ---- validation (always computed; gating only under --ci) ----------
    let mut failures: Vec<String> = Vec::new();

    // 1. Phase table vs ProverStats accounting.
    let phase_sum = prover_phases.total_cycles();
    if phase_sum != stats.attestation_cycles {
        failures.push(format!(
            "phase table sums to {phase_sum} cycles but ProverStats.attestation_cycles is {}",
            stats.attestation_cycles
        ));
    }

    // 2. Attest-MAC phase vs the paper's cycle model. The per-call cost
    //    also covers the MACed request header (~2 of 8194 HMAC blocks),
    //    so it sits a hair above the bare whole-memory figure — well
    //    inside the 1 % gate.
    let model = world
        .prover
        .mcu()
        .cost_table()
        .whole_memory_mac(map::RAM.len() as usize);
    match prover_phases.row("prover.attest_mac") {
        None => failures.push("no prover.attest_mac phase was recorded".to_string()),
        Some(row) => {
            let measured = row.cycles_per_call();
            let deviation = measured.abs_diff(model) as f64 / model as f64;
            println!(
                "attest-MAC cross-check: measured {measured} cycles/call vs model {model} \
                 ({:.4} % deviation)",
                deviation * 100.0
            );
            if deviation > 0.01 {
                failures.push(format!(
                    "attest-MAC phase deviates {:.2} % from CostTable::whole_memory_mac \
                     (measured {measured}, model {model})",
                    deviation * 100.0
                ));
            }
        }
    }

    // 3. Disabled-tracer overhead must be zero device cycles.
    metrics::reset();
    let quiet = run_workload();
    let quiet_cycles = quiet.prover.stats().attestation_cycles;
    if quiet_cycles != stats.attestation_cycles {
        failures.push(format!(
            "tracer overhead is not zero: {} cycles traced vs {} untraced",
            stats.attestation_cycles, quiet_cycles
        ));
    } else {
        println!(
            "disabled-tracer overhead: 0 cycles ({} == {})",
            stats.attestation_cycles, quiet_cycles
        );
    }

    // 4. The ring held the whole workload.
    if dropped > 0 {
        failures.push(format!("{dropped} trace events were dropped"));
    }

    if ci_mode {
        if failures.is_empty() {
            println!("\ntrace_report --ci: all telemetry invariants held");
            return;
        }
        for f in &failures {
            eprintln!("TELEMETRY VIOLATION: {f}");
        }
        std::process::exit(1);
    } else if !failures.is_empty() {
        println!("\nwarnings (fatal under --ci):");
        for f in &failures {
            println!("  - {f}");
        }
    }
}
