//! Regenerates **Table 1**: performance of cryptographic primitives on the
//! (simulated) Intel Siskiyou Peak at 24 MHz, alongside host measurements
//! of this repository's own from-scratch implementations.
//!
//! The "model ms @ 24 MHz" column is the calibrated cycle model (the
//! paper's numbers); the "host ns/op" column is measured from our Rust
//! primitives and is expected to reproduce the *shape* — Speck ≪ AES <
//! HMAC ≪ ECDSA — not the absolute values.

use proverguard_bench::{fmt_ms, render_table, time_ns};
use proverguard_crypto::aes::Aes128;
use proverguard_crypto::ecdsa::SigningKey;
use proverguard_crypto::hmac::HmacSha1;
use proverguard_crypto::speck::Speck64_128;
use proverguard_crypto::BlockCipher;
use proverguard_mcu::cycles::{cycles_to_ms, CostTable};

fn main() {
    let cost = CostTable::siskiyou_peak();
    let key = [0x42u8; 16];
    let aes = Aes128::from_key(&key);
    let speck = Speck64_128::from_key(&key);
    let signing = SigningKey::from_seed(&key);
    let verifying = signing.verifying_key();
    let signature = signing.sign(b"attestation request");

    let mut aes_block = [0u8; 16];
    let mut speck_block = [0u8; 8];

    let rows = vec![
        row("SHA1-HMAC fixed", cycles_to_ms(cost.hmac_fixed), {
            // Fixed part = keying overhead: hash an empty message.
            time_ns(512, || {
                std::hint::black_box(HmacSha1::mac(&key, b""));
            })
        }),
        row(
            "SHA1-HMAC per 64B block",
            cycles_to_ms(cost.hmac_per_block),
            {
                // Marginal block cost: (t(64B) - t(0B)) measured jointly below;
                // here we report t for one extra block via a 4096B message / 64.
                let big = vec![0u8; 4096];
                time_ns(64, || {
                    std::hint::black_box(HmacSha1::mac(&key, &big));
                }) / 64.0
            },
        ),
        row(
            "AES-128 key expansion",
            cycles_to_ms(cost.aes_key_expansion),
            {
                time_ns(512, || {
                    std::hint::black_box(Aes128::from_key(&key));
                })
            },
        ),
        row(
            "AES-128 enc per block",
            cycles_to_ms(cost.aes_enc_per_block),
            time_ns(512, || aes.encrypt_block(&mut aes_block)),
        ),
        row(
            "AES-128 dec per block",
            cycles_to_ms(cost.aes_dec_per_block),
            time_ns(512, || aes.decrypt_block(&mut aes_block)),
        ),
        row(
            "Speck 64/128 key expansion",
            cycles_to_ms(cost.speck_key_expansion),
            {
                time_ns(512, || {
                    std::hint::black_box(Speck64_128::from_key(&key));
                })
            },
        ),
        row(
            "Speck 64/128 enc per block",
            cycles_to_ms(cost.speck_enc_per_block),
            time_ns(512, || speck.encrypt_block(&mut speck_block)),
        ),
        row(
            "Speck 64/128 dec per block",
            cycles_to_ms(cost.speck_dec_per_block),
            time_ns(512, || speck.decrypt_block(&mut speck_block)),
        ),
        row("ECDSA secp160r1 sign", cycles_to_ms(cost.ecdsa_sign), {
            time_ns(4, || {
                std::hint::black_box(signing.sign(b"attestation request"));
            })
        }),
        row("ECDSA secp160r1 verify", cycles_to_ms(cost.ecdsa_verify), {
            time_ns(4, || {
                std::hint::black_box(verifying.verify(b"attestation request", &signature).is_ok());
            })
        }),
    ];

    println!("Table 1 — cryptographic primitive performance");
    println!("(model: calibrated Siskiyou Peak @ 24 MHz; host: this crate's own code)\n");
    println!(
        "{}",
        render_table(
            &["primitive", "model ms @24MHz", "host ns/op"],
            &rows,
            &[28, 16, 14],
        )
    );

    // Shape check: the orderings the paper's argument depends on.
    let host = |label: &str| {
        rows.iter()
            .find(|r| r[0].contains(label))
            .and_then(|r| r[2].parse::<f64>().ok())
            .expect("row exists")
    };
    let speck_enc = host("Speck 64/128 enc");
    let aes_enc = host("AES-128 enc");
    let ecdsa_verify = host("ECDSA secp160r1 verify");
    println!(
        "shape check (host): speck_enc < aes_enc: {}",
        speck_enc < aes_enc
    );
    println!(
        "shape check (host): ecdsa_verify / speck_enc = {:.0}x (paper: ~10000x)",
        ecdsa_verify / speck_enc
    );
}

fn row(name: &str, model_ms: f64, host_ns: f64) -> Vec<String> {
    vec![name.to_string(), fmt_ms(model_ms), format!("{host_ns:.0}")]
}
