//! Regenerates the **§3.1/§4.1 DoS economics experiment**: what a flood of
//! bogus attestation requests costs the prover under each defence level —
//! cycles, milliseconds, battery energy, and how many forgeries it takes
//! to kill the battery — including the ECDSA paradox configuration, plus
//! the two robustness-era floors: malformed wire garbage (cheapest reject
//! of all) and the reboot-recovery cycle.

use proverguard_adversary::dos::{flood_with_garbage, requests_to_deplete, standard_comparison};
use proverguard_adversary::world::World;
use proverguard_attest::prover::ProverConfig;
use proverguard_attest::{InMemoryNvStore, RecoveryOutcome};
use proverguard_bench::render_table;
use proverguard_mcu::energy::Battery;

fn main() {
    println!("§3.1/§4.1 — DoS economics: flood of forged attestation requests\n");

    let n = 20;
    let mut reports = standard_comparison(n).expect("floods run");
    reports.push(
        flood_with_garbage(ProverConfig::recommended(), "wire garbage (no parse)", n)
            .expect("garbage flood runs"),
    );

    let battery = Battery::default();
    let battery_cycles = battery.cycles_remaining();

    let mut rows = Vec::new();
    for report in &reports {
        let cycles_per_request = report
            .cycles_burned
            .checked_div(report.requests)
            .unwrap_or(0);
        let to_deplete = requests_to_deplete(battery_cycles, cycles_per_request);
        rows.push(vec![
            report.label.clone(),
            format!("{}/{}", report.answered, report.requests),
            format!("{:.3}", report.ms_per_request()),
            format!("{:.2e}", report.energy_joules),
            human_count(to_deplete),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "answered",
                "ms/forgery",
                "J burned",
                "forgeries to kill battery"
            ],
            &rows,
            &[30, 10, 12, 12, 26],
        )
    );

    println!("reading the table:");
    println!("  - the unprotected prover answers every forgery at ~754 ms each;");
    println!("    a coin-cell battery dies after a few hundred thousand forgeries");
    println!("    (hours of continuous flooding at line rate).");
    println!("  - symmetric authentication caps the damage at one block check");
    println!("    (0.017-0.43 ms): the battery outlives any realistic flood.");
    println!("  - ECDSA 'protection' still burns 170.9 ms per forgery - the §4.1");
    println!("    paradox: the defence is itself a DoS vector.");
    println!("  - wire garbage that does not even parse is rejected below the");
    println!("    auth check's cost: fuzz traffic is the cheapest thing to shed.\n");

    reboot_recovery_costs();

    // Time stolen from the primary task (sensing/actuation) per §3.1.
    println!("time stolen from the prover's primary task:");
    for report in &reports {
        let stolen_ms_per_s = stolen_per_second(report.ms_per_request(), 10.0);
        println!(
            "  {:<32} at 10 forgeries/s: {:.1} ms of compute stolen per second ({:.1}%)",
            report.label,
            stolen_ms_per_s,
            stolen_ms_per_s / 10.0
        );
    }
}

/// Shows what a reboot costs the prover in freshness terms: with a sealed
/// NV record the counter survives and replays stay dead; without one the
/// counter rolls back to zero (the §5 rollback, reached by power cycling
/// alone).
fn reboot_recovery_costs() {
    println!("reboot-recovery (counter state across power cycles):");
    for (label, attach_store) in [("EA-MAC + sealed NV record", true), ("no NV store", false)] {
        let mut world = World::new(ProverConfig::recommended()).expect("world");
        if attach_store {
            world
                .prover
                .attach_nv_store(Box::new(InMemoryNvStore::new()))
                .expect("attach");
        }
        let request = world.verifier.make_request().expect("request");
        world.deliver(&request).expect("genuine request accepted");
        let outcome = world.prover.reboot().expect("reboot");
        let recovery = match outcome {
            RecoveryOutcome::Restored(r) => format!("restored counter {}", r.counter_r),
            other => format!("{other:?}"),
        };
        let replay_rejected = world.prover.handle_request(&request).is_err();
        let stats = world.prover.stats();
        println!(
            "  {:<28} recovery: {:<22} replay after reboot: {:<9} (reboots: {}, recovery failures: {})",
            label, recovery,
            if replay_rejected { "rejected" } else { "ACCEPTED" },
            stats.reboots,
            stats.recovery_failures,
        );
    }
    println!();
}

/// Milliseconds of prover compute consumed per wall-clock second at
/// `rate` forgeries per second.
fn stolen_per_second(ms_per_forgery: f64, rate: f64) -> f64 {
    (ms_per_forgery * rate).min(1000.0)
}

fn human_count(n: u64) -> String {
    match n {
        u64::MAX => "unbounded".to_string(),
        n if n >= 1_000_000_000 => format!("{:.1}G", n as f64 / 1e9),
        n if n >= 1_000_000 => format!("{:.1}M", n as f64 / 1e6),
        n if n >= 1_000 => format!("{:.1}k", n as f64 / 1e3),
        n => n.to_string(),
    }
}
