//! Regenerates **Figure 1**: functional walk-through of the two prototype
//! configurations — (a) the base version with a dedicated hardware clock,
//! and (b) the advanced version with the SW-clock — including a genuine
//! ISA-level malware program that is faulted by the EA-MPU.

use proverguard_attest::clock::CLOCK_HANDLER_ADDR;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;
use proverguard_mcu::isa::{assemble_at, Cpu};
use proverguard_mcu::map;

fn main() {
    figure_1a();
    println!();
    figure_1b();
    println!();
    isa_malware_demo();
}

fn figure_1a() {
    println!("Figure 1a — base version: K_Attest and counter_R accessible only by");
    println!("Code_Attest; EA-MPU set up by secure boot; dedicated 64-bit clock.\n");

    let config = ProverConfig::timestamp_hw64();
    let key = [0x42u8; 16];
    let mut prover = Prover::provision(config.clone(), &key, b"app v1").expect("provision");
    let mut verifier = Verifier::new(&config, &key).expect("verifier");

    println!(
        "  secure boot: image verified, {} EA-MPU rules installed, MPU locked: {}",
        prover.mcu().mpu().rules().len(),
        prover.mcu().mpu().is_locked()
    );
    for rule in prover.mcu().mpu().rules() {
        println!(
            "    rule {:<16} data {}  code {}",
            rule.name, rule.data_range, rule.code_range
        );
    }

    // EA-MAC in action.
    let app_read = prover.mcu_mut().read_attest_key(map::APP_CODE);
    println!(
        "  app code reads K_Attest      -> {}",
        verdict(app_read.is_err())
    );
    let attest_read = prover.mcu_mut().read_attest_key(map::ATTEST_PC);
    println!(
        "  Code_Attest reads K_Attest   -> {}",
        verdict(attest_read.is_ok())
    );
    let rogue_write =
        prover
            .mcu_mut()
            .bus_write(map::COUNTER_R.start, &0u64.to_le_bytes(), map::APP_CODE);
    println!(
        "  app code writes counter_R    -> {}",
        verdict(rogue_write.is_err())
    );

    // The clock ticks and a timestamped exchange works.
    prover.advance_time_ms(2500).expect("advance");
    verifier.advance_time_ms(2500);
    println!(
        "  after 2500 ms: prover clock reads {} ms",
        prover.now_ms().expect("clock").expect("installed")
    );
    let request = verifier.make_request().expect("request");
    let ok = prover.handle_request(&request).is_ok();
    println!("  timestamped attestation exchange -> {}", verdict(ok));
}

fn figure_1b() {
    println!("Figure 1b — advanced version: Clock_LSB wraps (1), the interrupt engine");
    println!("invokes Code_Clock (2), which maintains Clock_MSB (3).\n");

    let config = ProverConfig::timestamp_sw_clock();
    let key = [0x42u8; 16];
    let mut prover = Prover::provision(config, &key, b"app v1").expect("provision");

    // (1)+(2)+(3): time passes, wraps are served, the combined clock tracks.
    prover.advance_time_ms(3000).expect("advance");
    let ms = prover.now_ms().expect("clock").expect("installed");
    println!("  after 3000 ms idle: SW-clock reads {ms} ms (wrap ≈ 43.7 ms each)");

    // The IDT is locked.
    let hijack =
        prover
            .mcu_mut()
            .bus_write(map::IDT.start, &map::APP_CODE.to_le_bytes(), map::APP_CODE);
    println!(
        "  app code rewrites IDT vector 0        -> {}",
        verdict(hijack.is_err())
    );
    // Timer control is locked.
    let kill = prover
        .mcu_mut()
        .bus_write(map::MMIO_TIMER.start + 4, &[0u8], map::APP_CODE);
    println!(
        "  app code disables the timer           -> {}",
        verdict(kill.is_err())
    );
    // Clock_MSB is owned by Code_Clock.
    let smash =
        prover
            .mcu_mut()
            .bus_write(map::CLOCK_MSB.start, &0u64.to_le_bytes(), map::APP_CODE);
    println!(
        "  app code rewrites Clock_MSB           -> {}",
        verdict(smash.is_err())
    );
    println!(
        "  IDT vector 0 still points at Code_Clock ({:#010x})",
        CLOCK_HANDLER_ADDR
    );
    // And the clock still works afterwards.
    prover.advance_time_ms(1000).expect("advance");
    let after = prover.now_ms().expect("clock").expect("installed");
    println!("  after 1000 more ms: SW-clock reads {after} ms (still running)");
}

fn isa_malware_demo() {
    println!("ISA-level demo — malware literally executes and is faulted mid-loop:\n");
    let config = ProverConfig::recommended();
    let key = [0x42u8; 16];
    let mut prover = Prover::provision(config, &key, b"placeholder").expect("provision");

    // A key-exfiltration loop: copy K_Attest byte by byte into app RAM.
    let program = format!(
        "        ldi r1, {:#x}      ; K_Attest base
                lui r2, {:#x}
                ldi r3, {:#x}
                or  r2, r2, r3      ; exfiltration buffer in app RAM
                ldi r4, 0
                ldi r5, 16
        loop:   ldb r6, [r1]        ; <- EA-MPU faults here
                stb r6, [r2]
                addi r1, r1, 1
                addi r2, r2, 1
                addi r4, r4, 1
                bne r4, r5, loop
                halt",
        map::ATTEST_KEY.start,
        map::APP_RAM.start >> 16,
        map::APP_RAM.start & 0xffff,
    );
    let image = assemble_at(&program, map::FLASH.start).expect("assembles");
    // Note: flashing new code would break secure boot on the next reset;
    // Adv_roam installs it *after* boot, which is exactly its model.
    prover.mcu_mut().program_flash(&image).expect("flash");
    let mut cpu = Cpu::new(map::FLASH.start);
    let outcome = cpu.run(prover.mcu_mut(), 1000);
    println!(
        "  program: 16-byte key-exfiltration loop at {:#010x}",
        map::FLASH.start
    );
    println!(
        "  executed {} instructions before: {:?}",
        outcome.steps, outcome.fault
    );
    println!("  bytes exfiltrated: r4 = {}", cpu.reg(4));
    println!("  -> {}", verdict(outcome.faulted() && cpu.reg(4) == 0));
}

fn verdict(protected: bool) -> &'static str {
    if protected {
        "OK (as designed)"
    } else {
        "UNEXPECTED"
    }
}
