//! Measures what the segment cache buys: device cycles per attestation
//! as a function of how much RAM actually changed since the last round.
//!
//! The paper's §3.1 whole-memory MAC costs ~754 ms on the reference MCU
//! *every* round, even when nothing changed. The segmented prover
//! re-digests only dirty segments, so a mostly-idle device answers in a
//! small fraction of that. Default mode prints the dirty-fraction sweep
//! next to the whole-memory baseline; `--ci` runs a short deterministic
//! gate — repeat attestation with 1/16 of the segments dirty must cost
//! < 15 % of a full sweep, and on every round (including seeded random
//! write storms) the served digests must equal a from-scratch
//! recomputation — and writes `BENCH_segcache.json` with the cycle
//! counts.
//!
//! ```sh
//! cargo run --release -p proverguard-bench --bin segcache_bench
//! cargo run --release -p proverguard-bench --bin segcache_bench -- --ci
//! ```

use std::fmt::Write as _;

use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::segcache::segment_digests;
use proverguard_attest::verifier::Verifier;
use proverguard_bench::{fmt_ms, render_table};
use proverguard_mcu::map;

const KEY: [u8; 16] = [0x42; 16];

/// CI acceptance threshold: a 1/16-dirty round must cost less than this
/// fraction of the cold full sweep (recorded in EXPERIMENTS.md E10).
const CI_MAX_RATIO: f64 = 0.15;

/// Seed for the randomized oracle rounds of the `--ci` gate.
const CI_SEED: u64 = 0x5E6C_AC4E;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pair() -> (Prover, Verifier) {
    let config = ProverConfig::recommended_segmented();
    let prover = Prover::provision(config.clone(), &KEY, b"segcache bench app").expect("provision");
    let verifier = Verifier::new(&config, &KEY).expect("verifier");
    (prover, verifier)
}

struct Round {
    label: String,
    dirty_segments: usize,
    recomputed: u32,
    cached: u32,
    cycles: u64,
    ms: f64,
}

/// One attestation with the coherence oracle: the verifier must accept
/// and the cache must match a from-scratch recomputation.
fn attest(prover: &mut Prover, verifier: &mut Verifier, violations: &mut Vec<String>) -> u64 {
    let request = verifier.make_request().expect("request");
    let response = prover.handle_request(&request).expect("accepted");
    if !verifier.check_response(&request, &response, prover.expected_memory()) {
        violations.push("segmented response failed verification".to_string());
    }
    let cache = prover.segment_cache().expect("segmented prover");
    let oracle = segment_digests(prover.expected_memory(), cache.segment_len());
    match cache.all() {
        Some(cached) if cached == oracle => {}
        Some(_) => violations.push("cached digests diverge from from-scratch oracle".to_string()),
        None => violations.push("cache incomplete after attestation".to_string()),
    }
    let cost = prover.last_cost();
    if cost.mac_recomputed_segments as usize + cost.mac_cached_segments as usize
        != cache.segment_count()
    {
        violations.push(format!(
            "cost partition broken: {} recomputed + {} cached != {} segments",
            cost.mac_recomputed_segments,
            cost.mac_cached_segments,
            cache.segment_count()
        ));
    }
    cost.response_cycles
}

/// Dirties `count` distinct app-RAM segments (never segment 0, which the
/// freshness commit dirties on every round anyway).
fn dirty_segments(prover: &mut Prover, count: usize) {
    let seg_len = prover
        .segment_cache()
        .expect("segmented prover")
        .segment_len() as u32;
    let total = (map::RAM.len() / seg_len) as usize;
    assert!(count < total, "keep at least segment 0 implicit");
    for i in 0..count {
        let addr = map::RAM.start + (1 + i as u32) * seg_len + 64;
        prover
            .mcu_mut()
            .bus_write(addr, &[0xA5], map::APP_CODE)
            .expect("app write");
    }
}

fn run(ci: bool) -> (Vec<Round>, u64, u64, Vec<String>) {
    let mut violations = Vec::new();
    let (mut prover, mut verifier) = pair();
    let segment_count = prover.segment_cache().expect("segmented").segment_count();

    // Round 0: cold cache — the full sweep every later round is judged
    // against.
    let full_cycles = attest(&mut prover, &mut verifier, &mut violations);
    let mut rounds = vec![Round {
        label: "cold (full sweep)".to_string(),
        dirty_segments: segment_count,
        recomputed: prover.last_cost().mac_recomputed_segments,
        cached: prover.last_cost().mac_cached_segments,
        cycles: full_cycles,
        ms: prover.last_cost().total_ms(),
    }];

    // Warm rounds at increasing dirty fractions. `k` counts app segments
    // scribbled on; the counter segment recomputes on top of that.
    for k in [
        0usize,
        segment_count / 16,
        segment_count / 4,
        segment_count / 2,
    ] {
        dirty_segments(&mut prover, k);
        let cycles = attest(&mut prover, &mut verifier, &mut violations);
        rounds.push(Round {
            label: format!("{k}/{segment_count} dirty"),
            dirty_segments: k,
            recomputed: prover.last_cost().mac_recomputed_segments,
            cached: prover.last_cost().mac_cached_segments,
            cycles,
            ms: prover.last_cost().total_ms(),
        });
    }

    // The whole-memory baseline: the same image under the paper's
    // construction, which has no cache to warm.
    let whole_config = ProverConfig::recommended();
    let mut whole_prover =
        Prover::provision(whole_config.clone(), &KEY, b"segcache bench app").expect("provision");
    let mut whole_verifier = Verifier::new(&whole_config, &KEY).expect("verifier");
    let wreq = whole_verifier.make_request().expect("request");
    let wresp = whole_prover.handle_request(&wreq).expect("accepted");
    if !whole_verifier.check_response(&wreq, &wresp, whole_prover.expected_memory()) {
        violations.push("whole-memory baseline failed verification".to_string());
    }
    let whole_cycles = whole_prover.last_cost().response_cycles;

    if ci {
        // Gate 1: the 1/16-dirty warm round beats the threshold.
        let sparse = &rounds[2];
        assert_eq!(sparse.dirty_segments, segment_count / 16);
        let ratio = sparse.cycles as f64 / full_cycles as f64;
        if ratio >= CI_MAX_RATIO {
            violations.push(format!(
                "1/16-dirty round cost {:.1}% of a full sweep (budget {:.0}%)",
                ratio * 100.0,
                CI_MAX_RATIO * 100.0
            ));
        }
        // Gate 2: seeded random write storms — arbitrary offsets, lengths
        // and straddled boundaries — never desynchronize cache and RAM.
        let mut rng = CI_SEED;
        for _ in 0..24 {
            let word = splitmix64(&mut rng);
            match word % 5 {
                4 => {
                    prover.reboot().expect("reboot");
                }
                _ => {
                    let span = u64::from(map::RAM.end - map::APP_RAM.start - 600);
                    let off = map::APP_RAM.start + ((word >> 8) % span) as u32;
                    let len = 1 + (word >> 40) as usize % 512;
                    prover
                        .mcu_mut()
                        .bus_write(off, &vec![word as u8; len], map::APP_CODE)
                        .expect("app write");
                }
            }
            attest(&mut prover, &mut verifier, &mut violations);
        }
    }

    (rounds, full_cycles, whole_cycles, violations)
}

fn write_json(
    path: &str,
    rounds: &[Round],
    full_cycles: u64,
    whole_cycles: u64,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"segcache\",");
    let _ = writeln!(out, "  \"threshold_ratio\": {CI_MAX_RATIO},");
    let _ = writeln!(out, "  \"full_sweep_cycles\": {full_cycles},");
    let _ = writeln!(out, "  \"whole_memory_mac_cycles\": {whole_cycles},");
    let _ = writeln!(out, "  \"rounds\": [");
    for (i, r) in rounds.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"dirty_segments\": {}, \"recomputed\": {}, \
             \"cached\": {}, \"cycles\": {}, \"ratio_vs_full\": {:.4}}}{}",
            r.label,
            r.dirty_segments,
            r.recomputed,
            r.cached,
            r.cycles,
            r.cycles as f64 / full_cycles as f64,
            if i + 1 == rounds.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let ci_mode = std::env::args().any(|a| a == "--ci");
    let (rounds, full_cycles, whole_cycles, violations) = run(ci_mode);

    let rows: Vec<Vec<String>> = rounds
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.recomputed),
                format!("{}", r.cached),
                format!("{}", r.cycles),
                fmt_ms(r.ms),
                format!("{:.1}%", r.cycles as f64 / full_cycles as f64 * 100.0),
            ]
        })
        .collect();
    println!("incremental segmented attestation: cycles vs dirty fraction\n");
    println!(
        "{}",
        render_table(
            &[
                "round",
                "recomputed",
                "cached",
                "cycles",
                "resp ms",
                "vs full"
            ],
            &rows,
            &[18, 10, 8, 12, 10, 8],
        )
    );
    println!(
        "whole-memory MAC baseline (no cache possible): {whole_cycles} cycles — the\n\
         segmented full sweep costs {:.1}% of it; a quiescent warm round costs {:.2}%.",
        full_cycles as f64 / whole_cycles as f64 * 100.0,
        rounds[1].cycles as f64 / whole_cycles as f64 * 100.0,
    );

    if ci_mode {
        let json_path = "BENCH_segcache.json";
        if let Err(e) = write_json(json_path, &rounds, full_cycles, whole_cycles) {
            eprintln!("SEGCACHE BENCH: failed to write {json_path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {json_path}");
        if violations.is_empty() {
            println!("all segcache invariants held");
            return;
        }
        for violation in &violations {
            eprintln!("SEGCACHE INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    } else if !violations.is_empty() {
        for violation in &violations {
            eprintln!("SEGCACHE INVARIANT VIOLATION: {violation}");
        }
        std::process::exit(1);
    }
}
