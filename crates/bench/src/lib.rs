//! Shared helpers for the benchmark harness and table generators.
//!
//! Each binary in `src/bin/` regenerates one artefact of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index); the Criterion
//! benches in `benches/` measure our from-scratch primitives on the host
//! to validate the *shape* of Table 1 independently of the calibrated
//! cycle model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Quick host-side timing: median nanoseconds per iteration of `f` over
/// `iters` runs (Criterion is the rigorous path; this keeps the table
/// binaries fast and dependency-free).
pub fn time_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    // Warm up.
    f();
    let mut samples: Vec<f64> = (0..iters.min(32))
        .map(|_| {
            let inner = (iters / 32).max(1);
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_nanos() as f64 / f64::from(inner)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

/// Renders a simple fixed-width table with a header row.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>], widths: &[usize]) -> String {
    assert_eq!(headers.len(), widths.len(), "headers and widths must align");
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (cell, width) in cells.iter().zip(widths.iter()) {
            out.push_str(&format!("{cell:>width$}  "));
        }
        out.push('\n');
    };
    fmt_row(
        &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

/// Formats a milliseconds value the way the paper's tables do.
#[must_use]
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ns_returns_positive() {
        let ns = time_ns(64, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()]],
            &[5, 8],
        );
        assert!(t.contains("a"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn fmt_ms_three_decimals() {
        assert_eq!(fmt_ms(754.0321), "754.032");
        assert_eq!(fmt_ms(0.017), "0.017");
    }

    #[test]
    #[should_panic(expected = "headers and widths")]
    fn render_table_checks_widths() {
        let _ = render_table(&["a"], &[], &[1, 2]);
    }
}
