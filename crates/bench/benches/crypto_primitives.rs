//! Criterion benchmarks for Table 1: every primitive the paper measures,
//! implemented from scratch in `proverguard-crypto` and measured on the
//! host. The expected *shape* (not absolute values): Speck ≪ AES < HMAC
//! per block, and ECDSA three to four orders of magnitude above the
//! symmetric primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use proverguard_crypto::aes::Aes128;
use proverguard_crypto::ecdsa::SigningKey;
use proverguard_crypto::hmac::HmacSha1;
use proverguard_crypto::sha1::Sha1;
use proverguard_crypto::speck::Speck64_128;
use proverguard_crypto::BlockCipher;

fn bench_hash_and_hmac(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let mut group = c.benchmark_group("table1/hmac");
    for blocks in [1usize, 4, 16, 64] {
        let data = vec![0xa5u8; 64 * blocks];
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("hmac_sha1", blocks), &data, |b, data| {
            b.iter(|| black_box(HmacSha1::mac(&key, data)));
        });
    }
    group.bench_function("sha1_single_block", |b| {
        let data = [0u8; 64];
        b.iter(|| black_box(Sha1::digest(&data)));
    });
    group.finish();
}

fn bench_aes(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let mut group = c.benchmark_group("table1/aes128");
    group.bench_function("key_expansion", |b| {
        b.iter(|| black_box(Aes128::from_key(&key)));
    });
    let aes = Aes128::from_key(&key);
    group.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes.encrypt_block(black_box(&mut block)));
    });
    group.bench_function("decrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes.decrypt_block(black_box(&mut block)));
    });
    group.finish();
}

fn bench_speck(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let mut group = c.benchmark_group("table1/speck64_128");
    group.bench_function("key_expansion", |b| {
        b.iter(|| black_box(Speck64_128::from_key(&key)));
    });
    let speck = Speck64_128::from_key(&key);
    group.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 8];
        b.iter(|| speck.encrypt_block(black_box(&mut block)));
    });
    group.bench_function("decrypt_block", |b| {
        let mut block = [0u8; 8];
        b.iter(|| speck.decrypt_block(black_box(&mut block)));
    });
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let signing = SigningKey::from_seed(b"bench");
    let verifying = signing.verifying_key();
    let signature = signing.sign(b"attestation request");
    let mut group = c.benchmark_group("table1/ecdsa_secp160r1");
    group.sample_size(10);
    group.bench_function("sign", |b| {
        b.iter(|| black_box(signing.sign(b"attestation request")));
    });
    group.bench_function("verify", |b| {
        b.iter(|| black_box(verifying.verify(b"attestation request", &signature).is_ok()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_and_hmac,
    bench_aes,
    bench_speck,
    bench_ecdsa
);
criterion_main!(benches);
