//! Benchmarks the Figure 1b SW-clock runtime overhead (the cost Table 3
//! does not capture): servicing wrap-around interrupts and reading the
//! combined `Clock_MSB ‖ Clock_LSB` value, versus the dedicated hardware
//! clock's single MMIO read.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proverguard_attest::clock::{ClockKind, ProverClock, CLOCK_HANDLER_ADDR};
use proverguard_mcu::rtc::HwRtc;
use proverguard_mcu::timer::TIMER_WRAP_VECTOR;
use proverguard_mcu::{Mcu, CLOCK_HZ};

fn bench_clock_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1b/clock_read");

    group.bench_function("hw64_mmio_read", |b| {
        let mut mcu = Mcu::new();
        mcu.install_rtc(HwRtc::wide64());
        mcu.advance_idle(CLOCK_HZ);
        let clock = ProverClock::new(ClockKind::Hw64);
        b.iter(|| black_box(clock.now_ms(&mut mcu).expect("read")));
    });

    group.bench_function("sw_clock_combined_read", |b| {
        let mut mcu = Mcu::new();
        mcu.install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)
            .expect("idt");
        let mut clock = ProverClock::new(ClockKind::Software);
        mcu.advance_idle(CLOCK_HZ);
        clock.service_interrupts(&mut mcu).expect("service");
        b.iter(|| black_box(clock.now_ms(&mut mcu).expect("read")));
    });

    group.finish();
}

fn bench_interrupt_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1b/interrupt_service");
    // One second of device time = ~23 wraps with the default timer.
    for seconds in [1u64, 10, 60] {
        group.bench_with_input(
            BenchmarkId::new("pending_wraps", seconds),
            &seconds,
            |b, &seconds| {
                b.iter_batched(
                    || {
                        let mut mcu = Mcu::new();
                        mcu.install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)
                            .expect("idt");
                        mcu.advance_idle(seconds * CLOCK_HZ);
                        (mcu, ProverClock::new(ClockKind::Software))
                    },
                    |(mut mcu, mut clock)| {
                        black_box(clock.service_interrupts(&mut mcu).expect("service"))
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clock_reads, bench_interrupt_service);
criterion_main!(benches);
