//! Benchmarks §4.1 request authentication: the prover-side check for each
//! authenticator, on the host. The ablation behind the paper's choice of
//! symmetric MACs — and its rejection of ECDSA.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proverguard_attest::auth::{AuthMethod, RequestSigner};
use proverguard_crypto::mac::MacAlgorithm;

fn bench_request_check(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let message = b"attreq|v1|counter=00000042|challenge=0123456789abcdef";

    let mut group = c.benchmark_group("section4_1/request_check");
    for (label, method) in [
        ("speck64_cbc", AuthMethod::Mac(MacAlgorithm::Speck64Cbc)),
        ("aes128_cbc", AuthMethod::Mac(MacAlgorithm::Aes128Cbc)),
        ("hmac_sha1", AuthMethod::Mac(MacAlgorithm::HmacSha1)),
    ] {
        let signer = RequestSigner::new(method, &key).expect("signer");
        let checker = signer.checker().expect("checker");
        let auth = signer.sign(message);
        group.bench_function(label, |b| {
            b.iter(|| black_box(checker.check(message, &auth)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("section4_1/request_check_ecdsa");
    group.sample_size(10);
    let signer = RequestSigner::new(AuthMethod::Ecdsa, &key).expect("signer");
    let checker = signer.checker().expect("checker");
    let auth = signer.sign(message);
    group.bench_function("ecdsa_secp160r1", |b| {
        b.iter(|| black_box(checker.check(message, &auth)));
    });
    group.finish();
}

fn bench_request_sign(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let message = b"attreq|v1|counter=00000042|challenge=0123456789abcdef";
    let mut group = c.benchmark_group("section4_1/request_sign");
    for (label, method) in [
        ("speck64_cbc", AuthMethod::Mac(MacAlgorithm::Speck64Cbc)),
        ("hmac_sha1", AuthMethod::Mac(MacAlgorithm::HmacSha1)),
    ] {
        let signer = RequestSigner::new(method, &key).expect("signer");
        group.bench_function(label, |b| {
            b.iter(|| black_box(signer.sign(message)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_request_check, bench_request_sign);
criterion_main!(benches);
