//! Benchmarks the §3.1 DoS flood end to end: host cost of delivering a
//! batch of forgeries to provers at each defence level. (The *device*
//! cost — the number that matters for the paper's argument — is printed
//! by `cargo run -p proverguard-bench --bin dos_depletion`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use proverguard_adversary::dos::flood_with_forgeries;
use proverguard_attest::auth::AuthMethod;
use proverguard_attest::prover::ProverConfig;
use proverguard_crypto::mac::MacAlgorithm;

fn bench_floods(c: &mut Criterion) {
    let mut group = c.benchmark_group("dos/flood_of_10_forgeries");
    group.sample_size(10);

    group.bench_function("unprotected", |b| {
        b.iter(|| {
            black_box(flood_with_forgeries(ProverConfig::unprotected(), "open", 10).expect("flood"))
        });
    });

    group.bench_function("speck_auth", |b| {
        b.iter(|| {
            black_box(
                flood_with_forgeries(ProverConfig::recommended(), "speck", 10).expect("flood"),
            )
        });
    });

    group.bench_function("hmac_auth", |b| {
        let config = ProverConfig {
            auth: AuthMethod::Mac(MacAlgorithm::HmacSha1),
            ..ProverConfig::recommended()
        };
        b.iter(|| black_box(flood_with_forgeries(config.clone(), "hmac", 10).expect("flood")));
    });

    group.finish();
}

criterion_group!(benches, bench_floods);
criterion_main!(benches);
