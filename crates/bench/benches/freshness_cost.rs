//! Benchmarks §4.2 freshness policies: the O(n) nonce-history check the
//! paper rules out versus the O(1) counter/timestamp checks, as the
//! history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proverguard_attest::freshness::{FreshnessKind, FreshnessPolicy};
use proverguard_attest::message::FreshnessField;
use proverguard_mcu::Mcu;

fn bench_nonce_history_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("section4_2/nonce_history");
    for history in [100usize, 1_000, 10_000, 100_000] {
        // Pre-populate the history.
        let mut policy = FreshnessPolicy::new(FreshnessKind::NonceHistory);
        let mut mcu = Mcu::new();
        for i in 0..history {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&(i as u64).to_be_bytes());
            policy
                .check_and_update(&FreshnessField::Nonce(nonce), &mut mcu, None)
                .expect("fresh");
        }
        // The probe nonce is absent: worst-case full scan.
        let probe = FreshnessField::Nonce([0xff; 16]);
        group.bench_with_input(
            BenchmarkId::new("replay_scan", history),
            &history,
            |b, _| {
                b.iter_batched(
                    || policy.clone(),
                    |mut p| black_box(p.check_and_update(&probe, &mut mcu, None).is_ok()),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_constant_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("section4_2/constant_state");
    group.bench_function("counter_check", |b| {
        let mut policy = FreshnessPolicy::new(FreshnessKind::Counter);
        let mut mcu = Mcu::new();
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            black_box(
                policy
                    .check_and_update(&FreshnessField::Counter(counter), &mut mcu, None)
                    .is_ok(),
            )
        });
    });
    group.bench_function("timestamp_check", |b| {
        let mut policy = FreshnessPolicy::new(FreshnessKind::Timestamp);
        let mut mcu = Mcu::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(
                policy
                    .check_and_update(&FreshnessField::Timestamp(t), &mut mcu, Some(t))
                    .is_ok(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_nonce_history_growth, bench_constant_policies);
criterion_main!(benches);
