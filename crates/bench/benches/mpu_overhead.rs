//! Benchmarks the simulated EA-MPU itself: per-access check cost as the
//! rule count grows (the runtime analogue of Table 3's per-rule hardware
//! cost), plus bus and ISA-interpreter throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use proverguard_mcu::isa::{assemble_at, Cpu};
use proverguard_mcu::map::{self, AddrRange};
use proverguard_mcu::mpu::{AccessKind, EaMpu, Permissions, Rule};
use proverguard_mcu::Mcu;

fn bench_mpu_check_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpu/check_vs_rules");
    for rules in [0usize, 2, 4, 8, 16] {
        let mut mpu = EaMpu::new(rules.max(1));
        for i in 0..rules {
            let base = 0x1000 + (i as u32) * 0x100;
            mpu.add_rule(Rule::new(
                "r",
                AddrRange::new(base, base + 0x10),
                map::ATTEST_CODE,
                Permissions::READ_WRITE,
            ))
            .expect("capacity");
        }
        group.bench_with_input(BenchmarkId::new("uncovered_read", rules), &rules, |b, _| {
            b.iter(|| {
                black_box(
                    mpu.check(map::APP_CODE, 0x8000_0000, AccessKind::Read)
                        .is_ok(),
                )
            });
        });
        if rules > 0 {
            group.bench_with_input(BenchmarkId::new("covered_read", rules), &rules, |b, _| {
                b.iter(|| black_box(mpu.check(map::ATTEST_PC, 0x1000, AccessKind::Read).is_ok()));
            });
        }
    }
    group.finish();
}

fn bench_span_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpu/span_check");
    let mut mpu = EaMpu::new(8);
    mpu.add_rule(Rule::new(
        "counter_R",
        map::COUNTER_R,
        map::ATTEST_CODE,
        Permissions::READ_WRITE,
    ))
    .expect("capacity");
    // The whole-RAM span the attestation MAC performs.
    group.bench_function("whole_ram_512KiB", |b| {
        b.iter(|| {
            black_box(
                mpu.check_span(
                    map::ATTEST_PC,
                    map::RAM.start,
                    map::RAM.len(),
                    AccessKind::Read,
                )
                .is_ok(),
            )
        });
    });
    group.finish();
}

fn bench_bus_and_isa(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcu/throughput");

    group.bench_function("bus_write_64B", |b| {
        let mut mcu = Mcu::new();
        let data = [0xa5u8; 64];
        b.iter(|| mcu.bus_write(map::APP_RAM.start, black_box(&data), map::APP_CODE));
    });

    group.bench_function("isa_100_instruction_loop", |b| {
        let mut mcu = Mcu::new();
        let program = assemble_at(
            "ldi r1, 0
             ldi r2, 100
             loop: addi r1, r1, 1
             bne r1, r2, loop
             halt",
            map::FLASH.start,
        )
        .expect("assembles");
        mcu.program_flash(&program).expect("flash");
        b.iter(|| {
            let mut cpu = Cpu::new(map::FLASH.start);
            black_box(cpu.run(&mut mcu, 1000));
        });
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_mpu_check_scaling,
    bench_span_check,
    bench_bus_and_isa
);
criterion_main!(benches);
