//! Benchmarks the §3.1 whole-memory attestation MAC: HMAC throughput over
//! memory images from 4 KiB to the full 512 KiB RAM, plus the end-to-end
//! `handle_request` path on the simulated device.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;
use proverguard_crypto::hmac::HmacSha1;

fn bench_memory_mac(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let mut group = c.benchmark_group("section3_1/memory_mac");
    for kib in [4usize, 64, 256, 512] {
        let memory = vec![0x5au8; kib * 1024];
        group.throughput(Throughput::Bytes(memory.len() as u64));
        group.bench_with_input(BenchmarkId::new("hmac_sha1", kib), &memory, |b, memory| {
            b.iter(|| black_box(HmacSha1::mac(&key, memory)));
        });
    }
    group.finish();
}

fn bench_handle_request(c: &mut Criterion) {
    let key = [0x42u8; 16];
    let mut group = c.benchmark_group("section3_1/handle_request");
    group.sample_size(10);

    // Accepted requests pay the full memory MAC.
    group.bench_function("accepted_full_attestation", |b| {
        let config = ProverConfig::recommended();
        let mut prover = Prover::provision(config.clone(), &key, b"app").expect("provision");
        let mut verifier = Verifier::new(&config, &key).expect("verifier");
        b.iter(|| {
            let req = verifier.make_request().expect("request");
            black_box(prover.handle_request(&req).expect("accepted"));
        });
    });

    // Rejected forgeries stop after the cheap auth check.
    group.bench_function("rejected_forgery", |b| {
        let config = ProverConfig::recommended();
        let mut prover = Prover::provision(config.clone(), &key, b"app").expect("provision");
        let mut verifier = Verifier::new(&config, &key).expect("verifier");
        let mut forged = verifier.make_request().expect("request");
        forged.auth = vec![0; forged.auth.len()];
        b.iter(|| {
            black_box(prover.handle_request(&forged).is_err());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_memory_mac, bench_handle_request);
criterion_main!(benches);
