//! An offline, dependency-free subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member shadows the real `criterion` with the slice of its API our
//! benches use. It is a *smoke harness*, not a statistics engine: each
//! benchmark closure runs a handful of iterations, wall-clock timed with
//! [`std::time::Instant`], and prints one line per benchmark. That keeps
//! `cargo test` (which builds and runs `harness = false` bench binaries)
//! fast while still executing every bench body end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Iterations per measurement: enough to catch panics and gross
/// regressions, few enough that the full bench suite stays subsecond.
const ITERATIONS: u32 = 3;

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, None, f);
    }
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for compatibility; the shim always runs a fixed, small
    /// number of iterations.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Records the per-iteration workload for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &name.to_string(), self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.throughput, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Identifier for one parameter point of a benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id combining a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// How `iter_batched` amortises setup cost; the shim runs every batch
/// the same way regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
    iterations: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed_ns: 0,
            iterations: 0,
        }
    }

    /// Times `routine` over a fixed, small number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iterations += ITERATIONS;
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERATIONS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.iterations += ITERATIONS;
    }
}

fn run_one<F>(group: &str, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::new();
    f(&mut bencher);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let per_iter_ns = if bencher.iterations == 0 {
        0
    } else {
        bencher.elapsed_ns / u128::from(bencher.iterations)
    };
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            println!("bench {label}: {per_iter_ns} ns/iter ({bytes} bytes/iter)");
        }
        Some(Throughput::Elements(n)) => {
            println!("bench {label}: {per_iter_ns} ns/iter ({n} elements/iter)");
        }
        None => println!("bench {label}: {per_iter_ns} ns/iter"),
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group
            .throughput(Throughput::Bytes(64))
            .bench_function("f", |b| {
                b.iter(|| calls += 1);
            });
        group.finish();
        assert_eq!(calls, ITERATIONS);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("x", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| seen = v, BatchSize::SmallInput);
        });
        assert_eq!(seen, 7);
    }
}
