//! Deterministic case generation and the pass/fail/reject protocol.

use std::fmt;

/// Runtime configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) tolerated before the
    /// property gives up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failure with `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with `reason`.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value below `bound` (`bound = 0` yields the full range).
    pub fn below(&mut self, bound: u64) -> u64 {
        let v = self.next_u64();
        if bound == 0 {
            v
        } else {
            v % bound
        }
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case) << 32 | u64::from(case))
}

/// Drives one property: generates cases, skips rejections, panics with a
/// reproducible report on the first failure.
///
/// # Panics
///
/// Panics when the property fails for some generated case, or when too
/// many cases are rejected to reach the configured budget.
pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while accepted < config.cases {
        let mut rng = TestRng::new(seed_for(name, attempt));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property `{name}`: too many rejected cases \
                     ({rejected} rejects for {accepted} accepted)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` failed at case #{attempt} \
                     (deterministic seed {}):\n{message}",
                    seed_for(name, attempt - 1)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let (mut a, mut b) = (TestRng::new(42), TestRng::new(42));
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_counts_accepted_cases() {
        let mut n = 0;
        run("counter", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn run_panics_on_failure() {
        run("failing", &ProptestConfig::default(), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
