//! An offline, dependency-free subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! member shadows the real `proptest` with the slice of its API our test
//! suites use: the [`proptest!`] macro, [`strategy::Strategy`] values
//! built from ranges and [`arbitrary::any`], [`collection::vec`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Generation is **deterministic**: every test function derives its RNG
//! seed from the test's name and the case index, so failures reproduce
//! exactly across runs and machines (shrinking is not implemented — the
//! failing case is reported instead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares deterministic property tests.
///
/// Supports the common `proptest` surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     #[test]
///     fn my_property(x in 0u32..100, data in proptest::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current test case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: `{:?}`",
            format!($($fmt)+),
            __l
        );
    }};
}

/// Rejects (skips) the current test case unless `cond` holds; rejected
/// cases are regenerated and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
