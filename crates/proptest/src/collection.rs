//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with element strategy `S`; see [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing vectors whose length is drawn from `len` and
/// whose elements come from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_stay_in_range() {
        let strat = vec(any::<u8>(), 3..9);
        let mut rng = TestRng::new(99);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }
}
