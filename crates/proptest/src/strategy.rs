//! Value-generation strategies.

use std::ops::{Range, RangeFrom};

use crate::test_runner::TestRng;

/// A recipe for producing values of one type from a deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {:?}",
                        self
                    );
                    let span = (self.end as u128) - (self.start as u128);
                    let offset = (u128::from(rng.next_u64()) % span) as $ty;
                    self.start + offset
                }
            }

            impl Strategy for RangeFrom<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (<$ty>::MAX as u128) - (self.start as u128) + 1;
                    let offset = (u128::from(rng.next_u64()) % span) as $ty;
                    self.start + offset
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..256 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u64..).generate(&mut rng);
            assert!(w >= 1);
            let x = (0usize..1).generate(&mut rng);
            assert_eq!(x, 0);
        }
    }
}
