//! The [`any`] strategy: uniform values of a whole type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types that can be generated uniformly from random bits.
pub trait Arbitrary {
    /// Produces one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy generating any value of `T`; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing uniformly distributed values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_vary() {
        let mut rng = TestRng::new(1);
        let a: [u8; 16] = any().generate(&mut rng);
        let b: [u8; 16] = any().generate(&mut rng);
        assert_ne!(a, b);
    }
}
