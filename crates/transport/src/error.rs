//! Transport-layer errors.
//!
//! Everything a real link does to you — peers hanging up mid-frame, reads
//! that never complete, frames that lie about their length — surfaces
//! here as a value, never as a panic. The gateway's cheap-reject
//! guarantee extends down to this layer: a hostile byte stream costs the
//! receiver a header check, not an allocation.

use std::error::Error;
use std::fmt;
use std::io;

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer closed the connection (or the loopback hub shut down).
    Closed,
    /// The deadline expired before the operation completed.
    Timeout,
    /// A frame declared a length larger than the configured maximum. The
    /// declared length is rejected **before** any allocation.
    TooLarge {
        /// The length the frame header declared.
        declared: u64,
        /// The maximum this endpoint accepts.
        max: usize,
    },
    /// The bytes on the wire did not form a valid frame.
    Malformed {
        /// Explanation.
        reason: &'static str,
    },
    /// An OS-level I/O error (anything not mapped to the variants above).
    Io {
        /// The error kind.
        kind: io::ErrorKind,
        /// The error's display text.
        msg: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Timeout => write!(f, "operation timed out"),
            TransportError::TooLarge { declared, max } => {
                write!(f, "frame declares {declared} bytes, max is {max}")
            }
            TransportError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            TransportError::Io { kind, msg } => write!(f, "i/o error ({kind:?}): {msg}"),
        }
    }
}

impl Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe => TransportError::Closed,
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::Timeout,
            kind => TransportError::Io {
                kind,
                msg: e.to_string(),
            },
        }
    }
}

impl TransportError {
    /// `true` for errors a retry loop should treat as transient (the
    /// peer may still be there): timeouts only. `Closed`, `TooLarge`
    /// and `Malformed` all mean the conversation is over.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, TransportError::Timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_map_to_semantic_variants() {
        let closed: TransportError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert_eq!(closed, TransportError::Closed);
        let timeout: TransportError = io::Error::new(io::ErrorKind::WouldBlock, "wb").into();
        assert_eq!(timeout, TransportError::Timeout);
        let timeout: TransportError = io::Error::new(io::ErrorKind::TimedOut, "to").into();
        assert_eq!(timeout, TransportError::Timeout);
        let other: TransportError = io::Error::new(io::ErrorKind::PermissionDenied, "nope").into();
        assert!(matches!(other, TransportError::Io { .. }));
    }

    #[test]
    fn only_timeouts_are_transient() {
        assert!(TransportError::Timeout.is_transient());
        assert!(!TransportError::Closed.is_transient());
        assert!(!TransportError::TooLarge {
            declared: 10,
            max: 5
        }
        .is_transient());
        assert!(!TransportError::Malformed { reason: "x" }.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = TransportError::TooLarge {
            declared: 1 << 40,
            max: 65536,
        };
        assert!(e.to_string().contains("65536"));
    }
}
