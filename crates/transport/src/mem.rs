//! In-memory loopback transport.
//!
//! The same framed, blocking, deadline-bearing pipe as the socket
//! transports, built on `std::sync::mpsc` — so CI containers with no
//! network namespace, deterministic benches, and the adversary's fault
//! wrappers all run the *identical* stack from the codec up. Frames
//! travel whole (message semantics, like UDP) and still pass through
//! [`decode_datagram`](crate::frame::decode_datagram) on receive, so a
//! fault wrapper that truncates or bit-flips the framed bytes is caught
//! by the same codec checks a real wire would hit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use proverguard_reactor::Notifier;

use crate::error::TransportError;
use crate::frame::{decode_datagram, encode_frame};
use crate::nb::{NbTransport, ReadySource, SignalCell};
use crate::{Acceptor, LinkStats, Transport};

/// One end of an in-memory loopback link.
#[derive(Debug)]
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    deadline: Option<Duration>,
    max_frame: usize,
    stats: LinkStats,
    label: String,
    /// Pinged after every send (and on drop) so a non-blocking peer
    /// learns about readiness; inert while the peer runs blocking.
    peer_signal: Arc<SignalCell>,
    /// Where this end's own notifier is parked by `attach_notifier`.
    recv_signal: Arc<SignalCell>,
}

impl MemTransport {
    fn new(
        tx: Sender<Vec<u8>>,
        rx: Receiver<Vec<u8>>,
        max_frame: usize,
        label: String,
        peer_signal: Arc<SignalCell>,
        recv_signal: Arc<SignalCell>,
    ) -> Self {
        MemTransport {
            tx,
            rx,
            deadline: None,
            max_frame,
            stats: LinkStats::default(),
            label,
            peer_signal,
            recv_signal,
        }
    }

    /// Injects raw (unframed, unvalidated) bytes to the peer — the
    /// adversary's wire-level fuzzing hook. The peer's codec decides what
    /// to make of them.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the peer is gone.
    pub fn send_raw(&mut self, bytes: Vec<u8>) -> Result<(), TransportError> {
        let n = bytes.len();
        self.tx.send(bytes).map_err(|_| TransportError::Closed)?;
        self.peer_signal.ping();
        self.stats.note_sent(n);
        Ok(())
    }
}

impl Drop for MemTransport {
    fn drop(&mut self) {
        // Hangup notification: a non-blocking peer blocked on readiness
        // must wake to observe the disconnected channel.
        self.peer_signal.ping();
    }
}

impl Transport for MemTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.max_frame)?;
        let n = framed.len();
        self.tx.send(framed).map_err(|_| TransportError::Closed)?;
        self.peer_signal.ping();
        self.stats.note_sent(n);
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let framed = match self.deadline {
            Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout,
                RecvTimeoutError::Disconnected => TransportError::Closed,
            })?,
            None => self.rx.recv().map_err(|_| TransportError::Closed)?,
        };
        self.stats.note_received_bytes(framed.len());
        let payload = decode_datagram(&framed, self.max_frame)?;
        self.stats.note_received_frame();
        Ok(payload)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.deadline = deadline;
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.label.clone()
    }

    fn into_nb(self: Box<Self>) -> Result<Box<dyn NbTransport>, TransportError> {
        Ok(Box::new(NbMem { inner: *self }))
    }
}

/// The non-blocking form of [`MemTransport`]: readiness is notifier-based
/// (the peer pings on every send and on hangup), sends never block (the
/// channel is unbounded), so flush is trivially complete.
#[derive(Debug)]
pub struct NbMem {
    inner: MemTransport,
}

impl NbTransport for NbMem {
    fn ready_source(&self) -> ReadySource {
        ReadySource::Notify
    }

    fn attach_notifier(&mut self, notifier: Notifier) {
        self.inner.recv_signal.attach(notifier);
    }

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        match self.inner.rx.try_recv() {
            Ok(framed) => {
                self.inner.stats.note_received_bytes(framed.len());
                let payload = decode_datagram(&framed, self.inner.max_frame)?;
                self.inner.stats.note_received_frame();
                Ok(Some(payload))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn enqueue_send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.inner.send(payload)
    }

    fn flush(&mut self) -> Result<bool, TransportError> {
        Ok(true)
    }

    fn has_pending_write(&self) -> bool {
        false
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats
    }

    fn peer(&self) -> String {
        self.inner.label.clone()
    }
}

/// A connected pair of loopback transports.
#[must_use]
pub fn loopback_pair(max_frame: usize) -> (MemTransport, MemTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    let a_signal = Arc::new(SignalCell::new());
    let b_signal = Arc::new(SignalCell::new());
    (
        MemTransport::new(
            a_tx,
            a_rx,
            max_frame,
            "loopback:a".to_string(),
            Arc::clone(&b_signal),
            a_signal.clone(),
        ),
        MemTransport::new(
            b_tx,
            b_rx,
            max_frame,
            "loopback:b".to_string(),
            a_signal,
            b_signal,
        ),
    )
}

/// The dialing side of a [`LoopbackHub`]. Cloneable: every prover thread
/// in a bench holds one.
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    conn_tx: Sender<MemTransport>,
    closed: Arc<AtomicBool>,
    next_id: Arc<AtomicU64>,
    max_frame: usize,
}

impl LoopbackConnector {
    /// Opens a new connection to the hub, returning the client end.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the hub has shut down.
    pub fn connect(&self) -> Result<MemTransport, TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (client_tx, server_rx) = channel();
        let (server_tx, client_rx) = channel();
        let server_signal = Arc::new(SignalCell::new());
        let client_signal = Arc::new(SignalCell::new());
        let server = MemTransport::new(
            server_tx,
            server_rx,
            self.max_frame,
            format!("loopback#{id}"),
            Arc::clone(&client_signal),
            server_signal.clone(),
        );
        let client = MemTransport::new(
            client_tx,
            client_rx,
            self.max_frame,
            format!("gateway#{id}"),
            server_signal,
            client_signal,
        );
        self.conn_tx
            .send(server)
            .map_err(|_| TransportError::Closed)?;
        Ok(client)
    }
}

/// The listening side of the in-memory stack: connections queued by
/// [`LoopbackConnector::connect`] come out of [`Acceptor::poll_accept`]
/// exactly like TCP accepts would.
#[derive(Debug)]
pub struct LoopbackHub {
    conn_rx: Receiver<MemTransport>,
    closed: Arc<AtomicBool>,
}

impl LoopbackHub {
    /// A hub plus its (cloneable) connector.
    #[must_use]
    pub fn new(max_frame: usize) -> (Self, LoopbackConnector) {
        let (conn_tx, conn_rx) = channel();
        let closed = Arc::new(AtomicBool::new(false));
        (
            LoopbackHub {
                conn_rx,
                closed: Arc::clone(&closed),
            },
            LoopbackConnector {
                conn_tx,
                closed,
                next_id: Arc::new(AtomicU64::new(0)),
                max_frame,
            },
        )
    }

    /// Marks the hub closed: subsequent `connect` calls fail with
    /// [`TransportError::Closed`]. Connections already queued are still
    /// drained by `poll_accept`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }
}

impl Acceptor for LoopbackHub {
    fn poll_accept(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Box<dyn Transport>>, TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            // Drain what's queued, then report closed.
            return match self.conn_rx.try_recv() {
                Ok(t) => Ok(Some(Box::new(t))),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                    Err(TransportError::Closed)
                }
            };
        }
        match self.conn_rx.recv_timeout(timeout) {
            Ok(t) => Ok(Some(Box::new(t))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn local_label(&self) -> String {
        "loopback-hub".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DEFAULT_MAX_FRAME;

    #[test]
    fn pair_roundtrip() {
        let (mut a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        a.send(b"x").unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(b.recv().unwrap(), b"x");
    }

    #[test]
    fn recv_timeout_and_closed() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        b.set_deadline(Some(Duration::from_millis(10))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::Timeout));
        drop(a);
        assert_eq!(b.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn raw_injection_hits_the_codec() {
        let (mut a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        a.send_raw(vec![0xff, 0xff]).unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert!(matches!(b.recv(), Err(TransportError::Malformed { .. })));
    }

    #[test]
    fn hub_accepts_connections_in_order() {
        let (mut hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut c1 = connector.connect().unwrap();
        let _c2 = connector.connect().unwrap();
        c1.send(b"first").unwrap();
        let mut s1 = hub
            .poll_accept(Duration::from_secs(1))
            .unwrap()
            .expect("first connection");
        s1.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(s1.recv().unwrap(), b"first");
        assert!(hub.poll_accept(Duration::from_secs(1)).unwrap().is_some());
        assert!(hub
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_none());
    }

    #[test]
    fn nb_notify_roundtrip_and_hangup() {
        use proverguard_reactor::{Events, Poller, Token};

        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut poller = Poller::new().unwrap();
        let mut nb = (Box::new(a) as Box<dyn Transport>).into_nb().unwrap();
        assert_eq!(nb.ready_source(), ReadySource::Notify);
        nb.attach_notifier(poller.notifier(Token(1)).unwrap());

        b.send(b"hi").unwrap();
        let mut events = Events::default();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty(), "send must ping the notifier");
        assert_eq!(nb.try_recv().unwrap().unwrap(), b"hi");
        assert_eq!(nb.try_recv().unwrap(), None);
        assert!(nb.flush().unwrap());

        drop(b);
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty(), "drop must ping the notifier");
        assert_eq!(nb.try_recv(), Err(TransportError::Closed));
    }

    #[test]
    fn closed_hub_rejects_new_connections_but_drains_queued() {
        let (mut hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let _queued = connector.connect().unwrap();
        hub.close();
        assert!(connector.connect().is_err());
        // The queued connection still comes out …
        assert!(hub
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_some());
        // … then the hub reports closed.
        assert_eq!(
            hub.poll_accept(Duration::from_millis(10)).err(),
            Some(TransportError::Closed)
        );
    }
}
