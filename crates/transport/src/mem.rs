//! In-memory loopback transport.
//!
//! The same framed, blocking, deadline-bearing pipe as the socket
//! transports, built on `std::sync::mpsc` — so CI containers with no
//! network namespace, deterministic benches, and the adversary's fault
//! wrappers all run the *identical* stack from the codec up. Frames
//! travel whole (message semantics, like UDP) and still pass through
//! [`decode_datagram`](crate::frame::decode_datagram) on receive, so a
//! fault wrapper that truncates or bit-flips the framed bytes is caught
//! by the same codec checks a real wire would hit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use crate::error::TransportError;
use crate::frame::{decode_datagram, encode_frame};
use crate::{Acceptor, LinkStats, Transport};

/// One end of an in-memory loopback link.
#[derive(Debug)]
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    deadline: Option<Duration>,
    max_frame: usize,
    stats: LinkStats,
    label: String,
}

impl MemTransport {
    fn new(tx: Sender<Vec<u8>>, rx: Receiver<Vec<u8>>, max_frame: usize, label: String) -> Self {
        MemTransport {
            tx,
            rx,
            deadline: None,
            max_frame,
            stats: LinkStats::default(),
            label,
        }
    }

    /// Injects raw (unframed, unvalidated) bytes to the peer — the
    /// adversary's wire-level fuzzing hook. The peer's codec decides what
    /// to make of them.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when the peer is gone.
    pub fn send_raw(&mut self, bytes: Vec<u8>) -> Result<(), TransportError> {
        let n = bytes.len();
        self.tx.send(bytes).map_err(|_| TransportError::Closed)?;
        self.stats.note_sent(n);
        Ok(())
    }
}

impl Transport for MemTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.max_frame)?;
        let n = framed.len();
        self.tx.send(framed).map_err(|_| TransportError::Closed)?;
        self.stats.note_sent(n);
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let framed = match self.deadline {
            Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::Timeout,
                RecvTimeoutError::Disconnected => TransportError::Closed,
            })?,
            None => self.rx.recv().map_err(|_| TransportError::Closed)?,
        };
        self.stats.note_received_bytes(framed.len());
        let payload = decode_datagram(&framed, self.max_frame)?;
        self.stats.note_received_frame();
        Ok(payload)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.deadline = deadline;
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

/// A connected pair of loopback transports.
#[must_use]
pub fn loopback_pair(max_frame: usize) -> (MemTransport, MemTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        MemTransport::new(a_tx, a_rx, max_frame, "loopback:a".to_string()),
        MemTransport::new(b_tx, b_rx, max_frame, "loopback:b".to_string()),
    )
}

/// The dialing side of a [`LoopbackHub`]. Cloneable: every prover thread
/// in a bench holds one.
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    conn_tx: Sender<MemTransport>,
    closed: Arc<AtomicBool>,
    next_id: Arc<AtomicU64>,
    max_frame: usize,
}

impl LoopbackConnector {
    /// Opens a new connection to the hub, returning the client end.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the hub has shut down.
    pub fn connect(&self) -> Result<MemTransport, TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let (client_tx, server_rx) = channel();
        let (server_tx, client_rx) = channel();
        let server = MemTransport::new(
            server_tx,
            server_rx,
            self.max_frame,
            format!("loopback#{id}"),
        );
        let client = MemTransport::new(
            client_tx,
            client_rx,
            self.max_frame,
            format!("gateway#{id}"),
        );
        self.conn_tx
            .send(server)
            .map_err(|_| TransportError::Closed)?;
        Ok(client)
    }
}

/// The listening side of the in-memory stack: connections queued by
/// [`LoopbackConnector::connect`] come out of [`Acceptor::poll_accept`]
/// exactly like TCP accepts would.
#[derive(Debug)]
pub struct LoopbackHub {
    conn_rx: Receiver<MemTransport>,
    closed: Arc<AtomicBool>,
}

impl LoopbackHub {
    /// A hub plus its (cloneable) connector.
    #[must_use]
    pub fn new(max_frame: usize) -> (Self, LoopbackConnector) {
        let (conn_tx, conn_rx) = channel();
        let closed = Arc::new(AtomicBool::new(false));
        (
            LoopbackHub {
                conn_rx,
                closed: Arc::clone(&closed),
            },
            LoopbackConnector {
                conn_tx,
                closed,
                next_id: Arc::new(AtomicU64::new(0)),
                max_frame,
            },
        )
    }

    /// Marks the hub closed: subsequent `connect` calls fail with
    /// [`TransportError::Closed`]. Connections already queued are still
    /// drained by `poll_accept`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }
}

impl Acceptor for LoopbackHub {
    fn poll_accept(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Box<dyn Transport>>, TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            // Drain what's queued, then report closed.
            return match self.conn_rx.try_recv() {
                Ok(t) => Ok(Some(Box::new(t))),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => {
                    Err(TransportError::Closed)
                }
            };
        }
        match self.conn_rx.recv_timeout(timeout) {
            Ok(t) => Ok(Some(Box::new(t))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn local_label(&self) -> String {
        "loopback-hub".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DEFAULT_MAX_FRAME;

    #[test]
    fn pair_roundtrip() {
        let (mut a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        a.send(b"x").unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(b.recv().unwrap(), b"x");
    }

    #[test]
    fn recv_timeout_and_closed() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        b.set_deadline(Some(Duration::from_millis(10))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::Timeout));
        drop(a);
        assert_eq!(b.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn raw_injection_hits_the_codec() {
        let (mut a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        a.send_raw(vec![0xff, 0xff]).unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert!(matches!(b.recv(), Err(TransportError::Malformed { .. })));
    }

    #[test]
    fn hub_accepts_connections_in_order() {
        let (mut hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut c1 = connector.connect().unwrap();
        let _c2 = connector.connect().unwrap();
        c1.send(b"first").unwrap();
        let mut s1 = hub
            .poll_accept(Duration::from_secs(1))
            .unwrap()
            .expect("first connection");
        s1.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(s1.recv().unwrap(), b"first");
        assert!(hub.poll_accept(Duration::from_secs(1)).unwrap().is_some());
        assert!(hub
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_none());
    }

    #[test]
    fn closed_hub_rejects_new_connections_but_drains_queued() {
        let (mut hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let _queued = connector.connect().unwrap();
        hub.close();
        assert!(connector.connect().is_err());
        // The queued connection still comes out …
        assert!(hub
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_some());
        // … then the hub reports closed.
        assert_eq!(
            hub.poll_accept(Duration::from_millis(10)).err(),
            Some(TransportError::Closed)
        );
    }
}
