//! Wire transport for the ProverGuard fleet.
//!
//! Every earlier layer of the reproduction talked through in-process
//! function calls; this crate is the real byte stream those layers were
//! pretending to have. It provides:
//!
//! - [`frame`] — length-prefixed framing with a hard pre-allocation
//!   length cap (the codec-level cheap reject);
//! - [`Transport`] — a blocking framed-message pipe, implemented three
//!   ways:
//!   - [`tcp::TcpTransport`] over `std::net` TCP (partial reads, slow
//!     peers, connection churn — the production-shaped path),
//!   - [`udp::UdpTransport`] — one datagram per frame,
//!   - [`mem::MemTransport`] — an in-memory loopback with the same
//!     blocking/deadline semantics, so CI and deterministic benches run
//!     the identical stack without touching a socket;
//! - [`Acceptor`] — the listening side, implemented by
//!   [`tcp::TcpAcceptor`] and [`mem::LoopbackHub`], which is what the
//!   verifier gateway in `proverguard-attest` serves connections from.
//!
//! Fault schedules from `proverguard-adversary` compose with any
//! [`Transport`] through that crate's `wire::FaultyTransport` wrapper, so
//! the drop/delay/truncate/bit-flip matrices the in-process stack was
//! graded against apply unchanged to the socketed stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frame;
pub mod mem;
pub mod nb;
pub mod tcp;
pub mod udp;

pub use error::TransportError;
pub use frame::{decode_datagram, encode_frame, FrameDecoder, DEFAULT_MAX_FRAME};
pub use mem::{loopback_pair, LoopbackConnector, LoopbackHub, MemTransport};
pub use nb::{NbTransport, ReadySource};
pub use tcp::{TcpAcceptor, TcpTransport};
pub use udp::{udp_pair, UdpTransport};

use std::time::Duration;

/// Byte/frame counters one endpoint has seen. All counts are from this
/// endpoint's perspective and include framing overhead for the byte
/// totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Bytes received (framed).
    pub bytes_in: u64,
    /// Bytes sent (framed).
    pub bytes_out: u64,
    /// Complete frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
}

impl LinkStats {
    pub(crate) fn note_sent(&mut self, framed_len: usize) {
        self.bytes_out = self.bytes_out.saturating_add(framed_len as u64);
        self.frames_out = self.frames_out.saturating_add(1);
        proverguard_telemetry::metrics::counter_add("transport.bytes_out", framed_len as u64);
        proverguard_telemetry::metrics::counter_add("transport.frames_out", 1);
    }

    pub(crate) fn note_received_bytes(&mut self, n: usize) {
        self.bytes_in = self.bytes_in.saturating_add(n as u64);
        proverguard_telemetry::metrics::counter_add("transport.bytes_in", n as u64);
    }

    pub(crate) fn note_received_frame(&mut self) {
        self.frames_in = self.frames_in.saturating_add(1);
        proverguard_telemetry::metrics::counter_add("transport.frames_in", 1);
    }
}

/// A blocking, framed, bidirectional message pipe.
///
/// Implementations are `Send` so a connection can be handed from an
/// accept loop to a worker thread. One transport belongs to one thread at
/// a time; none of them are `Sync`.
pub trait Transport: Send {
    /// Sends one framed message.
    ///
    /// # Errors
    ///
    /// [`TransportError::TooLarge`] for oversized payloads,
    /// [`TransportError::Closed`] / [`TransportError::Timeout`] /
    /// [`TransportError::Io`] for link failures.
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Receives the next framed message, blocking up to the configured
    /// deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when the deadline expires,
    /// [`TransportError::Closed`] when the peer hung up,
    /// [`TransportError::Malformed`] / [`TransportError::TooLarge`] when
    /// the stream is not a valid frame sequence.
    fn recv(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Sets the per-operation deadline for subsequent `recv` (and, where
    /// the OS supports it, `send`) calls. `None` blocks forever.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the OS rejects the timeout.
    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError>;

    /// Byte/frame counters for this endpoint.
    fn stats(&self) -> LinkStats;

    /// A human-readable peer label for logs (`127.0.0.1:4242`,
    /// `loopback#3`, …).
    fn peer(&self) -> String;

    /// Converts this transport into its non-blocking form for the
    /// event-driven gateway. Buffered but undecoded bytes carry over, so
    /// the handoff is safe mid-stream.
    ///
    /// # Errors
    ///
    /// A structured `Unsupported` [`TransportError::Io`] for transports
    /// without a readiness story (the default — TCP and loopback
    /// override it).
    fn into_nb(self: Box<Self>) -> Result<Box<dyn nb::NbTransport>, TransportError> {
        let what = self.peer();
        Err(nb::unsupported_nb(&what))
    }
}

/// The listening half: yields accepted connections as boxed transports.
pub trait Acceptor: Send {
    /// Waits up to `timeout` for one inbound connection. `Ok(None)` means
    /// the timeout elapsed with nothing to accept — the caller's chance
    /// to check its shutdown flag and call again.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the listener is shut down.
    fn poll_accept(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Box<dyn Transport>>, TransportError>;

    /// A label for the listening endpoint.
    fn local_label(&self) -> String;
}
