//! Non-blocking transport adapters for the readiness reactor.
//!
//! The blocking [`Transport`](crate::Transport) API parks one OS thread
//! per connection; the event-driven gateway instead owns thousands of
//! connections per shard and needs each one to answer two questions
//! without blocking: *how do I know you might be ready?* and *give me
//! whatever you have right now*. [`NbTransport`] is that contract:
//!
//! - [`NbTransport::ready_source`] says how readiness is observed —
//!   [`ReadySource::Fd`] for real sockets (register with the reactor's
//!   selector) or [`ReadySource::Notify`] for in-memory channels (attach
//!   a [`Notifier`] via [`NbTransport::attach_notifier`]; the peer pings
//!   it on every send and on hangup);
//! - [`NbTransport::try_recv`] feeds the incremental
//!   [`FrameDecoder`](crate::frame::FrameDecoder) from whatever the
//!   source has and returns at most one frame, `None` meaning "would
//!   block" — callers must drain until `None` on every readiness event,
//!   because decoded-but-unreturned frames are invisible to the
//!   selector;
//! - [`NbTransport::enqueue_send`] / [`NbTransport::flush`] buffer
//!   writes the kernel will not take yet, so a slow reader costs memory
//!   (bounded by the caller's discipline) instead of a blocked thread.
//!
//! Conversion is [`Transport::into_nb`](crate::Transport::into_nb):
//! implemented by the TCP and loopback transports, a structured
//! "unsupported" error everywhere else (UDP's datagram model has no
//! byte-stream readiness story worth faking).

use std::fmt;
use std::sync::Mutex;

use proverguard_reactor::Notifier;

use crate::error::TransportError;
use crate::LinkStats;

/// Raw fd alias re-exported so gateway code does not reach into `std::os`
/// paths directly.
pub type RawFd = i32;

/// How a non-blocking transport's readiness is observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadySource {
    /// Register this descriptor with the reactor's fd selector.
    Fd(RawFd),
    /// No descriptor: attach a [`Notifier`] with
    /// [`NbTransport::attach_notifier`] and the peer will ping it.
    Notify,
}

/// A framed transport driven by readiness instead of blocking calls.
///
/// All methods are non-blocking. `try_recv` returning `Ok(None)` and
/// `flush` returning `Ok(false)` are the two "would block" signals; the
/// caller re-arms interest and waits for the reactor.
pub trait NbTransport: Send {
    /// How to observe readiness for this transport.
    fn ready_source(&self) -> ReadySource;

    /// Installs the notifier for a [`ReadySource::Notify`] transport.
    ///
    /// The transport notifies it immediately (data or hangup may predate
    /// the attach) and thereafter whenever the peer sends or drops. A
    /// no-op for fd-backed transports.
    fn attach_notifier(&mut self, notifier: Notifier);

    /// Returns the next complete frame if one can be produced without
    /// blocking; `Ok(None)` means the source is drained for now.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] on hangup,
    /// [`TransportError::Malformed`] / [`TransportError::TooLarge`] on
    /// codec violations (the connection should be dropped), and
    /// [`TransportError::Io`] for other OS failures.
    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Frames `payload` and writes as much as the sink takes right now,
    /// buffering the rest for [`NbTransport::flush`].
    ///
    /// # Errors
    ///
    /// [`TransportError::TooLarge`] for oversized payloads, plus the
    /// same link failures as `try_recv`.
    fn enqueue_send(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Pushes buffered write bytes; `Ok(true)` when nothing remains
    /// pending, `Ok(false)` when the sink would block (register write
    /// interest and retry on the next writable event).
    ///
    /// # Errors
    ///
    /// Link failures as in `try_recv`.
    fn flush(&mut self) -> Result<bool, TransportError>;

    /// True while flushing still has buffered bytes to move.
    fn has_pending_write(&self) -> bool;

    /// Byte/frame counters for this endpoint (continues the counts from
    /// the blocking phase of the connection's life).
    fn stats(&self) -> LinkStats;

    /// Peer label for logs.
    fn peer(&self) -> String;
}

/// A rendezvous point between a non-fd event source and the reactor: the
/// consumer parks a [`Notifier`] here, producers [`SignalCell::ping`] it.
///
/// Pings before a notifier is attached are absorbed by the attach-time
/// notify (see [`NbTransport::attach_notifier`]), so no event is lost
/// across the blocking→non-blocking handoff.
#[derive(Default)]
pub struct SignalCell {
    notifier: Mutex<Option<Notifier>>,
}

impl SignalCell {
    /// An empty cell.
    #[must_use]
    pub fn new() -> SignalCell {
        SignalCell::default()
    }

    /// Wakes the attached notifier, if any.
    pub fn ping(&self) {
        if let Some(n) = &*self.notifier.lock().expect("signal cell poisoned") {
            n.notify();
        }
    }

    /// Attaches `notifier` and immediately notifies it once, covering
    /// anything that happened before the attach.
    pub fn attach(&self, notifier: Notifier) {
        notifier.notify();
        *self.notifier.lock().expect("signal cell poisoned") = Some(notifier);
    }
}

impl fmt::Debug for SignalCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SignalCell")
    }
}

/// The error non-blocking conversion returns for transports without a
/// readiness story (UDP, adversarial wrappers).
#[must_use]
pub fn unsupported_nb(what: &str) -> TransportError {
    TransportError::Io {
        kind: std::io::ErrorKind::Unsupported,
        msg: format!("{what} has no non-blocking mode"),
    }
}
