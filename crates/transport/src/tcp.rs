//! TCP transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! This is the production-shaped path: partial reads, coalesced writes,
//! slow peers and connection churn all happen here for real. The
//! [`FrameDecoder`](crate::frame::FrameDecoder) underneath reassembles
//! frames from whatever the kernel hands us, so a peer dribbling one byte
//! per segment and a peer batching ten frames per segment both work.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::TransportError;
use crate::frame::{encode_frame, FrameDecoder, DEFAULT_MAX_FRAME};
use crate::{Acceptor, LinkStats, Transport};

/// How much to ask the kernel for per read.
const READ_CHUNK: usize = 4096;

/// A framed TCP connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    stats: LinkStats,
    peer: String,
}

impl TcpTransport {
    /// Wraps an established stream with the default frame cap.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if socket options cannot be applied.
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        Self::with_max_frame(stream, DEFAULT_MAX_FRAME)
    }

    /// Wraps an established stream accepting payloads up to `max_frame`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if socket options cannot be applied.
    pub fn with_max_frame(stream: TcpStream, max_frame: usize) -> Result<Self, TransportError> {
        // Attestation exchanges are request/response; Nagle only adds
        // latency here.
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "tcp:unknown".to_string(), |a| a.to_string());
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(max_frame),
            stats: LinkStats::default(),
            peer,
        })
    }

    /// Connects to `addr` and wraps the stream.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.decoder.max_frame_len())?;
        self.stream.write_all(&framed)?;
        self.stats.note_sent(framed.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                self.stats.note_received_frame();
                return Ok(frame);
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(TransportError::Closed);
            }
            self.stats.note_received_bytes(n);
            self.decoder.extend(&chunk[..n]);
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)?;
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// The listening side: a non-blocking `TcpListener` polled with a small
/// sleep, so the accept loop can observe a shutdown flag between polls
/// without a wake-up socket.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
    max_frame: usize,
    local: SocketAddr,
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        Self::bind_with_max_frame(addr, DEFAULT_MAX_FRAME)
    }

    /// Binds `addr` with a custom per-connection frame cap.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind failure.
    pub fn bind_with_max_frame(
        addr: impl ToSocketAddrs,
        max_frame: usize,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(TcpAcceptor {
            listener,
            max_frame,
            local,
        })
    }

    /// The bound address (for clients when port 0 was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }
}

impl Acceptor for TcpAcceptor {
    fn poll_accept(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Box<dyn Transport>>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let t = TcpTransport::with_max_frame(stream, self.max_frame)?;
                    return Ok(Some(Box::new(t)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn local_label(&self) -> String {
        self.local.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server).unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn roundtrip_over_localhost() {
        let (mut server, mut client) = pair();
        client.send(b"ping").unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
        assert_eq!(client.stats().frames_out, 1);
        assert_eq!(client.stats().frames_in, 1);
        assert!(client.stats().bytes_out >= 4);
    }

    #[test]
    fn recv_times_out_on_silent_peer() {
        let (mut server, _client) = pair();
        server
            .set_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(server.recv(), Err(TransportError::Timeout));
    }

    #[test]
    fn recv_reports_closed_on_hangup() {
        let (mut server, client) = pair();
        drop(client);
        server
            .set_deadline(Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(server.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn garbage_stream_is_malformed_not_panic() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream).unwrap();
        server
            .set_deadline(Some(Duration::from_millis(500)))
            .unwrap();
        assert!(matches!(
            server.recv(),
            Err(TransportError::Malformed { .. })
        ));
        writer.join().unwrap();
    }

    #[test]
    fn acceptor_polls_and_accepts() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        // Nothing to accept: poll returns None after the timeout.
        assert!(acceptor
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_none());
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut c = TcpTransport::connect(addr).unwrap();
            c.send(b"hi").unwrap();
        });
        let mut conn = acceptor
            .poll_accept(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(conn.recv().unwrap(), b"hi");
        client.join().unwrap();
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let (mut server, _client) = pair();
        let mut small =
            TcpTransport::with_max_frame(server.stream.try_clone().unwrap(), 8).unwrap();
        assert!(matches!(
            small.send(&[0u8; 9]),
            Err(TransportError::TooLarge { .. })
        ));
        let _ = &mut server;
    }
}
