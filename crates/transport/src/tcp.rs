//! TCP transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! This is the production-shaped path: partial reads, coalesced writes,
//! slow peers and connection churn all happen here for real. The
//! [`FrameDecoder`](crate::frame::FrameDecoder) underneath reassembles
//! frames from whatever the kernel hands us, so a peer dribbling one byte
//! per segment and a peer batching ten frames per segment both work.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use proverguard_reactor::{Events, Interest, Notifier, Poller, Token};

use crate::error::TransportError;
use crate::frame::{encode_frame, FrameDecoder, DEFAULT_MAX_FRAME};
use crate::nb::{NbTransport, ReadySource};
use crate::{Acceptor, LinkStats, Transport};

/// How much to ask the kernel for per read.
const READ_CHUNK: usize = 4096;

/// Default interval of the acceptor's sleep-poll fallback (the historic
/// hard-coded value, now configurable via
/// [`TcpAcceptor::set_accept_backoff`]).
pub const DEFAULT_ACCEPT_BACKOFF: Duration = Duration::from_millis(1);

/// A framed TCP connection.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    stats: LinkStats,
    peer: String,
}

impl TcpTransport {
    /// Wraps an established stream with the default frame cap.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if socket options cannot be applied.
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        Self::with_max_frame(stream, DEFAULT_MAX_FRAME)
    }

    /// Wraps an established stream accepting payloads up to `max_frame`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if socket options cannot be applied.
    pub fn with_max_frame(stream: TcpStream, max_frame: usize) -> Result<Self, TransportError> {
        // Attestation exchanges are request/response; Nagle only adds
        // latency here.
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "tcp:unknown".to_string(), |a| a.to_string());
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(max_frame),
            stats: LinkStats::default(),
            peer,
        })
    }

    /// Connects to `addr` and wraps the stream.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.decoder.max_frame_len())?;
        self.stream.write_all(&framed)?;
        self.stats.note_sent(framed.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                self.stats.note_received_frame();
                return Ok(frame);
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(TransportError::Closed);
            }
            self.stats.note_received_bytes(n);
            self.decoder.extend(&chunk[..n]);
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)?;
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn into_nb(self: Box<Self>) -> Result<Box<dyn NbTransport>, TransportError> {
        self.stream.set_nonblocking(true)?;
        Ok(Box::new(NbTcp {
            fd: self.stream.as_raw_fd(),
            stream: self.stream,
            decoder: self.decoder,
            stats: self.stats,
            peer: self.peer,
            pending: Vec::new(),
            pending_off: 0,
        }))
    }
}

/// The non-blocking form of [`TcpTransport`]: readiness comes from the
/// socket fd, writes that would block are buffered for
/// [`NbTransport::flush`].
#[derive(Debug)]
pub struct NbTcp {
    stream: TcpStream,
    fd: i32,
    decoder: FrameDecoder,
    stats: LinkStats,
    peer: String,
    pending: Vec<u8>,
    pending_off: usize,
}

impl NbTransport for NbTcp {
    fn ready_source(&self) -> ReadySource {
        ReadySource::Fd(self.fd)
    }

    fn attach_notifier(&mut self, _notifier: Notifier) {}

    fn try_recv(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                self.stats.note_received_frame();
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => {
                    self.stats.note_received_bytes(n);
                    self.decoder.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn enqueue_send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.decoder.max_frame_len())?;
        self.stats.note_sent(framed.len());
        self.pending.extend_from_slice(&framed);
        self.flush().map(|_| ())
    }

    fn flush(&mut self) -> Result<bool, TransportError> {
        while self.pending_off < self.pending.len() {
            match self.stream.write(&self.pending[self.pending_off..]) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.pending_off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.pending.clear();
        self.pending_off = 0;
        Ok(true)
    }

    fn has_pending_write(&self) -> bool {
        self.pending_off < self.pending.len()
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// The listening side: a non-blocking `TcpListener` waited on through a
/// reactor [`Poller`] when one is available, with the original
/// sleep-poll loop kept as the portable fallback (its interval is now
/// configurable instead of hard-coded).
pub struct TcpAcceptor {
    listener: TcpListener,
    max_frame: usize,
    local: SocketAddr,
    /// Reactor-backed readiness for the listener fd; `None` runs the
    /// sleep-poll fallback.
    poller: Option<(Poller, Events)>,
    backoff: Duration,
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind failure.
    pub fn bind(addr: impl ToSocketAddrs) -> Result<Self, TransportError> {
        Self::bind_with_max_frame(addr, DEFAULT_MAX_FRAME)
    }

    /// Binds `addr` with a custom per-connection frame cap.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind failure.
    pub fn bind_with_max_frame(
        addr: impl ToSocketAddrs,
        max_frame: usize,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        // Best effort: a reactor failure (fd limits, exotic platforms)
        // degrades to the sleep-poll loop instead of failing the bind.
        let poller = Poller::new().ok().and_then(|mut p| {
            p.register(listener.as_raw_fd(), Token(0), Interest::READABLE)
                .ok()
                .map(|()| (p, Events::with_capacity(4)))
        });
        Ok(TcpAcceptor {
            listener,
            max_frame,
            local,
            poller,
            backoff: DEFAULT_ACCEPT_BACKOFF,
        })
    }

    /// The bound address (for clients when port 0 was requested).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Sets the sleep interval of the fallback poll loop (ignored while
    /// the reactor path is active). Zero is clamped to 1 ms.
    pub fn set_accept_backoff(&mut self, backoff: Duration) {
        self.backoff = backoff.max(Duration::from_millis(1));
    }

    /// Forces the sleep-poll fallback path (used by tests and by
    /// deployments that want the reactor kept out of the accept path).
    pub fn disable_reactor(&mut self) {
        self.poller = None;
    }

    /// True when accepts are reactor-driven rather than sleep-polled.
    #[must_use]
    pub fn reactor_active(&self) -> bool {
        self.poller.is_some()
    }
}

impl Acceptor for TcpAcceptor {
    fn poll_accept(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<Box<dyn Transport>>, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let t = TcpTransport::with_max_frame(stream, self.max_frame)?;
                    return Ok(Some(Box::new(t)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(None);
                    }
                    match &mut self.poller {
                        Some((poller, events)) => {
                            // Block until the listener is actually
                            // readable (or the deadline passes) instead
                            // of burning sleep/accept cycles.
                            poller.poll(events, Some(deadline - now))?;
                        }
                        None => std::thread::sleep(self.backoff.min(deadline - now)),
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn local_label(&self) -> String {
        self.local.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        let server = TcpTransport::new(server).unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn roundtrip_over_localhost() {
        let (mut server, mut client) = pair();
        client.send(b"ping").unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
        assert_eq!(client.stats().frames_out, 1);
        assert_eq!(client.stats().frames_in, 1);
        assert!(client.stats().bytes_out >= 4);
    }

    #[test]
    fn recv_times_out_on_silent_peer() {
        let (mut server, _client) = pair();
        server
            .set_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(server.recv(), Err(TransportError::Timeout));
    }

    #[test]
    fn recv_reports_closed_on_hangup() {
        let (mut server, client) = pair();
        drop(client);
        server
            .set_deadline(Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(server.recv(), Err(TransportError::Closed));
    }

    #[test]
    fn garbage_stream_is_malformed_not_panic() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream).unwrap();
        server
            .set_deadline(Some(Duration::from_millis(500)))
            .unwrap();
        assert!(matches!(
            server.recv(),
            Err(TransportError::Malformed { .. })
        ));
        writer.join().unwrap();
    }

    #[test]
    fn acceptor_polls_and_accepts() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        // Nothing to accept: poll returns None after the timeout.
        assert!(acceptor
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_none());
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut c = TcpTransport::connect(addr).unwrap();
            c.send(b"hi").unwrap();
        });
        let mut conn = acceptor
            .poll_accept(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(conn.recv().unwrap(), b"hi");
        client.join().unwrap();
    }

    #[test]
    fn nb_roundtrip_and_close() {
        let (server, mut client) = pair();
        let mut nb = (Box::new(server) as Box<dyn Transport>).into_nb().unwrap();
        assert!(matches!(nb.ready_source(), ReadySource::Fd(_)));
        assert_eq!(nb.try_recv().unwrap(), None, "no data: would-block");

        client.send(b"ping").unwrap();
        let got = loop {
            if let Some(f) = nb.try_recv().unwrap() {
                break f;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(got, b"ping");

        nb.enqueue_send(b"pong").unwrap();
        while !nb.flush().unwrap() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!nb.has_pending_write());
        client.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");
        assert!(nb.stats().frames_in >= 1 && nb.stats().frames_out >= 1);

        drop(client);
        let err = loop {
            match nb.try_recv() {
                Ok(None) => std::thread::sleep(Duration::from_millis(1)),
                Ok(Some(f)) => panic!("unexpected frame {f:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err, TransportError::Closed);
    }

    #[test]
    fn acceptor_fallback_path_still_accepts() {
        let mut acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        assert!(acceptor.reactor_active(), "reactor path expected on linux");
        acceptor.disable_reactor();
        acceptor.set_accept_backoff(Duration::from_millis(2));
        assert!(!acceptor.reactor_active());
        assert!(acceptor
            .poll_accept(Duration::from_millis(10))
            .unwrap()
            .is_none());
        let addr = acceptor.local_addr();
        let client = std::thread::spawn(move || {
            let mut c = TcpTransport::connect(addr).unwrap();
            c.send(b"fallback").unwrap();
        });
        let mut conn = acceptor
            .poll_accept(Duration::from_secs(5))
            .unwrap()
            .expect("client connected");
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(conn.recv().unwrap(), b"fallback");
        client.join().unwrap();
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let (mut server, _client) = pair();
        let mut small =
            TcpTransport::with_max_frame(server.stream.try_clone().unwrap(), 8).unwrap();
        assert!(matches!(
            small.send(&[0u8; 9]),
            Err(TransportError::TooLarge { .. })
        ));
        let _ = &mut server;
    }
}
