//! Length-prefixed framing.
//!
//! Every ProverGuard wire message travels inside a frame:
//!
//! ```text
//! +------+------+---------+----------+---------------------+
//! | 'P'  | 'G'  | version | reserved | length (u32, BE)    |  8-byte header
//! +------+------+---------+----------+---------------------+
//! | payload: `length` bytes                                |
//! +--------------------------------------------------------+
//! ```
//!
//! The codec is the DoS front line of the byte stream: a frame whose
//! header declares more than the configured maximum is rejected **before
//! any allocation happens**, so a hostile peer cannot make the receiver
//! reserve gigabytes with eight cheap bytes. Truncated or garbage input
//! returns [`TransportError::Malformed`] — never a panic — which is the
//! same cheap-reject contract `Prover::handle_wire_request` gives one
//! layer up.

use crate::error::TransportError;

/// First magic byte (`'P'`).
pub const MAGIC0: u8 = 0x50;
/// Second magic byte (`'G'`).
pub const MAGIC1: u8 = 0x47;
/// Frame format version.
pub const FRAME_VERSION: u8 = 1;
/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 8;
/// Default maximum payload length endpoints accept (64 KiB — an
/// attestation exchange fits in a few hundred bytes; anything near the
/// cap is already suspicious).
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024;

/// Encodes `payload` into a single framed buffer.
///
/// # Errors
///
/// [`TransportError::TooLarge`] when the payload exceeds `max` (or
/// `u32::MAX`, the format's hard ceiling).
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, TransportError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(TransportError::TooLarge {
            declared: payload.len() as u64,
            max: max.min(u32::MAX as usize),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&[MAGIC0, MAGIC1, FRAME_VERSION, 0]);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes one complete datagram (header + payload, nothing more, nothing
/// less) — the UDP path, where a frame never spans packets.
///
/// # Errors
///
/// - [`TransportError::Malformed`] on bad magic/version, a short header,
///   or a length that disagrees with the datagram size (a truncated or
///   padded packet).
/// - [`TransportError::TooLarge`] when the declared length exceeds `max`.
pub fn decode_datagram(bytes: &[u8], max: usize) -> Result<Vec<u8>, TransportError> {
    let declared = parse_header(bytes, max)?;
    let Some(declared) = declared else {
        return Err(TransportError::Malformed {
            reason: "datagram shorter than a frame header",
        });
    };
    if bytes.len() - HEADER_LEN != declared {
        return Err(TransportError::Malformed {
            reason: "datagram length disagrees with declared frame length",
        });
    }
    Ok(bytes[HEADER_LEN..].to_vec())
}

/// Validates a header prefix. Returns `Ok(None)` when fewer than
/// [`HEADER_LEN`] bytes are available yet, `Ok(Some(len))` with the
/// declared payload length otherwise.
fn parse_header(bytes: &[u8], max: usize) -> Result<Option<usize>, TransportError> {
    // Validate whatever prefix of the fixed header we have, so garbage is
    // rejected at the very first wrong byte instead of after buffering.
    if !bytes.is_empty() && bytes[0] != MAGIC0 {
        return Err(TransportError::Malformed {
            reason: "bad magic (first byte)",
        });
    }
    if bytes.len() >= 2 && bytes[1] != MAGIC1 {
        return Err(TransportError::Malformed {
            reason: "bad magic (second byte)",
        });
    }
    if bytes.len() >= 3 && bytes[2] != FRAME_VERSION {
        return Err(TransportError::Malformed {
            reason: "unsupported frame version",
        });
    }
    if bytes.len() >= 4 && bytes[3] != 0 {
        return Err(TransportError::Malformed {
            reason: "reserved header byte not zero",
        });
    }
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    let declared = u32::from_be_bytes(bytes[4..8].try_into().expect("slice is 4 bytes")) as u64;
    if declared > max as u64 {
        return Err(TransportError::TooLarge { declared, max });
    }
    Ok(Some(declared as usize))
}

/// Incremental frame decoder for byte streams (TCP): feed it whatever the
/// socket produced, pull out complete frames as they materialize.
///
/// Once the decoder reports an error the stream is unsynchronized and the
/// connection should be dropped — there is no resync heuristic, by
/// design: a peer that sends garbage gets hung up on, cheaply.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily).
    consumed: usize,
    max: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder accepting payloads up to `max` bytes.
    #[must_use]
    pub fn new(max: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            consumed: 0,
            max,
            poisoned: false,
        }
    }

    /// The configured maximum payload length.
    #[must_use]
    pub fn max_frame_len(&self) -> usize {
        self.max
    }

    /// Bytes buffered but not yet returned as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Feeds raw bytes from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by
        // max + HEADER_LEN + one read's worth instead of growing forever.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] / [`TransportError::TooLarge`] when
    /// the stream header is invalid; every subsequent call returns the
    /// same class of error (the decoder poisons itself — an
    /// unsynchronized length-prefixed stream cannot be trusted again).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if self.poisoned {
            return Err(TransportError::Malformed {
                reason: "stream already unsynchronized",
            });
        }
        let avail = &self.buf[self.consumed..];
        let declared = match parse_header(avail, self.max) {
            Ok(d) => d,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        let Some(declared) = declared else {
            return Ok(None);
        };
        if avail.len() < HEADER_LEN + declared {
            return Ok(None);
        }
        let start = self.consumed + HEADER_LEN;
        let payload = self.buf[start..start + declared].to_vec();
        self.consumed = start + declared;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_decoder() {
        let frame = encode_frame(b"hello fleet", DEFAULT_MAX_FRAME).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(&frame);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello fleet");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn partial_reads_reassemble() {
        let frame = encode_frame(&[7u8; 300], DEFAULT_MAX_FRAME).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        // Dribble the frame in one byte at a time — the slow-peer case.
        for (i, b) in frame.iter().enumerate() {
            dec.extend(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert_eq!(got, None, "no frame before byte {i}");
            } else {
                assert_eq!(got.unwrap(), vec![7u8; 300]);
            }
        }
    }

    #[test]
    fn two_frames_in_one_read() {
        let mut stream = encode_frame(b"a", DEFAULT_MAX_FRAME).unwrap();
        stream.extend_from_slice(&encode_frame(b"bb", DEFAULT_MAX_FRAME).unwrap());
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(&stream);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"a");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"bb");
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_declaration_rejected_before_buffering_payload() {
        // Header declaring 4 GiB arrives alone; the decoder must reject it
        // from the 8 header bytes without waiting for (or reserving) the
        // payload.
        let mut header = vec![MAGIC0, MAGIC1, FRAME_VERSION, 0];
        header.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&header);
        assert_eq!(
            dec.next_frame(),
            Err(TransportError::TooLarge {
                declared: u64::from(u32::MAX),
                max: 1024
            })
        );
        // Poisoned: the stream cannot recover.
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Malformed { .. })
        ));
    }

    #[test]
    fn encode_refuses_oversized_payload() {
        assert!(matches!(
            encode_frame(&[0u8; 100], 99),
            Err(TransportError::TooLarge {
                declared: 100,
                max: 99
            })
        ));
    }

    #[test]
    fn garbage_first_byte_rejected_immediately() {
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&[0xde]);
        assert!(matches!(
            dec.next_frame(),
            Err(TransportError::Malformed { .. })
        ));
    }

    #[test]
    fn datagram_roundtrip_and_length_mismatch() {
        let frame = encode_frame(b"dgram", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(
            decode_datagram(&frame, DEFAULT_MAX_FRAME).unwrap(),
            b"dgram"
        );
        // Truncated packet.
        assert!(matches!(
            decode_datagram(&frame[..frame.len() - 1], DEFAULT_MAX_FRAME),
            Err(TransportError::Malformed { .. })
        ));
        // Padded packet.
        let mut padded = frame.clone();
        padded.push(0);
        assert!(matches!(
            decode_datagram(&padded, DEFAULT_MAX_FRAME),
            Err(TransportError::Malformed { .. })
        ));
        // Empty packet.
        assert!(matches!(
            decode_datagram(&[], DEFAULT_MAX_FRAME),
            Err(TransportError::Malformed { .. })
        ));
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let frame = encode_frame(b"", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(frame.len(), HEADER_LEN);
        assert_eq!(decode_datagram(&frame, DEFAULT_MAX_FRAME).unwrap(), b"");
    }

    /// Feeds `stream` to a fresh decoder in one `extend` and returns all
    /// frames — the reference decode the partitioned runs must match.
    fn one_shot_decode(stream: &[u8]) -> Vec<Vec<u8>> {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.extend(stream);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame().expect("valid stream") {
            out.push(f);
        }
        out
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        // The WouldBlock-incrementality contract: however the kernel
        // slices the byte stream across reads — including cuts inside
        // the 8-byte header — the decoder yields exactly the frames a
        // single contiguous read would, in order.
        #[test]
        fn arbitrary_read_partitions_decode_like_one_shot(
            lens in proptest::collection::vec(0usize..300, 1..5),
            cuts in proptest::collection::vec(proptest::arbitrary::any::<u16>(), 0..24),
        ) {
            let mut stream = Vec::new();
            for (i, len) in lens.iter().enumerate() {
                let payload: Vec<u8> =
                    (0..*len).map(|j| (i * 31 + j) as u8).collect();
                stream.extend_from_slice(
                    &encode_frame(&payload, DEFAULT_MAX_FRAME).unwrap(),
                );
            }
            let expect = one_shot_decode(&stream);

            // Cut positions anywhere in the stream (duplicates collapse,
            // so empty reads are exercised too).
            let mut bounds: Vec<usize> = cuts
                .iter()
                .map(|c| usize::from(*c) % (stream.len() + 1))
                .collect();
            bounds.push(0);
            bounds.push(stream.len());
            bounds.sort_unstable();

            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            let mut got = Vec::new();
            for pair in bounds.windows(2) {
                dec.extend(&stream[pair[0]..pair[1]]);
                // Drain after every read, as the event loop does.
                while let Some(f) = dec.next_frame().expect("valid stream") {
                    got.push(f);
                }
            }
            proptest::prop_assert_eq!(&got, &expect);
            proptest::prop_assert_eq!(dec.pending(), 0);
        }

        // Mid-header garbage is rejected at the same byte offset no
        // matter how the reads are sliced.
        #[test]
        fn partitioned_garbage_rejected_like_one_shot(
            bad_at in 0usize..4,
            cut in 0usize..8,
        ) {
            let mut stream = encode_frame(b"ok", DEFAULT_MAX_FRAME).unwrap();
            stream[bad_at] ^= 0xff;
            let cut = cut.min(stream.len());

            let mut one = FrameDecoder::new(DEFAULT_MAX_FRAME);
            one.extend(&stream);
            let one_err = one.next_frame().expect_err("corrupt header");

            let mut split = FrameDecoder::new(DEFAULT_MAX_FRAME);
            split.extend(&stream[..cut]);
            let early = split.next_frame();
            let split_err = match early {
                Err(e) => e,
                Ok(None) => {
                    split.extend(&stream[cut..]);
                    split.next_frame().expect_err("corrupt header")
                }
                Ok(Some(f)) => panic!("decoded corrupt frame {f:?}"),
            };
            proptest::prop_assert_eq!(split_err, one_err);
        }
    }
}
