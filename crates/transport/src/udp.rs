//! UDP transport: one datagram per frame.
//!
//! The datagram variant keeps the identical frame header so truncated and
//! padded packets are detected by the codec, not trusted. There is no
//! connection and no delivery guarantee — exactly the link model the
//! retry/backoff layer above was built for. A `UdpTransport` is
//! "connected" in the BSD sense: it talks to one fixed peer address.

use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use crate::error::TransportError;
use crate::frame::{decode_datagram, encode_frame, DEFAULT_MAX_FRAME, HEADER_LEN};
use crate::{LinkStats, Transport};

/// A framed datagram endpoint bound to one peer.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    max_frame: usize,
    stats: LinkStats,
    peer: String,
}

impl UdpTransport {
    /// Binds `local` and connects the socket to `peer`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind/connect failure.
    pub fn bind(
        local: impl ToSocketAddrs,
        peer: impl ToSocketAddrs,
    ) -> Result<Self, TransportError> {
        Self::bind_with_max_frame(local, peer, DEFAULT_MAX_FRAME)
    }

    /// Binds with a custom frame cap.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] on bind/connect failure.
    pub fn bind_with_max_frame(
        local: impl ToSocketAddrs,
        peer: impl ToSocketAddrs,
        max_frame: usize,
    ) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(local)?;
        socket.connect(peer)?;
        let peer = socket
            .peer_addr()
            .map_or_else(|_| "udp:unknown".to_string(), |a| a.to_string());
        Ok(UdpTransport {
            socket,
            max_frame,
            stats: LinkStats::default(),
            peer,
        })
    }

    /// The local address (for handing to the peer when port 0 was used).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        Ok(self.socket.local_addr()?)
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let framed = encode_frame(payload, self.max_frame)?;
        self.socket.send(&framed)?;
        self.stats.note_sent(framed.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        // One datagram, one frame: buffer sized to the cap plus header,
        // and anything larger arrives truncated — which the length check
        // in `decode_datagram` then rejects as malformed.
        let mut buf = vec![0u8; self.max_frame + HEADER_LEN];
        let n = self.socket.recv(&mut buf)?;
        self.stats.note_received_bytes(n);
        let payload = decode_datagram(&buf[..n], self.max_frame)?;
        self.stats.note_received_frame();
        Ok(payload)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.socket.set_read_timeout(deadline)?;
        self.socket.set_write_timeout(deadline)?;
        Ok(())
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A bound pair of UDP transports talking to each other over localhost.
///
/// # Errors
///
/// [`TransportError::Io`] on bind failure.
pub fn udp_pair(max_frame: usize) -> Result<(UdpTransport, UdpTransport), TransportError> {
    // Bind both ends first so each knows the other's ephemeral port.
    let a = UdpSocket::bind("127.0.0.1:0")?;
    let b = UdpSocket::bind("127.0.0.1:0")?;
    let a_addr = a.local_addr()?;
    let b_addr = b.local_addr()?;
    a.connect(b_addr)?;
    b.connect(a_addr)?;
    let wrap = |socket: UdpSocket, peer: SocketAddr| UdpTransport {
        socket,
        max_frame,
        stats: LinkStats::default(),
        peer: peer.to_string(),
    };
    Ok((wrap(a, b_addr), wrap(b, a_addr)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_roundtrip() {
        let (mut a, mut b) = udp_pair(DEFAULT_MAX_FRAME).unwrap();
        b.set_deadline(Some(Duration::from_secs(5))).unwrap();
        a.send(b"over the air").unwrap();
        assert_eq!(b.recv().unwrap(), b"over the air");
        assert_eq!(a.stats().frames_out, 1);
        assert_eq!(b.stats().frames_in, 1);
    }

    #[test]
    fn recv_times_out_when_nothing_arrives() {
        let (_a, mut b) = udp_pair(DEFAULT_MAX_FRAME).unwrap();
        b.set_deadline(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::Timeout));
    }

    #[test]
    fn raw_garbage_datagram_is_malformed() {
        let (a, mut b) = udp_pair(DEFAULT_MAX_FRAME).unwrap();
        b.set_deadline(Some(Duration::from_secs(5))).unwrap();
        a.socket.send(&[1, 2, 3]).unwrap();
        assert!(matches!(b.recv(), Err(TransportError::Malformed { .. })));
    }

    #[test]
    fn oversized_datagram_payload_rejected() {
        let (mut a, _b) = udp_pair(16).unwrap();
        assert!(matches!(
            a.send(&[0u8; 17]),
            Err(TransportError::TooLarge { .. })
        ));
    }
}
