//! Speck 64/128 (Beaulieu et al., ePrint 2013/404).
//!
//! The lightweight block cipher the paper highlights: with key expansion
//! done in advance, a request fits in a single 64-bit block and checking it
//! costs 0.015–0.017 ms on Siskiyou Peak — more than an order of magnitude
//! cheaper than AES and four orders cheaper than ECC (Table 1).
//!
//! Parameters: 32-bit words, 4-word (128-bit) key, 27 rounds, rotation
//! amounts α = 8, β = 3.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::speck::Speck64_128;
//! use proverguard_crypto::BlockCipher;
//!
//! # fn main() -> Result<(), proverguard_crypto::CryptoError> {
//! let cipher = Speck64_128::new(&[7u8; 16])?;
//! let mut block = *b"8bytebLk";
//! let original = block;
//! cipher.encrypt_block(&mut block);
//! cipher.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! # Ok(())
//! # }
//! ```

use crate::error::CryptoError;
use crate::BlockCipher;

/// Key size in bytes.
pub const KEY_SIZE: usize = 16;

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 8;

const ROUNDS: usize = 27;
const ALPHA: u32 = 8;
const BETA: u32 = 3;

/// Speck 64/128 with its 27 round keys expanded.
#[derive(Clone)]
pub struct Speck64_128 {
    round_keys: [u32; ROUNDS],
}

impl std::fmt::Debug for Speck64_128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Speck64_128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Speck64_128 {
    /// Expands `key` (16 bytes, most-significant word first) into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyLength`] unless `key` is exactly 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let key: &[u8; KEY_SIZE] = key.try_into().map_err(|_| CryptoError::KeyLength {
            expected: KEY_SIZE,
            actual: key.len(),
        })?;
        Ok(Self::from_key(key))
    }

    /// Expands a fixed-size `key` (infallible form of [`Speck64_128::new`]).
    #[must_use]
    pub fn from_key(key: &[u8; KEY_SIZE]) -> Self {
        // Key bytes are big-endian words (l2, l1, l0, k0), matching the
        // designers' test-vector notation "1b1a1918 13121110 0b0a0908 03020100".
        let w = |i: usize| u32::from_be_bytes([key[i], key[i + 1], key[i + 2], key[i + 3]]);
        let mut l = [w(8), w(4), w(0)]; // l0, l1, l2
        let mut k = w(12); // k0

        let mut round_keys = [0u32; ROUNDS];
        round_keys[0] = k;
        for i in 0..ROUNDS - 1 {
            let new_l = k.wrapping_add(l[i % 3].rotate_right(ALPHA)) ^ (i as u32);
            l[i % 3] = new_l;
            k = k.rotate_left(BETA) ^ new_l;
            round_keys[i + 1] = k;
        }
        Speck64_128 { round_keys }
    }
}

impl BlockCipher for Speck64_128 {
    const BLOCK_SIZE: usize = BLOCK_SIZE;
    const NAME: &'static str = "speck64_128";

    fn encrypt_block(&self, block: &mut [u8]) {
        let b: &mut [u8; 8] = block.try_into().expect("Speck block must be 8 bytes");
        let mut x = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let mut y = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
        for &rk in &self.round_keys {
            x = x.rotate_right(ALPHA).wrapping_add(y) ^ rk;
            y = y.rotate_left(BETA) ^ x;
        }
        b[..4].copy_from_slice(&x.to_be_bytes());
        b[4..].copy_from_slice(&y.to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let b: &mut [u8; 8] = block.try_into().expect("Speck block must be 8 bytes");
        let mut x = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        let mut y = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
        for &rk in self.round_keys.iter().rev() {
            y = (y ^ x).rotate_right(BETA);
            x = (x ^ rk).wrapping_sub(y).rotate_left(ALPHA);
        }
        b[..4].copy_from_slice(&x.to_be_bytes());
        b[4..].copy_from_slice(&y.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designers_test_vector() {
        // Speck 64/128 vector from the SIMON & SPECK paper (ePrint 2013/404):
        // key 1b1a1918 13121110 0b0a0908 03020100,
        // plaintext 3b726574 7475432d, ciphertext 8c6fa548 454e028b.
        let key = [
            0x1b, 0x1a, 0x19, 0x18, 0x13, 0x12, 0x11, 0x10, 0x0b, 0x0a, 0x09, 0x08, 0x03, 0x02,
            0x01, 0x00,
        ];
        let cipher = Speck64_128::from_key(&key);
        let mut block = [0x3b, 0x72, 0x65, 0x74, 0x74, 0x75, 0x43, 0x2d];
        cipher.encrypt_block(&mut block);
        assert_eq!(block, [0x8c, 0x6f, 0xa5, 0x48, 0x45, 0x4e, 0x02, 0x8b]);
        cipher.decrypt_block(&mut block);
        assert_eq!(block, [0x3b, 0x72, 0x65, 0x74, 0x74, 0x75, 0x43, 0x2d]);
    }

    #[test]
    fn wrong_key_length_rejected() {
        assert!(matches!(
            Speck64_128::new(&[0u8; 8]),
            Err(CryptoError::KeyLength {
                expected: 16,
                actual: 8
            })
        ));
    }

    #[test]
    fn roundtrip_many_keys_and_blocks() {
        for seed in 0..64u8 {
            let key = [seed.wrapping_mul(3); 16];
            let cipher = Speck64_128::from_key(&key);
            let mut block = [seed, 1, 2, 3, 4, 5, 6, seed ^ 0xff];
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original);
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = Speck64_128::from_key(&[1; 16]);
        let c2 = Speck64_128::from_key(&[2; 16]);
        let mut b1 = [0u8; 8];
        let mut b2 = [0u8; 8];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn debug_does_not_leak_round_keys() {
        let dbg = format!("{:?}", Speck64_128::from_key(&[9; 16]));
        assert!(dbg.contains("redacted"));
    }
}
