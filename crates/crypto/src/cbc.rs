//! CBC mode and CBC-MAC over any [`BlockCipher`].
//!
//! The paper describes the prover's attestation MAC as "a CBC-based function
//! based on a block cipher (such as AES)" or a keyed hash. This module
//! provides both CBC encryption/decryption (for the Table 1 enc/dec columns)
//! and CBC-MAC with length prepending (so the fixed-length messages used by
//! the attestation protocol are MACed securely).

use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::BlockCipher;

/// Encrypts `data` in place with CBC mode.
///
/// # Errors
///
/// - [`CryptoError::IvLength`] if `iv` is not one block long.
/// - [`CryptoError::BlockAlignment`] if `data` is not a whole number of
///   blocks; this crate deliberately has no padding layer because the
///   attestation protocol uses fixed-size messages.
///
/// # Example
///
/// ```
/// use proverguard_crypto::aes::Aes128;
/// use proverguard_crypto::cbc;
///
/// # fn main() -> Result<(), proverguard_crypto::CryptoError> {
/// let aes = Aes128::new(&[1u8; 16])?;
/// let mut data = [0u8; 32];
/// cbc::encrypt(&aes, &[0u8; 16], &mut data)?;
/// cbc::decrypt(&aes, &[0u8; 16], &mut data)?;
/// assert_eq!(data, [0u8; 32]);
/// # Ok(())
/// # }
/// ```
pub fn encrypt<C: BlockCipher>(cipher: &C, iv: &[u8], data: &mut [u8]) -> Result<(), CryptoError> {
    check_lengths::<C>(iv, data)?;
    let bs = C::BLOCK_SIZE;
    let mut chain = iv.to_vec();
    for block in data.chunks_exact_mut(bs) {
        for (b, c) in block.iter_mut().zip(chain.iter()) {
            *b ^= c;
        }
        cipher.encrypt_block(block);
        chain.copy_from_slice(block);
    }
    Ok(())
}

/// Decrypts `data` in place with CBC mode.
///
/// # Errors
///
/// Same conditions as [`encrypt`].
pub fn decrypt<C: BlockCipher>(cipher: &C, iv: &[u8], data: &mut [u8]) -> Result<(), CryptoError> {
    check_lengths::<C>(iv, data)?;
    let bs = C::BLOCK_SIZE;
    let mut chain = iv.to_vec();
    for block in data.chunks_exact_mut(bs) {
        let this_ct = block.to_vec();
        cipher.decrypt_block(block);
        for (b, c) in block.iter_mut().zip(chain.iter()) {
            *b ^= c;
        }
        chain.copy_from_slice(&this_ct);
    }
    Ok(())
}

fn check_lengths<C: BlockCipher>(iv: &[u8], data: &[u8]) -> Result<(), CryptoError> {
    if iv.len() != C::BLOCK_SIZE {
        return Err(CryptoError::IvLength {
            expected: C::BLOCK_SIZE,
            actual: iv.len(),
        });
    }
    if !data.len().is_multiple_of(C::BLOCK_SIZE) {
        return Err(CryptoError::BlockAlignment {
            block_size: C::BLOCK_SIZE,
            actual: data.len(),
        });
    }
    Ok(())
}

/// Computes a CBC-MAC tag (one cipher block) over `message`.
///
/// The message length is encoded into the first block and the message is
/// zero-padded to a block boundary, which makes the construction secure for
/// variable-length messages (plain CBC-MAC is only secure for fixed-length
/// input).
///
/// # Example
///
/// ```
/// use proverguard_crypto::speck::Speck64_128;
/// use proverguard_crypto::cbc::cbc_mac;
///
/// # fn main() -> Result<(), proverguard_crypto::CryptoError> {
/// let cipher = Speck64_128::new(&[3u8; 16])?;
/// let tag = cbc_mac(&cipher, b"attreq|counter=9");
/// assert_eq!(tag.len(), 8);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn cbc_mac<C: BlockCipher>(cipher: &C, message: &[u8]) -> Vec<u8> {
    let _span = proverguard_telemetry::trace::span(match C::NAME {
        "aes128" => "crypto.aes128_cbc",
        "speck64_128" => "crypto.speck64_cbc",
        _ => "crypto.cbc_mac",
    });
    let bs = C::BLOCK_SIZE;
    // Length-prepend block: u64 big-endian length, zero padded to block size.
    let mut state = vec![0u8; bs];
    let len_bytes = (message.len() as u64).to_be_bytes();
    let copy = len_bytes.len().min(bs);
    state[bs - copy..].copy_from_slice(&len_bytes[len_bytes.len() - copy..]);
    cipher.encrypt_block(&mut state);

    for chunk in message.chunks(bs) {
        for (s, m) in state.iter_mut().zip(chunk.iter()) {
            *s ^= m;
        }
        cipher.encrypt_block(&mut state);
    }
    state
}

/// Verifies a CBC-MAC `tag` in constant time.
#[must_use]
pub fn cbc_mac_verify<C: BlockCipher>(cipher: &C, message: &[u8], tag: &[u8]) -> bool {
    ct_eq(&cbc_mac(cipher, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;
    use crate::speck::Speck64_128;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_cbc_aes128_encrypt() {
        // NIST SP 800-38A, F.2.1.
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut data = from_hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        let expected = from_hex(
            "7649abac8119b246cee98e9b12e9197d\
             5086cb9b507219ee95db113a917678b2\
             73bed6b8e3c1743b7116e69e22229516\
             3ff1caa1681fac09120eca307586e1a7",
        );
        let aes = Aes128::new(&key).unwrap();
        encrypt(&aes, &iv, &mut data).unwrap();
        assert_eq!(data, expected);
        decrypt(&aes, &iv, &mut data).unwrap();
        assert_eq!(
            data,
            from_hex(
                "6bc1bee22e409f96e93d7e117393172a\
                 ae2d8a571e03ac9c9eb76fac45af8e51\
                 30c81c46a35ce411e5fbc1191a0a52ef\
                 f69f2445df4f9b17ad2b417be66c3710"
            )
        );
    }

    #[test]
    fn misaligned_data_rejected() {
        let aes = Aes128::from_key(&[0; 16]);
        let mut data = [0u8; 17];
        assert!(matches!(
            encrypt(&aes, &[0u8; 16], &mut data),
            Err(CryptoError::BlockAlignment {
                block_size: 16,
                actual: 17
            })
        ));
    }

    #[test]
    fn wrong_iv_rejected() {
        let aes = Aes128::from_key(&[0; 16]);
        let mut data = [0u8; 16];
        assert!(matches!(
            encrypt(&aes, &[0u8; 8], &mut data),
            Err(CryptoError::IvLength {
                expected: 16,
                actual: 8
            })
        ));
    }

    #[test]
    fn cbc_roundtrip_speck() {
        let cipher = Speck64_128::from_key(&[0xab; 16]);
        let mut data: Vec<u8> = (0..64u8).collect();
        let original = data.clone();
        encrypt(&cipher, &[0x11; 8], &mut data).unwrap();
        assert_ne!(data, original);
        decrypt(&cipher, &[0x11; 8], &mut data).unwrap();
        assert_eq!(data, original);
    }

    #[test]
    fn cbc_mac_distinguishes_messages() {
        let cipher = Aes128::from_key(&[5; 16]);
        let t1 = cbc_mac(&cipher, b"message one");
        let t2 = cbc_mac(&cipher, b"message two");
        assert_ne!(t1, t2);
        assert!(cbc_mac_verify(&cipher, b"message one", &t1));
        assert!(!cbc_mac_verify(&cipher, b"message two", &t1));
    }

    #[test]
    fn cbc_mac_length_prepend_blocks_extension() {
        // A zero-padded message must not collide with its padded sibling.
        let cipher = Aes128::from_key(&[5; 16]);
        let t1 = cbc_mac(&cipher, b"abc");
        let mut padded = b"abc".to_vec();
        padded.extend_from_slice(&[0u8; 13]);
        let t2 = cbc_mac(&cipher, &padded);
        assert_ne!(t1, t2);
    }

    #[test]
    fn cbc_mac_empty_message_is_defined() {
        let cipher = Speck64_128::from_key(&[1; 16]);
        let t = cbc_mac(&cipher, b"");
        assert_eq!(t.len(), 8);
        assert!(cbc_mac_verify(&cipher, b"", &t));
    }
}
