//! HMAC-SHA1 deterministic random bit generator.
//!
//! Follows the HMAC_DRBG construction of NIST SP 800-90A (instantiate /
//! reseed / generate with the K,V update function), with SHA-1 as the
//! underlying hash. The suite uses it in two places:
//!
//! - deterministic ECDSA nonces (an RFC 6979-style derivation, so the
//!   prover/verifier simulation never needs an entropy source), and
//! - verifier-side nonce generation for the nonce-history freshness policy.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::drbg::HmacDrbg;
//!
//! let mut rng = HmacDrbg::new(b"seed entropy", b"personalization");
//! let a = rng.generate(16);
//! let b = rng.generate(16);
//! assert_ne!(a, b);
//! ```

use crate::hmac::HmacSha1;
use crate::sha1::DIGEST_SIZE;

/// HMAC-SHA1-DRBG state.
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; DIGEST_SIZE],
    value: [u8; DIGEST_SIZE],
    reseed_counter: u64,
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacDrbg")
            .field("state", &"<redacted>")
            .field("reseed_counter", &self.reseed_counter)
            .finish()
    }
}

impl HmacDrbg {
    /// Instantiates the DRBG from `entropy` and an optional
    /// `personalization` string.
    #[must_use]
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0x00; DIGEST_SIZE],
            value: [0x01; DIGEST_SIZE],
            reseed_counter: 1,
        };
        let mut seed = entropy.to_vec();
        seed.extend_from_slice(personalization);
        drbg.update(Some(&seed));
        drbg
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(Some(entropy));
        self.reseed_counter = 1;
    }

    /// Produces `len` pseudo-random bytes.
    #[must_use]
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let mut h = HmacSha1::new(&self.key);
            h.update(&self.value);
            self.value = h.finalize();
            let take = (len - out.len()).min(DIGEST_SIZE);
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        self.reseed_counter += 1;
        out
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let bytes = self.generate(buf.len());
        buf.copy_from_slice(&bytes);
    }

    /// The SP 800-90A HMAC_DRBG_Update function.
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut h = HmacSha1::new(&self.key);
        h.update(&self.value);
        h.update(&[0x00]);
        if let Some(data) = provided {
            h.update(data);
        }
        self.key = h.finalize();

        let mut h = HmacSha1::new(&self.key);
        h.update(&self.value);
        self.value = h.finalize();

        if let Some(data) = provided {
            let mut h = HmacSha1::new(&self.key);
            h.update(&self.value);
            h.update(&[0x01]);
            h.update(data);
            self.key = h.finalize();

            let mut h = HmacSha1::new(&self.key);
            h.update(&self.value);
            self.value = h.finalize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"entropy", b"ps");
        let mut b = HmacDrbg::new(b"entropy", b"ps");
        assert_eq!(a.generate(40), b.generate(40));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"entropy-1", b"");
        let mut b = HmacDrbg::new(b"entropy-2", b"");
        assert_ne!(a.generate(20), b.generate(20));
    }

    #[test]
    fn personalization_matters() {
        let mut a = HmacDrbg::new(b"entropy", b"role-a");
        let mut b = HmacDrbg::new(b"entropy", b"role-b");
        assert_ne!(a.generate(20), b.generate(20));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut rng = HmacDrbg::new(b"seed", b"");
        let outputs: Vec<Vec<u8>> = (0..16).map(|_| rng.generate(20)).collect();
        for i in 0..outputs.len() {
            for j in i + 1..outputs.len() {
                assert_ne!(outputs[i], outputs[j]);
            }
        }
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed", b"");
        let mut b = HmacDrbg::new(b"seed", b"");
        let _ = a.generate(20);
        let _ = b.generate(20);
        b.reseed(b"extra");
        assert_ne!(a.generate(20), b.generate(20));
    }

    #[test]
    fn generate_spans_multiple_hash_outputs() {
        let mut rng = HmacDrbg::new(b"seed", b"");
        let long = rng.generate(45); // > 2 * DIGEST_SIZE
        assert_eq!(long.len(), 45);
        // Not all-zero, not all-equal.
        assert!(long.iter().any(|&b| b != long[0]));
    }

    #[test]
    fn fill_matches_generate() {
        let mut a = HmacDrbg::new(b"x", b"");
        let mut b = HmacDrbg::new(b"x", b"");
        let mut buf = [0u8; 24];
        a.fill(&mut buf);
        assert_eq!(buf.to_vec(), b.generate(24));
    }
}
