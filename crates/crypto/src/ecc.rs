//! The secp160r1 elliptic curve (SEC 2).
//!
//! This is the exact curve the paper benchmarks ("ECC (secp160r1)",
//! Table 1) and then *rules out* for request authentication: verifying an
//! ECDSA signature costs ~170 ms on the 24 MHz prover, so using public-key
//! authentication to prevent DoS would itself be a DoS vector (§4.1).
//!
//! Points use affine coordinates with a fast binary-GCD field inversion;
//! performance is intentionally unremarkable, matching a straightforward
//! MCU implementation.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::ecc::{Curve, Point};
//! use proverguard_crypto::bignum::U384;
//!
//! let curve = Curve::secp160r1();
//! let g = curve.generator();
//! let two_g = curve.add(&g, &g);
//! assert_eq!(two_g, curve.scalar_mul(&U384::from_u64(2), &g));
//! ```

use crate::bignum::U384;
use crate::error::CryptoError;

/// A point on the curve: the identity or an affine `(x, y)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// The point at infinity (group identity).
    Infinity,
    /// An affine point.
    Affine {
        /// x coordinate, reduced mod p.
        x: U384,
        /// y coordinate, reduced mod p.
        y: U384,
    },
}

impl Point {
    /// `true` iff this is the point at infinity.
    #[must_use]
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }
}

/// Short-Weierstrass curve `y² = x³ + ax + b` over `GF(p)` with a generator
/// of prime order `n`.
#[derive(Debug, Clone)]
pub struct Curve {
    p: U384,
    a: U384,
    b: U384,
    gx: U384,
    gy: U384,
    n: U384,
}

impl Curve {
    /// The secp160r1 parameters from SEC 2 v2.0.
    #[must_use]
    pub fn secp160r1() -> Self {
        Curve {
            p: U384::from_be_hex("ffffffffffffffffffffffffffffffff7fffffff"),
            a: U384::from_be_hex("ffffffffffffffffffffffffffffffff7ffffffc"),
            b: U384::from_be_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45"),
            gx: U384::from_be_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
            gy: U384::from_be_hex("23a628553168947d59dcc912042351377ac5fb32"),
            n: U384::from_be_hex("0100000000000000000001f4c8f927aed3ca752257"),
        }
    }

    /// The field prime `p`.
    #[must_use]
    pub fn p(&self) -> &U384 {
        &self.p
    }

    /// The group order `n`.
    #[must_use]
    pub fn order(&self) -> &U384 {
        &self.n
    }

    /// The generator point `G`.
    #[must_use]
    pub fn generator(&self) -> Point {
        Point::Affine {
            x: self.gx,
            y: self.gy,
        }
    }

    /// Checks the curve equation for `point`.
    #[must_use]
    pub fn is_on_curve(&self, point: &Point) -> bool {
        match point {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                if x >= &self.p || y >= &self.p {
                    return false;
                }
                let y2 = y.mul_mod(y, &self.p);
                let x2 = x.mul_mod(x, &self.p);
                let x3 = x2.mul_mod(x, &self.p);
                let rhs = x3
                    .add_mod(&self.a.mul_mod(x, &self.p), &self.p)
                    .add_mod(&self.b, &self.p);
                y2 == rhs
            }
        }
    }

    /// Validates an externally supplied point (coordinates in range and on
    /// the curve).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::PointNotOnCurve`] if validation fails.
    pub fn validate_point(&self, point: &Point) -> Result<(), CryptoError> {
        if self.is_on_curve(point) {
            Ok(())
        } else {
            Err(CryptoError::PointNotOnCurve)
        }
    }

    /// Negates a point.
    #[must_use]
    pub fn negate(&self, point: &Point) -> Point {
        match point {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::Affine {
                x: *x,
                y: U384::ZERO.sub_mod(y, &self.p),
            },
        }
    }

    /// Adds two points.
    #[must_use]
    pub fn add(&self, lhs: &Point, rhs: &Point) -> Point {
        match (lhs, rhs) {
            (Point::Infinity, q) => *q,
            (p, Point::Infinity) => *p,
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.double(lhs);
                    }
                    // x1 == x2, y1 == -y2 (the only other on-curve option).
                    return Point::Infinity;
                }
                let num = y2.sub_mod(y1, &self.p);
                let den = x2.sub_mod(x1, &self.p);
                let lambda = num.mul_mod(
                    &den.inv_mod(&self.p).expect("x1 != x2 implies invertible"),
                    &self.p,
                );
                self.chord_point(&lambda, x1, y1, x2)
            }
        }
    }

    /// Doubles a point.
    #[must_use]
    pub fn double(&self, point: &Point) -> Point {
        match point {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => {
                if y.is_zero() {
                    return Point::Infinity;
                }
                // lambda = (3x^2 + a) / 2y
                let x2 = x.mul_mod(x, &self.p);
                let three_x2 = x2.add_mod(&x2, &self.p).add_mod(&x2, &self.p);
                let num = three_x2.add_mod(&self.a, &self.p);
                let two_y = y.add_mod(y, &self.p);
                let lambda = num.mul_mod(
                    &two_y.inv_mod(&self.p).expect("y != 0 implies invertible"),
                    &self.p,
                );
                self.chord_point(&lambda, x, y, x)
            }
        }
    }

    /// Given the chord/tangent slope, computes the third intersection point
    /// reflected over the x axis: `x3 = λ² - x1 - x2`, `y3 = λ(x1 - x3) - y1`.
    fn chord_point(&self, lambda: &U384, x1: &U384, y1: &U384, x2: &U384) -> Point {
        let x3 = lambda
            .mul_mod(lambda, &self.p)
            .sub_mod(x1, &self.p)
            .sub_mod(x2, &self.p);
        let y3 = lambda
            .mul_mod(&x1.sub_mod(&x3, &self.p), &self.p)
            .sub_mod(y1, &self.p);
        Point::Affine { x: x3, y: y3 }
    }

    /// Computes `k · point` by left-to-right double-and-add.
    ///
    /// The scalar is used as given (not reduced); callers doing group
    /// arithmetic should reduce mod [`Curve::order`] first.
    #[must_use]
    pub fn scalar_mul(&self, k: &U384, point: &Point) -> Point {
        let mut acc = Point::Infinity;
        for i in (0..k.bits()).rev() {
            acc = self.double(&acc);
            if k.bit(i) {
                acc = self.add(&acc, point);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Curve {
        Curve::secp160r1()
    }

    #[test]
    fn generator_is_on_curve() {
        let c = curve();
        assert!(c.is_on_curve(&c.generator()));
    }

    #[test]
    fn infinity_is_identity() {
        let c = curve();
        let g = c.generator();
        assert_eq!(c.add(&g, &Point::Infinity), g);
        assert_eq!(c.add(&Point::Infinity, &g), g);
        assert!(c.add(&Point::Infinity, &Point::Infinity).is_infinity());
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let c = curve();
        let g = c.generator();
        let neg = c.negate(&g);
        assert!(c.is_on_curve(&neg));
        assert!(c.add(&g, &neg).is_infinity());
    }

    #[test]
    fn double_matches_add_self() {
        let c = curve();
        let g = c.generator();
        assert_eq!(c.double(&g), c.add(&g, &g));
        let two_g = c.double(&g);
        assert!(c.is_on_curve(&two_g));
    }

    #[test]
    fn scalar_mul_small_values() {
        let c = curve();
        let g = c.generator();
        assert!(c.scalar_mul(&U384::ZERO, &g).is_infinity());
        assert_eq!(c.scalar_mul(&U384::ONE, &g), g);
        let mut acc = Point::Infinity;
        for k in 1..=8u64 {
            acc = c.add(&acc, &g);
            assert_eq!(c.scalar_mul(&U384::from_u64(k), &g), acc, "k = {k}");
            assert!(c.is_on_curve(&acc));
        }
    }

    #[test]
    fn order_times_generator_is_infinity() {
        let c = curve();
        let ng = c.scalar_mul(c.order(), &c.generator());
        assert!(ng.is_infinity());
    }

    #[test]
    fn order_minus_one_is_negated_generator() {
        let c = curve();
        let n_minus_1 = c.order().wrapping_sub(&U384::ONE);
        let p = c.scalar_mul(&n_minus_1, &c.generator());
        assert_eq!(p, c.negate(&c.generator()));
    }

    #[test]
    fn scalar_mul_distributes() {
        let c = curve();
        let g = c.generator();
        // (a + b)G == aG + bG for a couple of medium scalars.
        let a = U384::from_u64(0x0123_4567_89ab_cdef);
        let b = U384::from_u64(0xfeed_face_cafe_f00d);
        let lhs = c.scalar_mul(&a.wrapping_add(&b), &g);
        let rhs = c.add(&c.scalar_mul(&a, &g), &c.scalar_mul(&b, &g));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn off_curve_point_rejected() {
        let c = curve();
        let bogus = Point::Affine {
            x: U384::from_u64(1),
            y: U384::from_u64(1),
        };
        assert!(matches!(
            c.validate_point(&bogus),
            Err(CryptoError::PointNotOnCurve)
        ));
        assert!(c.validate_point(&c.generator()).is_ok());
    }
}
