//! AES-128 (FIPS 197).
//!
//! The "standard block cipher" option for authenticating attestation
//! requests (§4.1) and for CBC-based attestation MACs. Key expansion is done
//! once in [`Aes128::new`], mirroring Table 1's separate key-expansion
//! column (0.074 ms on Siskiyou Peak).
//!
//! The S-box and its inverse are *derived* at first use from the GF(2⁸)
//! inversion and affine map defined in FIPS 197 rather than transcribed as a
//! table, which makes the implementation self-checking: a single wrong
//! constant breaks the known-answer tests below.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::aes::Aes128;
//! use proverguard_crypto::BlockCipher;
//!
//! # fn main() -> Result<(), proverguard_crypto::CryptoError> {
//! let aes = Aes128::new(&[0u8; 16])?;
//! let mut block = *b"sixteen byte blk";
//! let original = block;
//! aes.encrypt_block(&mut block);
//! aes.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! # Ok(())
//! # }
//! ```

use std::sync::OnceLock;

use crate::error::CryptoError;
use crate::BlockCipher;

/// Key size in bytes.
pub const KEY_SIZE: usize = 16;

/// Block size in bytes.
pub const BLOCK_SIZE: usize = 16;

const ROUNDS: usize = 10;

/// Multiplication in GF(2⁸) with the AES reduction polynomial x⁸+x⁴+x³+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); 0 maps to 0 as FIPS 197 specifies.
fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv = [0u8; 256];
        for i in 0..=255u8 {
            let x = ginv(i);
            // Affine transform: b' = b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b) ^ 0x63.
            let s = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
            sbox[i as usize] = s;
            inv[s as usize] = i;
        }
        (sbox, inv)
    })
}

/// AES-128 with its round keys fully expanded.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug output.
        f.debug_struct("Aes128")
            .field("round_keys", &"<redacted>")
            .finish()
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyLength`] unless `key` is exactly 16 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let key: &[u8; KEY_SIZE] = key.try_into().map_err(|_| CryptoError::KeyLength {
            expected: KEY_SIZE,
            actual: key.len(),
        })?;
        Ok(Self::from_key(key))
    }

    /// Expands a fixed-size `key` (infallible form of [`Aes128::new`]).
    #[must_use]
    pub fn from_key(key: &[u8; KEY_SIZE]) -> Self {
        let (sbox, _) = sboxes();
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..w.len() {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gmul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        let (sbox, _) = sboxes();
        for b in state.iter_mut() {
            *b = sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let (_, inv) = sboxes();
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
    }

    /// State layout: byte `r + 4c` is row `r`, column `c` (FIPS 197 §3.4).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }
}

impl BlockCipher for Aes128 {
    const BLOCK_SIZE: usize = BLOCK_SIZE;
    const NAME: &'static str = "aes128";

    fn encrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        Self::add_round_key(state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            Self::sub_bytes(state);
            Self::shift_rows(state);
            Self::mix_columns(state);
            Self::add_round_key(state, &self.round_keys[round]);
        }
        Self::sub_bytes(state);
        Self::shift_rows(state);
        Self::add_round_key(state, &self.round_keys[ROUNDS]);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        let state: &mut [u8; 16] = block.try_into().expect("AES block must be 16 bytes");
        Self::add_round_key(state, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            Self::inv_shift_rows(state);
            Self::inv_sub_bytes(state);
            Self::add_round_key(state, &self.round_keys[round]);
            Self::inv_mix_columns(state);
        }
        Self::inv_shift_rows(state);
        Self::inv_sub_bytes(state);
        Self::add_round_key(state, &self.round_keys[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_spot_values() {
        let (sbox, inv) = sboxes();
        // Well-known anchor values from FIPS 197 Figure 7.
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7c);
        assert_eq!(sbox[0x53], 0xed);
        assert_eq!(sbox[0xff], 0x16);
        for i in 0..=255usize {
            assert_eq!(inv[sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let mut block: [u8; 16] = from_hex("3243f6a8885a308d313198a2e0370734")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes128::new(&key).unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn wrong_key_length_rejected() {
        assert!(matches!(
            Aes128::new(&[0u8; 15]),
            Err(CryptoError::KeyLength {
                expected: 16,
                actual: 15
            })
        ));
        assert!(matches!(
            Aes128::new(&[0u8; 32]),
            Err(CryptoError::KeyLength {
                expected: 16,
                actual: 32
            })
        ));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_keys() {
        for seed in 0..32u8 {
            let key = [seed; 16];
            let aes = Aes128::from_key(&key);
            let mut block = [seed.wrapping_mul(7); 16];
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn debug_does_not_leak_round_keys() {
        let aes = Aes128::from_key(&[0x42; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("66")); // first round-key byte patterns absent
    }
}
