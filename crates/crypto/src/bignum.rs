//! Fixed-width 384-bit unsigned integers and modular arithmetic.
//!
//! secp160r1 needs 160-bit field elements and a 161-bit group order; all
//! intermediate products therefore fit comfortably in 384 bits (and the
//! widening multiply returns a full 768-bit product anyway). The
//! representation is twelve little-endian `u32` limbs — the natural word
//! size of the 32-bit MCUs the paper targets, which keeps the operation
//! counts representative of what a Siskiyou Peak-class core would execute.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::bignum::U384;
//!
//! let a = U384::from_u64(10);
//! let b = U384::from_u64(3);
//! let m = U384::from_u64(7);
//! assert_eq!(a.mul_mod(&b, &m), U384::from_u64(2)); // 30 mod 7
//! ```

use std::cmp::Ordering;
use std::fmt;

/// Number of 32-bit limbs.
pub const LIMBS: usize = 12;

/// A 384-bit unsigned integer (twelve little-endian `u32` limbs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U384 {
    limbs: [u32; LIMBS],
}

impl fmt::Debug for U384 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U384(0x{})", self.to_be_hex_trimmed())
    }
}

impl fmt::Display for U384 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_be_hex_trimmed())
    }
}

impl Ord for U384 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U384 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl U384 {
    /// The value 0.
    pub const ZERO: U384 = U384 { limbs: [0; LIMBS] };

    /// The value 1.
    pub const ONE: U384 = {
        let mut limbs = [0u32; LIMBS];
        limbs[0] = 1;
        U384 { limbs }
    };

    /// Builds a value from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = [0u32; LIMBS];
        limbs[0] = v as u32;
        limbs[1] = (v >> 32) as u32;
        U384 { limbs }
    }

    /// Parses a big-endian hex string (no `0x` prefix, up to 96 digits).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters or strings longer than 96 digits; this
    /// constructor exists for compile-time curve constants and tests.
    #[must_use]
    pub fn from_be_hex(s: &str) -> Self {
        assert!(s.len() <= 2 * LIMBS * 4, "hex literal too long for U384");
        let mut limbs = [0u32; LIMBS];
        for (i, c) in s.bytes().rev().enumerate() {
            let nibble = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => panic!("invalid hex digit {:?}", c as char),
            } as u32;
            limbs[i / 8] |= nibble << (4 * (i % 8));
        }
        U384 { limbs }
    }

    /// Builds a value from big-endian bytes (at most 48).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 48`.
    #[must_use]
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= LIMBS * 4, "too many bytes for U384");
        let mut limbs = [0u32; LIMBS];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 4] |= (b as u32) << (8 * (i % 4));
        }
        U384 { limbs }
    }

    /// Serializes to 48 big-endian bytes.
    #[must_use]
    pub fn to_be_bytes(&self) -> [u8; LIMBS * 4] {
        let mut out = [0u8; LIMBS * 4];
        for (i, limb) in self.limbs.iter().enumerate() {
            let be = limb.to_be_bytes();
            let start = (LIMBS - 1 - i) * 4;
            out[start..start + 4].copy_from_slice(&be);
        }
        out
    }

    /// Serializes the low `n` bytes big-endian (for fixed-width wire fields).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n` bytes.
    #[must_use]
    pub fn to_be_bytes_sized(&self, n: usize) -> Vec<u8> {
        let full = self.to_be_bytes();
        let skip = full.len() - n;
        assert!(
            full[..skip].iter().all(|&b| b == 0),
            "value does not fit in {n} bytes"
        );
        full[skip..].to_vec()
    }

    fn to_be_hex_trimmed(self) -> String {
        let s: String = self
            .to_be_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let trimmed = s.trim_start_matches('0');
        if trimmed.is_empty() {
            "0".to_string()
        } else {
            trimmed.to_string()
        }
    }

    /// `true` iff the value is 0.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// `true` iff the value is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs[0] & 1 == 0
    }

    /// Returns bit `i` (0 = least significant).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        if i >= LIMBS * 32 {
            return false;
        }
        (self.limbs[i / 32] >> (i % 32)) & 1 == 1
    }

    /// Number of significant bits (0 for the value 0).
    #[must_use]
    pub fn bits(&self) -> usize {
        for i in (0..LIMBS).rev() {
            if self.limbs[i] != 0 {
                return i * 32 + (32 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Addition with carry-out.
    #[must_use]
    pub fn overflowing_add(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u32; LIMBS];
        let mut carry = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let sum = self.limbs[i] as u64 + other.limbs[i] as u64 + carry;
            *slot = sum as u32;
            carry = sum >> 32;
        }
        (U384 { limbs: out }, carry != 0)
    }

    /// Subtraction with borrow-out.
    #[must_use]
    pub fn overflowing_sub(&self, other: &Self) -> (Self, bool) {
        let mut out = [0u32; LIMBS];
        let mut borrow = 0i64;
        for (i, slot) in out.iter_mut().enumerate() {
            let diff = self.limbs[i] as i64 - other.limbs[i] as i64 - borrow;
            if diff < 0 {
                *slot = (diff + (1i64 << 32)) as u32;
                borrow = 1;
            } else {
                *slot = diff as u32;
                borrow = 0;
            }
        }
        (U384 { limbs: out }, borrow != 0)
    }

    /// Wrapping subtraction (callers must know `self >= other`).
    #[must_use]
    pub fn wrapping_sub(&self, other: &Self) -> Self {
        self.overflowing_sub(other).0
    }

    /// Wrapping addition (callers must know the sum fits).
    #[must_use]
    pub fn wrapping_add(&self, other: &Self) -> Self {
        self.overflowing_add(other).0
    }

    /// Logical right shift by one bit.
    #[must_use]
    pub fn shr1(&self) -> Self {
        let mut out = [0u32; LIMBS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.limbs[i] >> 1;
            if i + 1 < LIMBS {
                *slot |= self.limbs[i + 1] << 31;
            }
        }
        U384 { limbs: out }
    }

    /// Widening multiplication: returns `(low, high)` halves of the 768-bit
    /// product.
    #[must_use]
    pub fn widening_mul(&self, other: &Self) -> (Self, Self) {
        let mut prod = [0u64; 2 * LIMBS];
        for i in 0..LIMBS {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry = 0u64;
            for j in 0..LIMBS {
                let t = prod[i + j] + self.limbs[i] as u64 * other.limbs[j] as u64 + carry;
                prod[i + j] = t & 0xffff_ffff;
                carry = t >> 32;
            }
            prod[i + LIMBS] += carry;
        }
        let mut lo = [0u32; LIMBS];
        let mut hi = [0u32; LIMBS];
        for i in 0..LIMBS {
            lo[i] = prod[i] as u32;
            hi[i] = prod[i + LIMBS] as u32;
        }
        (U384 { limbs: lo }, U384 { limbs: hi })
    }

    /// Reduces the 768-bit value `(hi ‖ lo)` modulo `m` by binary long
    /// division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn reduce_wide(lo: &Self, hi: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulus must be non-zero");
        let total_bits = if hi.is_zero() {
            lo.bits()
        } else {
            LIMBS * 32 + hi.bits()
        };
        let mut r = U384::ZERO;
        for i in (0..total_bits).rev() {
            // r = (r << 1) | bit(i); r stays < 2m <= 2^385? No: r < m before
            // shift, so r<<1 < 2m which can exceed 384 bits only if m has 384
            // bits; our moduli are < 2^161 so this never overflows.
            let mut shifted = r.wrapping_add(&r);
            let bit = if i < LIMBS * 32 {
                lo.bit(i)
            } else {
                hi.bit(i - LIMBS * 32)
            };
            if bit {
                shifted = shifted.wrapping_add(&U384::ONE);
            }
            if shifted >= *m {
                shifted = shifted.wrapping_sub(m);
            }
            r = shifted;
        }
        r
    }

    /// `self mod m`.
    #[must_use]
    pub fn rem(&self, m: &Self) -> Self {
        Self::reduce_wide(self, &U384::ZERO, m)
    }

    /// `(self + other) mod m`; operands must already be `< m`.
    #[must_use]
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        debug_assert!(self < m && other < m);
        let (sum, carry) = self.overflowing_add(other);
        // Our moduli are far below 2^384 so carry can only occur on misuse.
        debug_assert!(!carry);
        if sum >= *m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// `(self - other) mod m`; operands must already be `< m`.
    #[must_use]
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        debug_assert!(self < m && other < m);
        if self >= other {
            self.wrapping_sub(other)
        } else {
            m.wrapping_sub(other).wrapping_add(self)
        }
    }

    /// `(self * other) mod m`.
    #[must_use]
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        let (lo, hi) = self.widening_mul(other);
        Self::reduce_wide(&lo, &hi, m)
    }

    /// Modular inverse by the binary extended-GCD algorithm.
    ///
    /// Returns `None` if `self` is zero or shares a factor with `m`.
    /// `m` must be odd (all our moduli are odd primes).
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or `< 3`.
    #[must_use]
    pub fn inv_mod(&self, m: &Self) -> Option<Self> {
        assert!(
            !m.is_even() && *m > U384::ONE,
            "modulus must be odd and > 1"
        );
        if self.is_zero() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        let mut u = a;
        let mut v = *m;
        let mut x1 = U384::ONE;
        let mut x2 = U384::ZERO;

        while u != U384::ONE && v != U384::ONE {
            while u.is_even() {
                u = u.shr1();
                x1 = if x1.is_even() {
                    x1.shr1()
                } else {
                    x1.wrapping_add(m).shr1()
                };
            }
            while v.is_even() {
                v = v.shr1();
                x2 = if x2.is_even() {
                    x2.shr1()
                } else {
                    x2.wrapping_add(m).shr1()
                };
            }
            if u >= v {
                u = u.wrapping_sub(&v);
                x1 = x1.sub_mod(&x2, m);
            } else {
                v = v.wrapping_sub(&u);
                x2 = x2.sub_mod(&x1, m);
            }
            // gcd(a, m) != 1 drives one side to zero (e.g. u == v just
            // before the subtraction); without this break the even-stripping
            // loop would spin on zero forever.
            if u.is_zero() || v.is_zero() {
                break;
            }
        }
        let inv = if u == U384::ONE { x1 } else { x2 };
        // gcd != 1 shows up as u and v both reaching a non-one fixed point;
        // validate by multiplication instead of tracking the gcd explicitly.
        if a.mul_mod(&inv, m) == U384::ONE {
            Some(inv)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let v = U384::from_be_hex("ffffffffffffffffffffffffffffffff7fffffff");
        assert_eq!(format!("{v}"), "0xffffffffffffffffffffffffffffffff7fffffff");
        assert_eq!(U384::from_be_bytes(&v.to_be_bytes()), v);
    }

    #[test]
    fn from_u64_and_ordering() {
        assert!(U384::from_u64(5) > U384::from_u64(4));
        assert!(U384::ZERO < U384::ONE);
        assert_eq!(U384::from_u64(0), U384::ZERO);
        let big = U384::from_be_hex("0100000000000000000000000000000000");
        assert!(big > U384::from_u64(u64::MAX));
    }

    #[test]
    fn add_sub_with_carries() {
        let max64 = U384::from_u64(u64::MAX);
        let (sum, carry) = max64.overflowing_add(&U384::ONE);
        assert!(!carry);
        assert_eq!(sum, U384::from_be_hex("010000000000000000"));
        let (diff, borrow) = U384::ZERO.overflowing_sub(&U384::ONE);
        assert!(borrow);
        // Two's-complement wraparound: all limbs 0xffffffff.
        assert_eq!(diff.bits(), 384);
    }

    #[test]
    fn widening_mul_known_product() {
        let a = U384::from_u64(u64::MAX);
        let (lo, hi) = a.widening_mul(&a);
        assert!(hi.is_zero());
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expected = U384::from_be_hex("fffffffffffffffe0000000000000001");
        assert_eq!(lo, expected);
    }

    #[test]
    fn widening_mul_fills_high_half() {
        // 2^200 * 2^200 = 2^400, which spills into the high half.
        let a = U384::from_be_hex(&format!("1{}", "0".repeat(50)));
        let (lo, hi) = a.widening_mul(&a);
        assert!(lo.is_zero());
        assert_eq!(hi, U384::from_be_hex(&format!("1{}", "0".repeat(4)))); // 2^400 >> 384 = 2^16
    }

    #[test]
    fn rem_and_reduce() {
        let a = U384::from_u64(1_000_000_007);
        let m = U384::from_u64(97);
        assert_eq!(a.rem(&m), U384::from_u64(1_000_000_007 % 97));
        assert_eq!(U384::ZERO.rem(&m), U384::ZERO);
    }

    #[test]
    fn modular_ops_small_prime() {
        let m = U384::from_u64(101);
        let a = U384::from_u64(77);
        let b = U384::from_u64(55);
        assert_eq!(a.add_mod(&b, &m), U384::from_u64((77 + 55) % 101));
        assert_eq!(a.sub_mod(&b, &m), U384::from_u64(22));
        assert_eq!(b.sub_mod(&a, &m), U384::from_u64(79));
        assert_eq!(a.mul_mod(&b, &m), U384::from_u64(77 * 55 % 101));
    }

    #[test]
    fn inverse_small_prime() {
        let m = U384::from_u64(101);
        for x in 1..101u64 {
            let xv = U384::from_u64(x);
            let inv = xv.inv_mod(&m).expect("invertible");
            assert_eq!(xv.mul_mod(&inv, &m), U384::ONE, "x = {x}");
        }
        assert_eq!(U384::ZERO.inv_mod(&m), None);
    }

    #[test]
    fn inverse_composite_detects_gcd() {
        let m = U384::from_u64(15);
        assert_eq!(U384::from_u64(5).inv_mod(&m), None);
        assert_eq!(U384::from_u64(3).inv_mod(&m), None);
        let inv2 = U384::from_u64(2).inv_mod(&m).unwrap();
        assert_eq!(U384::from_u64(2).mul_mod(&inv2, &m), U384::ONE);
    }

    #[test]
    fn inverse_large_prime() {
        // secp160r1 field prime.
        let p = U384::from_be_hex("ffffffffffffffffffffffffffffffff7fffffff");
        let a = U384::from_be_hex("4a96b5688ef573284664698968c38bb913cbfc82");
        let inv = a.inv_mod(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), U384::ONE);
    }

    #[test]
    fn bit_and_bits() {
        let v = U384::from_u64(0b1010);
        assert!(v.bit(1) && v.bit(3));
        assert!(!v.bit(0) && !v.bit(2));
        assert_eq!(v.bits(), 4);
        assert_eq!(U384::ZERO.bits(), 0);
        assert!(!v.bit(100_000));
    }

    #[test]
    fn sized_serialization() {
        let v = U384::from_u64(0xdead_beef);
        assert_eq!(v.to_be_bytes_sized(4), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(v.to_be_bytes_sized(6), vec![0, 0, 0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sized_serialization_overflow_panics() {
        let _ = U384::from_u64(0x1_0000).to_be_bytes_sized(2);
    }
}
