//! ECDSA over secp160r1.
//!
//! The paper's Table 1 reports 183.464 ms per signature and 170.907 ms per
//! verification on the 24 MHz Siskiyou Peak — the numbers that justify
//! ruling public-key request authentication out (§4.1: "a supposed way of
//! preventing DoS attacks can itself result in DoS").
//!
//! Nonces are derived deterministically from the private key and message
//! digest with [`HmacDrbg`] (an RFC 6979-style construction), so signing is
//! reproducible and never needs an entropy source inside the simulation.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::ecdsa::SigningKey;
//!
//! # fn main() -> Result<(), proverguard_crypto::CryptoError> {
//! let key = SigningKey::from_seed(b"verifier identity seed");
//! let signature = key.sign(b"attestation request 42");
//! key.verifying_key().verify(b"attestation request 42", &signature)?;
//! assert!(key.verifying_key().verify(b"tampered", &signature).is_err());
//! # Ok(())
//! # }
//! ```

use crate::bignum::U384;
use crate::drbg::HmacDrbg;
use crate::ecc::{Curve, Point};
use crate::error::CryptoError;
use crate::sha1::Sha1;

/// Serialized signature component width in bytes (the 161-bit order needs 21).
pub const COMPONENT_SIZE: usize = 21;

/// An ECDSA signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    r: U384,
    s: U384,
}

impl Signature {
    /// The `r` component.
    #[must_use]
    pub fn r(&self) -> &U384 {
        &self.r
    }

    /// The `s` component.
    #[must_use]
    pub fn s(&self) -> &U384 {
        &self.s
    }

    /// Serializes as `r ‖ s`, 21 bytes each, big-endian.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; COMPONENT_SIZE * 2] {
        let mut out = [0u8; COMPONENT_SIZE * 2];
        out[..COMPONENT_SIZE].copy_from_slice(&self.r.to_be_bytes_sized(COMPONENT_SIZE));
        out[COMPONENT_SIZE..].copy_from_slice(&self.s.to_be_bytes_sized(COMPONENT_SIZE));
        out
    }

    /// Parses a signature serialized by [`Signature::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSignature`] if the slice length is
    /// wrong (range checks happen during verification).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != COMPONENT_SIZE * 2 {
            return Err(CryptoError::MalformedSignature);
        }
        Ok(Signature {
            r: U384::from_be_bytes(&bytes[..COMPONENT_SIZE]),
            s: U384::from_be_bytes(&bytes[COMPONENT_SIZE..]),
        })
    }
}

/// A secp160r1 private key plus its precomputed public point.
#[derive(Clone)]
pub struct SigningKey {
    curve: Curve,
    d: U384,
    public: Point,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey")
            .field("d", &"<redacted>")
            .finish()
    }
}

impl SigningKey {
    /// Derives a key pair deterministically from `seed`.
    ///
    /// The scalar is produced by an HMAC-DRBG personalized for key
    /// generation and reduced into `[1, n-1]`.
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let curve = Curve::secp160r1();
        let mut drbg = HmacDrbg::new(seed, b"proverguard-ecdsa-keygen");
        let d = loop {
            let candidate = U384::from_be_bytes(&drbg.generate(COMPONENT_SIZE)).rem(curve.order());
            if !candidate.is_zero() {
                break candidate;
            }
        };
        let public = curve.scalar_mul(&d, &curve.generator());
        SigningKey { curve, d, public }
    }

    /// Constructs a key from an explicit scalar.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::ScalarOutOfRange`] unless `0 < d < n`.
    pub fn from_scalar(d: U384) -> Result<Self, CryptoError> {
        let curve = Curve::secp160r1();
        if d.is_zero() || &d >= curve.order() {
            return Err(CryptoError::ScalarOutOfRange);
        }
        let public = curve.scalar_mul(&d, &curve.generator());
        Ok(SigningKey { curve, d, public })
    }

    /// The corresponding public (verification) key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            curve: self.curve.clone(),
            public: self.public,
        }
    }

    /// Signs `message` (hashed internally with SHA-1).
    ///
    /// # Panics
    ///
    /// Panics only if the deterministic nonce stream somehow yields
    /// thousands of consecutive invalid nonces, which is cryptographically
    /// impossible for a correct implementation.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let _span = proverguard_telemetry::trace::span("crypto.ecdsa.sign");
        let e = message_scalar(message, self.curve.order());

        // RFC 6979-flavoured deterministic nonce: seed the DRBG with the
        // private scalar and the message digest.
        let mut seed = self.d.to_be_bytes_sized(COMPONENT_SIZE);
        seed.extend_from_slice(&Sha1::digest(message));
        let mut drbg = HmacDrbg::new(&seed, b"proverguard-ecdsa-nonce");

        for _ in 0..10_000 {
            let k = U384::from_be_bytes(&drbg.generate(COMPONENT_SIZE)).rem(self.curve.order());
            if k.is_zero() {
                continue;
            }
            let Point::Affine { x, .. } = self.curve.scalar_mul(&k, &self.curve.generator()) else {
                continue;
            };
            let r = x.rem(self.curve.order());
            if r.is_zero() {
                continue;
            }
            let k_inv = k.inv_mod(self.curve.order()).expect("k in [1, n-1]");
            let rd = r.mul_mod(&self.d, self.curve.order());
            let s = k_inv.mul_mod(&e.add_mod(&rd, self.curve.order()), self.curve.order());
            if s.is_zero() {
                continue;
            }
            return Signature { r, s };
        }
        unreachable!("deterministic nonce stream exhausted");
    }
}

/// A secp160r1 public key.
#[derive(Debug, Clone)]
pub struct VerifyingKey {
    curve: Curve,
    public: Point,
}

impl VerifyingKey {
    /// Constructs a verifying key from an explicit point.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::PointNotOnCurve`] if the point fails
    /// validation (or is the identity).
    pub fn from_point(public: Point) -> Result<Self, CryptoError> {
        let curve = Curve::secp160r1();
        if public.is_infinity() {
            return Err(CryptoError::PointNotOnCurve);
        }
        curve.validate_point(&public)?;
        Ok(VerifyingKey { curve, public })
    }

    /// The public point.
    #[must_use]
    pub fn point(&self) -> &Point {
        &self.public
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// - [`CryptoError::MalformedSignature`] if `r` or `s` is outside
    ///   `[1, n-1]`.
    /// - [`CryptoError::BadSignature`] if the signature does not verify.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let _span = proverguard_telemetry::trace::span("crypto.ecdsa.verify");
        let n = self.curve.order();
        let in_range = |v: &U384| !v.is_zero() && v < n;
        if !in_range(&signature.r) || !in_range(&signature.s) {
            return Err(CryptoError::MalformedSignature);
        }
        let e = message_scalar(message, n);
        let w = signature
            .s
            .inv_mod(n)
            .ok_or(CryptoError::MalformedSignature)?;
        let u1 = e.mul_mod(&w, n);
        let u2 = signature.r.mul_mod(&w, n);
        let point = self.curve.add(
            &self.curve.scalar_mul(&u1, &self.curve.generator()),
            &self.curve.scalar_mul(&u2, &self.public),
        );
        let Point::Affine { x, .. } = point else {
            return Err(CryptoError::BadSignature);
        };
        if x.rem(n) == signature.r {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

/// Converts a message into the ECDSA scalar `e`: SHA-1 digest interpreted
/// big-endian. 160 digest bits < 161 order bits, so no truncation is needed
/// for secp160r1; the final `rem` guards the (impossible in practice) case
/// `e >= n`.
fn message_scalar(message: &[u8], n: &U384) -> U384 {
    U384::from_be_bytes(&Sha1::digest(message)).rem(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(b"seed");
        let sig = key.sign(b"hello prover");
        key.verifying_key().verify(b"hello prover", &sig).unwrap();
    }

    #[test]
    fn signing_is_deterministic() {
        let key = SigningKey::from_seed(b"seed");
        assert_eq!(key.sign(b"msg"), key.sign(b"msg"));
        assert_ne!(key.sign(b"msg"), key.sign(b"msg2"));
    }

    #[test]
    fn tampered_message_rejected() {
        let key = SigningKey::from_seed(b"seed");
        let sig = key.sign(b"original");
        assert_eq!(
            key.verifying_key().verify(b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let key_a = SigningKey::from_seed(b"a");
        let key_b = SigningKey::from_seed(b"b");
        let sig = key_a.sign(b"msg");
        assert!(key_b.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn zero_components_rejected() {
        let key = SigningKey::from_seed(b"seed");
        let good = key.sign(b"msg");
        let zero_r = Signature {
            r: U384::ZERO,
            s: *good.s(),
        };
        let zero_s = Signature {
            r: *good.r(),
            s: U384::ZERO,
        };
        assert_eq!(
            key.verifying_key().verify(b"msg", &zero_r),
            Err(CryptoError::MalformedSignature)
        );
        assert_eq!(
            key.verifying_key().verify(b"msg", &zero_s),
            Err(CryptoError::MalformedSignature)
        );
    }

    #[test]
    fn out_of_range_components_rejected() {
        let key = SigningKey::from_seed(b"seed");
        let good = key.sign(b"msg");
        let n = *Curve::secp160r1().order();
        let big = Signature { r: n, s: *good.s() };
        assert_eq!(
            key.verifying_key().verify(b"msg", &big),
            Err(CryptoError::MalformedSignature)
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let key = SigningKey::from_seed(b"seed");
        let sig = key.sign(b"msg");
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes).unwrap(), sig);
        assert!(Signature::from_bytes(&bytes[1..]).is_err());
    }

    #[test]
    fn from_scalar_validates_range() {
        assert!(matches!(
            SigningKey::from_scalar(U384::ZERO),
            Err(CryptoError::ScalarOutOfRange)
        ));
        let n = *Curve::secp160r1().order();
        assert!(matches!(
            SigningKey::from_scalar(n),
            Err(CryptoError::ScalarOutOfRange)
        ));
        let key = SigningKey::from_scalar(U384::from_u64(12345)).unwrap();
        let sig = key.sign(b"m");
        key.verifying_key().verify(b"m", &sig).unwrap();
    }

    #[test]
    fn public_point_validates() {
        let key = SigningKey::from_seed(b"seed");
        let vk = key.verifying_key();
        let rebuilt = VerifyingKey::from_point(*vk.point()).unwrap();
        let sig = key.sign(b"m");
        rebuilt.verify(b"m", &sig).unwrap();
        assert!(VerifyingKey::from_point(Point::Infinity).is_err());
    }
}
