//! Error type shared by the fallible operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
///
/// # Example
///
/// ```
/// use proverguard_crypto::aes::Aes128;
/// use proverguard_crypto::CryptoError;
///
/// let err = Aes128::new(&[0u8; 7]).unwrap_err();
/// assert!(matches!(err, CryptoError::KeyLength { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key of the wrong length was supplied.
    KeyLength {
        /// Length the algorithm expects, in bytes.
        expected: usize,
        /// Length that was provided, in bytes.
        actual: usize,
    },
    /// Input is not a whole number of cipher blocks.
    BlockAlignment {
        /// Cipher block size in bytes.
        block_size: usize,
        /// Offending input length in bytes.
        actual: usize,
    },
    /// An initialization vector of the wrong length was supplied.
    IvLength {
        /// Length the mode expects, in bytes.
        expected: usize,
        /// Length that was provided, in bytes.
        actual: usize,
    },
    /// A scalar or coordinate was out of range for the curve.
    ScalarOutOfRange,
    /// A point failed the curve-equation check.
    PointNotOnCurve,
    /// A signature failed structural validation (r or s out of `[1, n-1]`).
    MalformedSignature,
    /// Signature verification completed but the signature does not match.
    BadSignature,
    /// A MAC comparison failed.
    BadMac,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::KeyLength { expected, actual } => {
                write!(f, "key must be {expected} bytes, got {actual}")
            }
            CryptoError::BlockAlignment { block_size, actual } => {
                write!(
                    f,
                    "input length {actual} is not a multiple of the {block_size}-byte block size"
                )
            }
            CryptoError::IvLength { expected, actual } => {
                write!(f, "iv must be {expected} bytes, got {actual}")
            }
            CryptoError::ScalarOutOfRange => write!(f, "scalar out of range for the curve"),
            CryptoError::PointNotOnCurve => write!(f, "point is not on the curve"),
            CryptoError::MalformedSignature => write!(f, "signature components out of range"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::BadMac => write!(f, "mac verification failed"),
        }
    }
}

impl Error for CryptoError {}
