//! HMAC-SHA1 (RFC 2104).
//!
//! The paper's reference MAC: an attestation response is
//! `HMAC(K_Attest, challenge ‖ memory)`, and a request is authenticated with
//! `HMAC(K_Attest, attreq)`. Table 1 splits its cost into a *fixed* part
//! (the two key pads and the outer hash — 0.340 ms on Siskiyou Peak) and a
//! *per-block* part (one compression per 64 input bytes — 0.092 ms).
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::hmac::HmacSha1;
//!
//! let mut h = HmacSha1::new(b"key");
//! h.update(b"message part 1");
//! h.update(b" and part 2");
//! let tag = h.finalize();
//! assert!(HmacSha1::verify(b"key", b"message part 1 and part 2", &tag));
//! ```

use crate::ct::ct_eq;
use crate::sha1::{Sha1, BLOCK_SIZE, DIGEST_SIZE};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Streaming HMAC-SHA1.
#[derive(Debug, Clone)]
pub struct HmacSha1 {
    inner: Sha1,
    opad_key: [u8; BLOCK_SIZE],
}

impl HmacSha1 {
    /// Creates a MAC instance keyed with `key`.
    ///
    /// Keys longer than the 64-byte block size are first hashed, per RFC 2104.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = Sha1::digest(key);
            key_block[..DIGEST_SIZE].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = key_block;
        let mut opad_key = key_block;
        for i in 0..BLOCK_SIZE {
            ipad_key[i] ^= IPAD;
            opad_key[i] ^= OPAD;
        }

        let mut inner = Sha1::new();
        inner.update(&ipad_key);
        HmacSha1 { inner, opad_key }
    }

    /// Absorbs more message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 20-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_SIZE] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot convenience: `HMAC(key, message)`.
    #[must_use]
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; DIGEST_SIZE] {
        let _span = proverguard_telemetry::trace::span("crypto.hmac_sha1");
        let mut h = HmacSha1::new(key);
        h.update(message);
        h.finalize()
    }

    /// Verifies `tag` against `HMAC(key, message)` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, message), tag)
    }

    /// Number of 64-byte message blocks compressed by the inner hash so far.
    ///
    /// The first block is the ipad-masked key, so `blocks - 1` is the
    /// message-block count the paper's per-block cost applies to.
    #[must_use]
    pub fn blocks_processed(&self) -> u64 {
        self.inner.blocks_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::to_hex;

    fn check(key: &[u8], data: &[u8], expected_hex: &str) {
        assert_eq!(to_hex(&HmacSha1::mac(key, data)), expected_hex);
    }

    // RFC 2202 test cases 1-7.
    #[test]
    fn rfc2202_case1() {
        check(
            &[0x0b; 20],
            b"Hi There",
            "b617318655057264e28bc0b6fb378c8ef146be00",
        );
    }

    #[test]
    fn rfc2202_case2() {
        check(
            b"Jefe",
            b"what do ya want for nothing?",
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        );
    }

    #[test]
    fn rfc2202_case3() {
        check(
            &[0xaa; 20],
            &[0xdd; 50],
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3",
        );
    }

    #[test]
    fn rfc2202_case4() {
        let key: Vec<u8> = (1..=25).collect();
        check(
            &key,
            &[0xcd; 50],
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da",
        );
    }

    #[test]
    fn rfc2202_case5() {
        check(
            &[0x0c; 20],
            b"Test With Truncation",
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04",
        );
    }

    #[test]
    fn rfc2202_case6_long_key() {
        check(
            &[0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "aa4ae5e15272d00e95705637ce8a3b55ed402112",
        );
    }

    #[test]
    fn rfc2202_case7_long_key_long_data() {
        check(
            &[0xaa; 80],
            b"Test Using Larger Than Block-Size Key and Larger Than One Block-Size Data",
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91",
        );
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let tag = HmacSha1::mac(b"k", b"m");
        assert!(HmacSha1::verify(b"k", b"m", &tag));
        assert!(!HmacSha1::verify(b"k", b"m2", &tag));
        assert!(!HmacSha1::verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha1::verify(b"k", b"m", &bad));
        assert!(!HmacSha1::verify(b"k", b"m", &tag[..19]));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = HmacSha1::new(b"key");
        h.update(b"abc");
        h.update(b"def");
        assert_eq!(h.finalize(), HmacSha1::mac(b"key", b"abcdef"));
    }
}
