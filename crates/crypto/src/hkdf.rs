//! HKDF over HMAC-SHA1 (RFC 5869 construction).
//!
//! The session layer derives per-session MAC keys from the long-term
//! device key and a handshake transcript. Deriving — rather than reusing
//! the device key on session frames — keeps the long-term key's usage
//! surface fixed (it signs attestation requests/responses and seals NV
//! records, nothing else) and makes every session's frame keys worthless
//! outside that session.
//!
//! The construction is the RFC 5869 extract/expand pair instantiated with
//! the crate's own [`HmacSha1`] — no new primitive, no new dependency:
//!
//! - [`extract`]`(salt, ikm)` = `HMAC(salt, ikm)` → a 20-byte PRK.
//! - [`expand`]`(prk, info, len)` = the counter-chained HMAC stream
//!   `T(1) ‖ T(2) ‖ …` truncated to `len` bytes.
//! - [`expand_label`] wraps `expand` with a versioned, length-prefixed
//!   label encoding so that distinct uses can never collide on `info`
//!   bytes (the same trick TLS 1.3 uses with `HkdfLabel`).
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::hkdf;
//!
//! let prk = hkdf::extract(b"transcript bytes", b"device key bytes");
//! let k1 = hkdf::expand_label(&prk, b"c2p mac", b"", 16);
//! let k2 = hkdf::expand_label(&prk, b"p2c mac", b"", 16);
//! assert_ne!(k1, k2);
//! ```

use crate::hmac::HmacSha1;
use crate::sha1::DIGEST_SIZE;

/// Domain-separation prefix baked into every [`expand_label`] `info`
/// encoding. Versioned so a future schedule change cannot silently
/// collide with v1 derivations.
pub const LABEL_PREFIX: &[u8] = b"proverguard hkdf v1";

/// Maximum output length of one [`expand`] call: 255 blocks of the
/// 20-byte HMAC-SHA1 output, per RFC 5869.
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_SIZE;

/// HKDF-Extract: concentrates input keying material `ikm` into a
/// fixed-size pseudorandom key, keyed by `salt`.
///
/// Per RFC 5869 this is exactly `HMAC(salt, ikm)`. The session layer
/// passes the handshake transcript as the salt, so two handshakes that
/// differ in a single bit produce unrelated PRKs even under the same
/// device key.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_SIZE] {
    HmacSha1::mac(salt, ikm)
}

/// HKDF-Expand: stretches `prk` into `len` output bytes bound to `info`.
///
/// `T(0) = empty`, `T(n) = HMAC(prk, T(n-1) ‖ info ‖ n)`; output is the
/// concatenation truncated to `len`.
///
/// # Panics
///
/// Panics if `len > MAX_OUTPUT_LEN` (255 · 20 bytes), the RFC 5869
/// limit. Session derivations ask for at most 20 bytes.
#[must_use]
pub fn expand(prk: &[u8; DIGEST_SIZE], info: &[u8], len: usize) -> Vec<u8> {
    assert!(
        len <= MAX_OUTPUT_LEN,
        "hkdf expand output capped at {MAX_OUTPUT_LEN} bytes"
    );
    let mut out = Vec::with_capacity(len);
    let mut block = [0u8; DIGEST_SIZE];
    let mut counter = 0u8;
    while out.len() < len {
        counter += 1;
        let mut h = HmacSha1::new(prk);
        if counter > 1 {
            h.update(&block);
        }
        h.update(info);
        h.update(&[counter]);
        block = h.finalize();
        let take = (len - out.len()).min(DIGEST_SIZE);
        out.extend_from_slice(&block[..take]);
    }
    out
}

/// Labeled [`expand`]: derives `len` bytes under an unambiguous `info`
/// encoding `LABEL_PREFIX ‖ len(label) ‖ label ‖ context`.
///
/// The one-byte length prefix makes the encoding injective — no choice
/// of `label`/`context` pair can alias another — so every named
/// derivation lives in its own domain.
///
/// # Panics
///
/// Panics if `label` exceeds 255 bytes (the length prefix is one byte)
/// or `len > MAX_OUTPUT_LEN`.
#[must_use]
pub fn expand_label(prk: &[u8; DIGEST_SIZE], label: &[u8], context: &[u8], len: usize) -> Vec<u8> {
    assert!(label.len() <= u8::MAX as usize, "label capped at 255 bytes");
    let mut info = Vec::with_capacity(LABEL_PREFIX.len() + 1 + label.len() + context.len());
    info.extend_from_slice(LABEL_PREFIX);
    info.push(label.len() as u8);
    info.extend_from_slice(label);
    info.extend_from_slice(context);
    expand(prk, &info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::to_hex;

    // RFC 5869 Appendix A.4: SHA-1 basic test case.
    #[test]
    fn rfc5869_case4_sha1_basic() {
        let ikm = [0x0b; 11];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(to_hex(&prk), "9b6c18c432a7bf8f0e71c8eb88f4b30baa2ba243");
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "085a01ea1b10f36933068b56efa5ad81a4f14b822f5b091568a9cdd4f155fda2c22e422478d305f3f896"
        );
    }

    // RFC 5869 Appendix A.5: longer inputs/outputs.
    #[test]
    fn rfc5869_case5_sha1_long() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(to_hex(&prk), "8adae09a2a307059478d309b26c4115a224cfaf6");
        let okm = expand(&prk, &info, 82);
        assert_eq!(
            to_hex(&okm),
            "0bd770a74d1160f7c9f12cd5912a06ebff6adcae899d92191fe4305673ba2ffe8fa3f1a4e5ad79f3f334\
             b3b202b2173c486ea37ce3d397ed034c7f9dfeb15c5e927336d0441f4c4300e2cff0d0900b52d3b4"
        );
    }

    // RFC 5869 Appendix A.6: zero-length salt and info.
    #[test]
    fn rfc5869_case6_sha1_no_salt_no_info() {
        let ikm = [0x0b; 22];
        let prk = extract(&[], &ikm);
        assert_eq!(to_hex(&prk), "da8c8a73c7fa77288ec6f5e7c297786aa0d32d01");
        let okm = expand(&prk, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "0ac1af7002b3d761d1e55298da9d0506b9ae52057220a306e07b6b87e8df21d0ea00033de03984d34918"
        );
    }

    #[test]
    fn expand_is_prefix_consistent() {
        // Asking for fewer bytes yields a prefix of the longer stream.
        let prk = extract(b"salt", b"ikm");
        let long = expand(&prk, b"info", 50);
        for len in 0..=50 {
            assert_eq!(expand(&prk, b"info", len), long[..len]);
        }
    }

    #[test]
    fn labels_are_domain_separated() {
        let prk = extract(b"transcript", b"key");
        // Moving a byte between label and context must change the output:
        // the length prefix makes the encoding injective.
        let a = expand_label(&prk, b"ab", b"c", 20);
        let b = expand_label(&prk, b"a", b"bc", 20);
        assert_ne!(a, b);
        // And distinct labels never collide.
        assert_ne!(
            expand_label(&prk, b"c2p mac", b"", 16),
            expand_label(&prk, b"p2c mac", b"", 16)
        );
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversize_output_panics() {
        let prk = extract(b"s", b"i");
        let _ = expand(&prk, b"", MAX_OUTPUT_LEN + 1);
    }
}
