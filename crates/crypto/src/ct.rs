//! Constant-time helpers.
//!
//! MAC verification on the prover must not leak how many tag bytes matched:
//! a byte-by-byte early-exit comparison would let an external adversary
//! forge an authenticated attestation request one byte at a time.

/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `true` iff the slices have equal length and equal contents. The
/// running time depends only on the lengths, never on where the first
/// difference occurs.
///
/// # Example
///
/// ```
/// use proverguard_crypto::ct::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tag-longer"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Selects `a` if `choice` is `true`, else `b`, without a data-dependent branch.
///
/// # Example
///
/// ```
/// use proverguard_crypto::ct::ct_select_u32;
///
/// assert_eq!(ct_select_u32(true, 1, 2), 1);
/// assert_eq!(ct_select_u32(false, 1, 2), 2);
/// ```
#[must_use]
pub fn ct_select_u32(choice: bool, a: u32, b: u32) -> u32 {
    let mask = (choice as u32).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[0xde, 0xad], &[0xde, 0xad]));
    }

    #[test]
    fn different_lengths_compare_unequal() {
        assert!(!ct_eq(&[1], &[1, 2]));
        assert!(!ct_eq(&[1, 2], &[]));
    }

    #[test]
    fn difference_anywhere_is_detected() {
        let base = [7u8; 32];
        for i in 0..32 {
            let mut other = base;
            other[i] ^= 0x80;
            assert!(!ct_eq(&base, &other), "difference at byte {i} missed");
        }
    }

    #[test]
    fn select_picks_correct_branch() {
        assert_eq!(ct_select_u32(true, 0xffff_ffff, 0), 0xffff_ffff);
        assert_eq!(ct_select_u32(false, 0xffff_ffff, 0), 0);
    }
}
