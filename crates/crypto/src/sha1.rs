//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 is the hash underlying the paper's HMAC measurements (Table 1) and
//! the attestation MAC computed over the prover's writable memory. The
//! implementation is a straightforward streaming Merkle–Damgård construction
//! over the 512-bit (64-byte) compression function — the same 64-byte block
//! granularity the paper uses when it computes
//! `(512 KB / 64 B) · t_block + t_fix` for a whole-memory MAC.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::sha1::Sha1;
//!
//! let digest = Sha1::digest(b"abc");
//! assert_eq!(
//!     proverguard_crypto::sha1::to_hex(&digest),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! ```

/// Digest size in bytes.
pub const DIGEST_SIZE: usize = 20;

/// Compression-function block size in bytes.
pub const BLOCK_SIZE: usize = 64;

const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// Streaming SHA-1 hasher.
///
/// # Example
///
/// ```
/// use proverguard_crypto::sha1::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha1::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_SIZE],
    buffered: usize,
    total_len: u64,
    /// Number of 64-byte compression-function invocations so far. Exposed so
    /// the MCU cycle model can charge a per-block cost exactly as the paper's
    /// Table 1 does.
    blocks_processed: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            buffer: [0; BLOCK_SIZE],
            buffered: 0,
            total_len: 0,
            blocks_processed: 0,
        }
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST_SIZE] {
        let _span = proverguard_telemetry::trace::span("crypto.sha1");
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (BLOCK_SIZE - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= BLOCK_SIZE {
            let (block, rest) = data.split_at(BLOCK_SIZE);
            let mut b = [0u8; BLOCK_SIZE];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Pads, compresses the final block(s) and returns the digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the block.
        let mut pad = [0u8; BLOCK_SIZE * 2];
        pad[0] = 0x80;
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            BLOCK_SIZE + 56 - self.buffered
        };
        // `update` must not re-count padding bytes into total_len; splice manually.
        let mut tail = [0u8; BLOCK_SIZE * 2];
        tail[..pad_len].copy_from_slice(&pad[..pad_len]);
        tail[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        let tail_len = pad_len + 8;

        let mut offset = 0;
        while offset < tail_len {
            let take = (BLOCK_SIZE - self.buffered).min(tail_len - offset);
            self.buffer[self.buffered..self.buffered + take]
                .copy_from_slice(&tail[offset..offset + take]);
            self.buffered += take;
            offset += take;
            if self.buffered == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        debug_assert_eq!(self.buffered, 0);

        let mut out = [0u8; DIGEST_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Number of 64-byte blocks compressed so far (before finalization padding).
    #[must_use]
    pub fn blocks_processed(&self) -> u64 {
        self.blocks_processed
    }

    fn compress(&mut self, block: &[u8; BLOCK_SIZE]) {
        self.blocks_processed += 1;
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Renders a digest (or any byte slice) as lowercase hex.
///
/// # Example
///
/// ```
/// assert_eq!(proverguard_crypto::sha1::to_hex(&[0xde, 0xad]), "dead");
/// ```
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        to_hex(&Sha1::digest(data))
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex_digest(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expected = Sha1::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn block_counter_counts_compressions() {
        let mut h = Sha1::new();
        h.update(&[0u8; 64 * 3]);
        assert_eq!(h.blocks_processed(), 3);
        h.update(&[0u8; 10]);
        assert_eq!(h.blocks_processed(), 3);
    }

    #[test]
    fn exact_block_boundary_padding() {
        // 55, 56, 63, 64, 65 bytes exercise every padding branch.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xa5u8; len];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
