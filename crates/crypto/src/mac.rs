//! A unifying MAC abstraction over the paper's symmetric primitives.
//!
//! §4.1 compares four ways to authenticate an attestation request:
//! SHA1-HMAC, AES-128 CBC-MAC, Speck 64/128 CBC-MAC, and ECDSA. The
//! attestation layer selects among the symmetric three via
//! [`MacAlgorithm`]; ECDSA is kept separate because it is asymmetric (and
//! because the paper rules it out).
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::mac::{MacAlgorithm, MacKey};
//!
//! # fn main() -> Result<(), proverguard_crypto::CryptoError> {
//! let key = MacKey::new(MacAlgorithm::Speck64Cbc, &[9u8; 16])?;
//! let tag = key.compute(b"attreq");
//! assert!(key.verify(b"attreq", &tag));
//! assert!(!key.verify(b"forged", &tag));
//! # Ok(())
//! # }
//! ```

use crate::aes::Aes128;
use crate::cbc::{cbc_mac, cbc_mac_verify};
use crate::error::CryptoError;
use crate::hmac::HmacSha1;
use crate::speck::Speck64_128;

/// Selects the symmetric MAC primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacAlgorithm {
    /// HMAC-SHA1 (20-byte tags).
    HmacSha1,
    /// AES-128 in CBC-MAC mode (16-byte tags).
    Aes128Cbc,
    /// Speck 64/128 in CBC-MAC mode (8-byte tags).
    Speck64Cbc,
}

impl MacAlgorithm {
    /// All supported algorithms, in the order of the paper's Table 1.
    pub const ALL: [MacAlgorithm; 3] = [
        MacAlgorithm::HmacSha1,
        MacAlgorithm::Aes128Cbc,
        MacAlgorithm::Speck64Cbc,
    ];

    /// Tag length in bytes.
    #[must_use]
    pub fn tag_len(self) -> usize {
        match self {
            MacAlgorithm::HmacSha1 => 20,
            MacAlgorithm::Aes128Cbc => 16,
            MacAlgorithm::Speck64Cbc => 8,
        }
    }

    /// Key length in bytes (HMAC accepts any length; 16 is the suite default).
    #[must_use]
    pub fn key_len(self) -> usize {
        16
    }

    /// Cipher block size in bytes processed per "block" of input, used by
    /// the cycle model. HMAC consumes 64-byte hash blocks.
    #[must_use]
    pub fn input_block_len(self) -> usize {
        match self {
            MacAlgorithm::HmacSha1 => 64,
            MacAlgorithm::Aes128Cbc => 16,
            MacAlgorithm::Speck64Cbc => 8,
        }
    }
}

impl std::fmt::Display for MacAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacAlgorithm::HmacSha1 => write!(f, "SHA1-HMAC"),
            MacAlgorithm::Aes128Cbc => write!(f, "AES-128 (CBC)"),
            MacAlgorithm::Speck64Cbc => write!(f, "Speck 64/128 (CBC)"),
        }
    }
}

/// A MAC key with its primitive state expanded (the paper's "key expansion
/// done in advance" assumption).
#[derive(Clone)]
pub struct MacKey {
    algorithm: MacAlgorithm,
    inner: MacKeyInner,
}

#[derive(Clone)]
enum MacKeyInner {
    Hmac(Vec<u8>),
    Aes(Aes128),
    Speck(Speck64_128),
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MacKey")
            .field("algorithm", &self.algorithm)
            .field("key", &"<redacted>")
            .finish()
    }
}

impl MacKey {
    /// Expands `key` for `algorithm`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyLength`] if the block ciphers receive a
    /// key that is not 16 bytes.
    pub fn new(algorithm: MacAlgorithm, key: &[u8]) -> Result<Self, CryptoError> {
        let inner = match algorithm {
            MacAlgorithm::HmacSha1 => MacKeyInner::Hmac(key.to_vec()),
            MacAlgorithm::Aes128Cbc => MacKeyInner::Aes(Aes128::new(key)?),
            MacAlgorithm::Speck64Cbc => MacKeyInner::Speck(Speck64_128::new(key)?),
        };
        Ok(MacKey { algorithm, inner })
    }

    /// The algorithm this key is expanded for.
    #[must_use]
    pub fn algorithm(&self) -> MacAlgorithm {
        self.algorithm
    }

    /// Computes the tag over `message`.
    #[must_use]
    pub fn compute(&self, message: &[u8]) -> Vec<u8> {
        match &self.inner {
            MacKeyInner::Hmac(key) => HmacSha1::mac(key, message).to_vec(),
            MacKeyInner::Aes(cipher) => cbc_mac(cipher, message),
            MacKeyInner::Speck(cipher) => cbc_mac(cipher, message),
        }
    }

    /// Verifies `tag` over `message` in constant time.
    #[must_use]
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        match &self.inner {
            MacKeyInner::Hmac(key) => HmacSha1::verify(key, message, tag),
            MacKeyInner::Aes(cipher) => cbc_mac_verify(cipher, message, tag),
            MacKeyInner::Speck(cipher) => cbc_mac_verify(cipher, message, tag),
        }
    }
}

/// Generic MAC trait for callers that want static dispatch.
pub trait Mac {
    /// Computes the tag over `message`.
    fn tag(&self, message: &[u8]) -> Vec<u8>;
    /// Verifies `tag` over `message` in constant time.
    fn check(&self, message: &[u8], tag: &[u8]) -> bool;
}

impl Mac for MacKey {
    fn tag(&self, message: &[u8]) -> Vec<u8> {
        self.compute(message)
    }

    fn check(&self, message: &[u8], tag: &[u8]) -> bool {
        self.verify(message, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_roundtrip() {
        for alg in MacAlgorithm::ALL {
            let key = MacKey::new(alg, &[0x42; 16]).unwrap();
            let tag = key.compute(b"attestation request");
            assert_eq!(tag.len(), alg.tag_len(), "{alg}");
            assert!(key.verify(b"attestation request", &tag), "{alg}");
            assert!(!key.verify(b"something else", &tag), "{alg}");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        for alg in MacAlgorithm::ALL {
            let k1 = MacKey::new(alg, &[1; 16]).unwrap();
            let k2 = MacKey::new(alg, &[2; 16]).unwrap();
            assert_ne!(k1.compute(b"m"), k2.compute(b"m"), "{alg}");
        }
    }

    #[test]
    fn block_cipher_macs_reject_bad_key_length() {
        assert!(MacKey::new(MacAlgorithm::Aes128Cbc, &[0; 5]).is_err());
        assert!(MacKey::new(MacAlgorithm::Speck64Cbc, &[0; 5]).is_err());
        // HMAC accepts any key length.
        assert!(MacKey::new(MacAlgorithm::HmacSha1, &[0; 5]).is_ok());
    }

    #[test]
    fn truncated_tag_rejected() {
        for alg in MacAlgorithm::ALL {
            let key = MacKey::new(alg, &[7; 16]).unwrap();
            let tag = key.compute(b"m");
            assert!(!key.verify(b"m", &tag[..tag.len() - 1]), "{alg}");
        }
    }

    #[test]
    fn display_matches_table1_labels() {
        assert_eq!(MacAlgorithm::HmacSha1.to_string(), "SHA1-HMAC");
        assert_eq!(MacAlgorithm::Aes128Cbc.to_string(), "AES-128 (CBC)");
        assert_eq!(MacAlgorithm::Speck64Cbc.to_string(), "Speck 64/128 (CBC)");
    }

    #[test]
    fn trait_object_dispatch() {
        let key = MacKey::new(MacAlgorithm::Speck64Cbc, &[3; 16]).unwrap();
        let mac: &dyn Mac = &key;
        let tag = mac.tag(b"m");
        assert!(mac.check(b"m", &tag));
    }
}
