//! From-scratch cryptographic primitives for the ProverGuard suite.
//!
//! This crate implements every primitive the paper's Table 1 measures on the
//! Intel Siskiyou Peak platform, so that the reproduction can instrument and
//! benchmark its own code instead of an opaque library:
//!
//! - [`sha1`] — the SHA-1 compression function and streaming hasher.
//! - [`hmac`] — HMAC-SHA1 ([RFC 2104]).
//! - [`hkdf`] — HKDF extract/expand over HMAC-SHA1 (RFC 5869), the
//!   session-key schedule for the attested-channel layer.
//! - [`aes`] — the AES-128 block cipher (FIPS 197).
//! - [`speck`] — the Speck 64/128 lightweight block cipher.
//! - [`cbc`] — CBC mode and CBC-MAC over any [`BlockCipher`].
//! - [`bignum`] / [`ecc`] / [`ecdsa`] — fixed-width big integers, the
//!   secp160r1 curve and ECDSA, i.e. the public-key option the paper rules
//!   out as too expensive for request authentication.
//! - [`drbg`] — a deterministic random bit generator (HMAC-SHA1-DRBG) for
//!   nonces and deterministic ECDSA.
//! - [`mac`] — a unifying [`mac::Mac`] trait plus the
//!   [`mac::MacAlgorithm`] selector used by the attestation layer.
//!
//! # Security note
//!
//! These implementations exist to reproduce a 2016 paper about *cost*, not
//! to protect data in 2026. SHA-1 and 160-bit ECC are historical primitives;
//! do not reuse this crate outside the simulation.
//!
//! # Example
//!
//! ```
//! use proverguard_crypto::hmac::HmacSha1;
//!
//! let tag = HmacSha1::mac(b"attestation key!", b"attreq|counter=7");
//! assert_eq!(tag.len(), 20);
//! ```
//!
//! [RFC 2104]: https://www.rfc-editor.org/rfc/rfc2104

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod cbc;
pub mod ct;
pub mod drbg;
pub mod ecc;
pub mod ecdsa;
pub mod error;
pub mod hkdf;
pub mod hmac;
pub mod mac;
pub mod sha1;
pub mod speck;

pub use error::CryptoError;

/// A block cipher with a fixed block size, the abstraction [`cbc`] builds on.
///
/// Implemented by [`aes::Aes128`] (16-byte blocks) and
/// [`speck::Speck64_128`] (8-byte blocks). Key expansion happens in the
/// implementing type's constructor, mirroring the paper's separate
/// "key expansion" column in Table 1.
pub trait BlockCipher {
    /// Block size in bytes.
    const BLOCK_SIZE: usize;

    /// Short lowercase identifier used in telemetry span names
    /// (e.g. `"aes128"` → the `crypto.aes128_cbc` span).
    const NAME: &'static str = "cipher";

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != Self::BLOCK_SIZE`.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `block.len() != Self::BLOCK_SIZE`.
    fn decrypt_block(&self, block: &mut [u8]);
}
