//! Property-based tests for the cryptographic primitives: algebraic laws,
//! bijectivity, and cross-checks between independent code paths.

use proptest::prelude::*;

use proverguard_crypto::aes::Aes128;
use proverguard_crypto::bignum::U384;
use proverguard_crypto::cbc;
use proverguard_crypto::drbg::HmacDrbg;
use proverguard_crypto::ecc::{Curve, Point};
use proverguard_crypto::ecdsa::SigningKey;
use proverguard_crypto::hmac::HmacSha1;
use proverguard_crypto::mac::{MacAlgorithm, MacKey};
use proverguard_crypto::sha1::Sha1;
use proverguard_crypto::speck::Speck64_128;
use proverguard_crypto::BlockCipher;

proptest! {
    // ---- hashing -------------------------------------------------------------

    #[test]
    fn sha1_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn sha1_distinct_on_flipped_bit(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        flip in 0usize..256,
    ) {
        let mut other = data.clone();
        let i = flip % data.len();
        other[i] ^= 0x01;
        prop_assert_ne!(Sha1::digest(&data), Sha1::digest(&other));
    }

    #[test]
    fn hmac_tag_never_equals_plain_hash(
        key in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assert_ne!(HmacSha1::mac(&key, &data), Sha1::digest(&data));
    }

    // ---- block ciphers --------------------------------------------------------

    #[test]
    fn aes_is_a_bijection_per_key(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::from_key(&key);
        let (mut ca, mut cb) = (a, b);
        aes.encrypt_block(&mut ca);
        aes.encrypt_block(&mut cb);
        prop_assert_ne!(ca, cb, "distinct plaintexts must map to distinct ciphertexts");
    }

    #[test]
    fn speck_is_a_bijection_per_key(key in any::<[u8; 16]>(), a in any::<[u8; 8]>(), b in any::<[u8; 8]>()) {
        prop_assume!(a != b);
        let speck = Speck64_128::from_key(&key);
        let (mut ca, mut cb) = (a, b);
        speck.encrypt_block(&mut ca);
        speck.encrypt_block(&mut cb);
        prop_assert_ne!(ca, cb);
    }

    #[test]
    fn cbc_ciphertext_depends_on_iv(
        key in any::<[u8; 16]>(),
        iv1 in any::<[u8; 16]>(),
        iv2 in any::<[u8; 16]>(),
        seed in any::<u8>(),
    ) {
        prop_assume!(iv1 != iv2);
        let aes = Aes128::from_key(&key);
        let plain: Vec<u8> = (0..32).map(|i| seed.wrapping_add(i)).collect();
        let mut c1 = plain.clone();
        let mut c2 = plain.clone();
        cbc::encrypt(&aes, &iv1, &mut c1).expect("aligned");
        cbc::encrypt(&aes, &iv2, &mut c2).expect("aligned");
        prop_assert_ne!(c1, c2);
    }

    #[test]
    fn mac_verification_rejects_any_tag_tamper(
        key in any::<[u8; 16]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        alg_idx in 0usize..3,
        flip_byte in any::<u8>(),
        flip_pos in 0usize..20,
    ) {
        prop_assume!(flip_byte != 0);
        let alg = MacAlgorithm::ALL[alg_idx];
        let mac = MacKey::new(alg, &key).expect("key");
        let mut tag = mac.compute(&msg);
        let pos = flip_pos % tag.len();
        tag[pos] ^= flip_byte;
        prop_assert!(!mac.verify(&msg, &tag));
    }

    // ---- DRBG ------------------------------------------------------------------

    #[test]
    fn drbg_streams_do_not_repeat_within_run(seed in any::<[u8; 16]>()) {
        let mut rng = HmacDrbg::new(&seed, b"pt");
        let a = rng.generate(20);
        let b = rng.generate(20);
        let c = rng.generate(20);
        prop_assert_ne!(&a, &b);
        prop_assert_ne!(&b, &c);
        prop_assert_ne!(&a, &c);
    }

}

// Curve group laws get few cases: each scalar multiplication costs
// milliseconds in debug builds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn point_addition_commutes(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let curve = Curve::secp160r1();
        let g = curve.generator();
        let pa = curve.scalar_mul(&U384::from_u64(a), &g);
        let pb = curve.scalar_mul(&U384::from_u64(b), &g);
        prop_assert_eq!(curve.add(&pa, &pb), curve.add(&pb, &pa));
    }

    #[test]
    fn scalar_mul_is_homomorphic(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let curve = Curve::secp160r1();
        let g = curve.generator();
        let lhs = curve.scalar_mul(&U384::from_u64(a).wrapping_add(&U384::from_u64(b)), &g);
        let rhs = curve.add(
            &curve.scalar_mul(&U384::from_u64(a), &g),
            &curve.scalar_mul(&U384::from_u64(b), &g),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn scalar_mul_results_stay_on_curve(k in 1u64..u64::MAX) {
        let curve = Curve::secp160r1();
        let p = curve.scalar_mul(&U384::from_u64(k), &curve.generator());
        prop_assert!(curve.is_on_curve(&p));
        prop_assert!(!matches!(p, Point::Infinity));
    }

    #[test]
    fn ecdsa_roundtrip_random_seeds_and_messages(
        seed in any::<[u8; 8]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
        let mut other = msg.clone();
        other.push(0);
        prop_assert!(key.verifying_key().verify(&other, &sig).is_err());
    }
}
