//! The interpreter: fetch/decode/execute with EA-MPU enforcement.

use crate::device::Mcu;
use crate::error::McuError;

use super::inst::{Instruction, Reg};

/// Cycles charged per executed instruction (memory operations cost extra).
const CYCLES_PER_INST: u64 = 1;
/// Extra cycles per load/store.
const CYCLES_PER_MEM: u64 = 2;

/// Result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions executed.
    pub steps: u64,
    /// `true` if the program executed `halt`.
    pub halted: bool,
    /// The fault that stopped execution, if any.
    pub fault: Option<McuError>,
}

impl RunOutcome {
    /// `true` iff the program stopped on a fault.
    #[must_use]
    pub fn faulted(&self) -> bool {
        self.fault.is_some()
    }
}

/// The CPU state of the tiny ISA.
///
/// # Example
///
/// A malware loop that tries to read `K_Attest` byte by byte faults on the
/// first load when the key rule is installed:
///
/// ```
/// use proverguard_mcu::device::Mcu;
/// use proverguard_mcu::isa::{assemble_at_flash, Cpu};
/// use proverguard_mcu::map;
/// use proverguard_mcu::mpu::{Permissions, Rule};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mcu = Mcu::new();
/// mcu.provision_attest_key(&[0xaa; 16])?;
/// mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
///     mpu.add_rule(Rule::new("K_Attest", map::ATTEST_KEY, map::ATTEST_CODE,
///                            Permissions::READ_ONLY))
/// })?;
/// let program = assemble_at_flash(
///     "lui r1, 0x0000
///      ldi r1, 0x3000   ; K_Attest
///      ldb r2, [r1]     ; faults here
///      halt")?;
/// mcu.program_flash(&program)?;
/// let mut cpu = Cpu::new(map::FLASH.start);
/// let outcome = cpu.run(&mut mcu, 100);
/// assert!(outcome.faulted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    regs: [u32; 8],
    pc: u32,
    halted: bool,
}

impl Cpu {
    /// A CPU with zeroed registers starting at `entry`.
    #[must_use]
    pub fn new(entry: u32) -> Self {
        Cpu {
            regs: [0; 8],
            pc: entry,
            halted: false,
        }
    }

    /// Reads register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    #[must_use]
    pub fn reg(&self, index: u8) -> u32 {
        self.regs[Reg::new(index).index()]
    }

    /// Writes register `index` (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    pub fn set_reg(&mut self, index: u8, value: u32) {
        self.regs[Reg::new(index).index()] = value;
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` after `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] / [`McuError::BusFault`] from memory,
    /// or [`McuError::CpuFault`] on illegal instructions.
    pub fn step(&mut self, mcu: &mut Mcu) -> Result<(), McuError> {
        if self.halted {
            return Ok(());
        }
        let mut word_bytes = [0u8; 4];
        mcu.bus_fetch(self.pc, &mut word_bytes, self.pc)?;
        let word = u32::from_le_bytes(word_bytes);
        let inst = Instruction::decode(word).map_err(|e| McuError::CpuFault {
            pc: self.pc,
            reason: e.to_string(),
        })?;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut cycles = CYCLES_PER_INST;

        match inst {
            Instruction::Nop => {}
            Instruction::Halt => self.halted = true,
            Instruction::Ldi(rd, imm) => self.regs[rd.index()] = u32::from(imm),
            Instruction::Lui(rd, imm) => self.regs[rd.index()] = u32::from(imm) << 16,
            Instruction::Ld(rd, rs, off) => {
                cycles += CYCLES_PER_MEM;
                let addr = self.regs[rs.index()].wrapping_add(off as i32 as u32);
                let mut buf = [0u8; 4];
                mcu.bus_read(addr, &mut buf, self.pc)?;
                self.regs[rd.index()] = u32::from_le_bytes(buf);
            }
            Instruction::St(rs, rd, off) => {
                cycles += CYCLES_PER_MEM;
                let addr = self.regs[rd.index()].wrapping_add(off as i32 as u32);
                mcu.bus_write(addr, &self.regs[rs.index()].to_le_bytes(), self.pc)?;
            }
            Instruction::Ldb(rd, rs, off) => {
                cycles += CYCLES_PER_MEM;
                let addr = self.regs[rs.index()].wrapping_add(off as i32 as u32);
                let mut buf = [0u8; 1];
                mcu.bus_read(addr, &mut buf, self.pc)?;
                self.regs[rd.index()] = u32::from(buf[0]);
            }
            Instruction::Stb(rs, rd, off) => {
                cycles += CYCLES_PER_MEM;
                let addr = self.regs[rd.index()].wrapping_add(off as i32 as u32);
                mcu.bus_write(addr, &[self.regs[rs.index()] as u8], self.pc)?;
            }
            Instruction::Mov(rd, rs) => self.regs[rd.index()] = self.regs[rs.index()],
            Instruction::Add(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()].wrapping_add(self.regs[rt.index()]);
            }
            Instruction::Sub(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()].wrapping_sub(self.regs[rt.index()]);
            }
            Instruction::And(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()] & self.regs[rt.index()];
            }
            Instruction::Or(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()] | self.regs[rt.index()];
            }
            Instruction::Xor(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()] ^ self.regs[rt.index()];
            }
            Instruction::Shl(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()] << (self.regs[rt.index()] & 31);
            }
            Instruction::Shr(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()] >> (self.regs[rt.index()] & 31);
            }
            Instruction::Mul(rd, rs, rt) => {
                self.regs[rd.index()] = self.regs[rs.index()].wrapping_mul(self.regs[rt.index()]);
            }
            Instruction::Addi(rd, rs, imm) => {
                self.regs[rd.index()] = self.regs[rs.index()].wrapping_add(imm as i32 as u32);
            }
            Instruction::Beq(rs, rt, off) => {
                if self.regs[rs.index()] == self.regs[rt.index()] {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Instruction::Bne(rs, rt, off) => {
                if self.regs[rs.index()] != self.regs[rt.index()] {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Instruction::Bltu(rs, rt, off) => {
                if self.regs[rs.index()] < self.regs[rt.index()] {
                    next_pc = branch_target(self.pc, off);
                }
            }
            Instruction::Jmp(addr) => next_pc = addr,
            Instruction::Call(addr) => {
                self.regs[Reg::LINK.index()] = self.pc.wrapping_add(4);
                next_pc = addr;
            }
            Instruction::Ret => next_pc = self.regs[Reg::LINK.index()],
        }

        mcu.advance_active(cycles);
        if !self.halted {
            // §6.2: entering a protected code region anywhere but its
            // entry point is a control-flow violation.
            mcu.check_control_transfer(self.pc, next_pc)?;
            self.pc = next_pc;
        }
        Ok(())
    }

    /// Runs until `halt`, a fault, or `max_steps` instructions.
    pub fn run(&mut self, mcu: &mut Mcu, max_steps: u64) -> RunOutcome {
        let mut steps = 0;
        while steps < max_steps && !self.halted {
            match self.step(mcu) {
                Ok(()) => steps += 1,
                Err(fault) => {
                    return RunOutcome {
                        steps,
                        halted: false,
                        fault: Some(fault),
                    };
                }
            }
        }
        RunOutcome {
            steps,
            halted: self.halted,
            fault: None,
        }
    }
}

fn branch_target(pc: u32, off_words: i8) -> u32 {
    pc.wrapping_add(4)
        .wrapping_add((i32::from(off_words) * 4) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble_at;
    use crate::map;
    use crate::mpu::{Permissions, Rule};

    fn load_and_run(mcu: &mut Mcu, src: &str, max_steps: u64) -> (Cpu, RunOutcome) {
        let program = assemble_at(src, map::FLASH.start).unwrap();
        mcu.program_flash(&program).unwrap();
        let mut cpu = Cpu::new(map::FLASH.start);
        let outcome = cpu.run(mcu, max_steps);
        (cpu, outcome)
    }

    #[test]
    fn arithmetic_program() {
        let mut mcu = Mcu::new();
        let (cpu, outcome) = load_and_run(
            &mut mcu,
            "ldi r1, 20
             ldi r2, 22
             add r3, r1, r2
             halt",
            100,
        );
        assert!(outcome.halted);
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(outcome.steps, 4);
    }

    #[test]
    fn loop_with_branch() {
        let mut mcu = Mcu::new();
        let (cpu, outcome) = load_and_run(
            &mut mcu,
            "ldi r1, 0
             ldi r2, 10
             loop: addi r1, r1, 1
             bne r1, r2, loop
             halt",
            1000,
        );
        assert!(outcome.halted);
        assert_eq!(cpu.reg(1), 10);
    }

    #[test]
    fn memory_store_and_load() {
        let mut mcu = Mcu::new();
        let ram = map::APP_RAM.start;
        let src = format!(
            "lui r1, {:#x}
             ldi r2, {:#x}
             or r1, r1, r2
             ldi r3, 77
             st r3, [r1]
             ld r4, [r1]
             halt",
            ram >> 16,
            ram & 0xffff
        );
        let (cpu, outcome) = load_and_run(&mut mcu, &src, 100);
        assert!(outcome.halted);
        assert_eq!(cpu.reg(4), 77);
    }

    #[test]
    fn key_stealing_program_faults_when_protected() {
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(&[0xaa; 16]).unwrap();
        mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
            mpu.add_rule(Rule::new(
                "K_Attest",
                map::ATTEST_KEY,
                map::ATTEST_CODE,
                Permissions::READ_ONLY,
            ))
        })
        .unwrap();
        let src = format!(
            "ldi r1, {:#x}
             ldb r2, [r1]
             halt",
            map::ATTEST_KEY.start
        );
        let (cpu, outcome) = load_and_run(&mut mcu, &src, 100);
        assert!(outcome.faulted());
        assert!(matches!(outcome.fault, Some(McuError::MpuViolation { .. })));
        assert_eq!(cpu.reg(2), 0, "no key byte leaked");
    }

    #[test]
    fn key_stealing_program_succeeds_when_unprotected() {
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(&[0xaa; 16]).unwrap();
        let src = format!(
            "ldi r1, {:#x}
             ldb r2, [r1]
             halt",
            map::ATTEST_KEY.start
        );
        let (cpu, outcome) = load_and_run(&mut mcu, &src, 100);
        assert!(outcome.halted);
        assert_eq!(cpu.reg(2), 0xaa);
    }

    #[test]
    fn shift_and_multiply() {
        let mut mcu = Mcu::new();
        let (cpu, outcome) = load_and_run(
            &mut mcu,
            "ldi r1, 3
             ldi r2, 4
             shl r3, r1, r2      ; 3 << 4 = 48
             shr r4, r3, r2      ; 48 >> 4 = 3
             mul r5, r3, r1      ; 48 * 3 = 144
             halt",
            100,
        );
        assert!(outcome.halted);
        assert_eq!(cpu.reg(3), 48);
        assert_eq!(cpu.reg(4), 3);
        assert_eq!(cpu.reg(5), 144);
    }

    #[test]
    fn shift_amount_masked_to_five_bits() {
        let mut mcu = Mcu::new();
        let (cpu, outcome) = load_and_run(
            &mut mcu,
            "ldi r1, 1
             ldi r2, 33          ; 33 & 31 = 1
             shl r3, r1, r2
             halt",
            100,
        );
        assert!(outcome.halted);
        assert_eq!(cpu.reg(3), 2);
    }

    #[test]
    fn call_and_ret() {
        let mut mcu = Mcu::new();
        let (cpu, outcome) = load_and_run(
            &mut mcu,
            "call fn
             halt
             fn: ldi r1, 9
             ret",
            100,
        );
        assert!(outcome.halted);
        assert_eq!(cpu.reg(1), 9);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut mcu = Mcu::new();
        mcu.program_flash(&0xffff_ffffu32.to_le_bytes()).unwrap();
        let mut cpu = Cpu::new(map::FLASH.start);
        let outcome = cpu.run(&mut mcu, 10);
        assert!(matches!(outcome.fault, Some(McuError::CpuFault { .. })));
    }

    #[test]
    fn execution_consumes_cycles_and_energy() {
        let mut mcu = Mcu::new();
        let before = mcu.battery().remaining_joules();
        let (_, outcome) = load_and_run(&mut mcu, "nop\nnop\nnop\nhalt", 100);
        assert!(outcome.halted);
        assert_eq!(mcu.clock().cycles(), 4);
        assert!(mcu.battery().remaining_joules() < before);
    }

    #[test]
    fn max_steps_stops_runaway_program() {
        let mut mcu = Mcu::new();
        let (_, outcome) = load_and_run(
            &mut mcu,
            &format!("loop: jmp loop ; at {:#x}", map::FLASH.start),
            50,
        );
        assert!(!outcome.halted);
        assert!(!outcome.faulted());
        assert_eq!(outcome.steps, 50);
    }
}
