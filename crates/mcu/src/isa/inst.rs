//! Instruction set definition, encoding and decoding.

use std::error::Error;
use std::fmt;

/// A register index `r0`–`r7`. `r6` is the link register by convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The link register used by `call`/`ret`.
    pub const LINK: Reg = Reg(6);

    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 7`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 8, "register index out of range");
        Reg(index)
    }

    /// The numeric index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
    /// `rd = imm` (16-bit immediate, zero-extended).
    Ldi(Reg, u16),
    /// `rd = imm << 16` (load upper immediate).
    Lui(Reg, u16),
    /// `rd = mem32[rs + off]`.
    Ld(Reg, Reg, i8),
    /// `mem32[rd + off] = rs`.
    St(Reg, Reg, i8),
    /// `rd = mem8[rs + off]` (zero-extended byte load).
    Ldb(Reg, Reg, i8),
    /// `mem8[rd + off] = low byte of rs`.
    Stb(Reg, Reg, i8),
    /// `rd = rs`.
    Mov(Reg, Reg),
    /// `rd = rs + rt` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs & rt`.
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`.
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`.
    Xor(Reg, Reg, Reg),
    /// `rd = rs << (rt & 31)`.
    Shl(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (logical).
    Shr(Reg, Reg, Reg),
    /// `rd = rs * rt` (wrapping, low 32 bits).
    Mul(Reg, Reg, Reg),
    /// `rd = rs + imm` (signed 8-bit immediate, wrapping).
    Addi(Reg, Reg, i8),
    /// Branch (word offset relative to next instruction) if `rs == rt`.
    Beq(Reg, Reg, i8),
    /// Branch if `rs != rt`.
    Bne(Reg, Reg, i8),
    /// Branch if `rs < rt` (unsigned).
    Bltu(Reg, Reg, i8),
    /// Absolute jump to a word-aligned address (encoded as `addr >> 2` in
    /// 24 bits).
    Jmp(u32),
    /// Call: link register = next pc, then jump.
    Call(u32),
    /// Return to the link register.
    Ret,
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_LDI: u8 = 0x02;
const OP_LUI: u8 = 0x03;
const OP_LD: u8 = 0x04;
const OP_ST: u8 = 0x05;
const OP_LDB: u8 = 0x06;
const OP_STB: u8 = 0x07;
const OP_MOV: u8 = 0x08;
const OP_ADD: u8 = 0x10;
const OP_SUB: u8 = 0x11;
const OP_AND: u8 = 0x12;
const OP_OR: u8 = 0x13;
const OP_XOR: u8 = 0x14;
const OP_ADDI: u8 = 0x15;
const OP_SHL: u8 = 0x16;
const OP_SHR: u8 = 0x17;
const OP_MUL: u8 = 0x18;
const OP_BEQ: u8 = 0x20;
const OP_BNE: u8 = 0x21;
const OP_BLTU: u8 = 0x22;
const OP_JMP: u8 = 0x30;
const OP_CALL: u8 = 0x31;
const OP_RET: u8 = 0x32;

impl Instruction {
    /// Encodes to a 32-bit word.
    ///
    /// Layout: `[opcode:8][a:8][b:8][c:8]` with immediates packed into the
    /// lower fields; `Jmp`/`Call` use 24-bit word addresses.
    #[must_use]
    pub fn encode(&self) -> u32 {
        let pack = |op: u8, a: u8, b: u8, c: u8| u32::from_be_bytes([op, a, b, c]);
        match *self {
            Instruction::Nop => pack(OP_NOP, 0, 0, 0),
            Instruction::Halt => pack(OP_HALT, 0, 0, 0),
            Instruction::Ldi(rd, imm) => pack(OP_LDI, rd.0, (imm >> 8) as u8, imm as u8),
            Instruction::Lui(rd, imm) => pack(OP_LUI, rd.0, (imm >> 8) as u8, imm as u8),
            Instruction::Ld(rd, rs, off) => pack(OP_LD, rd.0, rs.0, off as u8),
            Instruction::St(rs, rd, off) => pack(OP_ST, rs.0, rd.0, off as u8),
            Instruction::Ldb(rd, rs, off) => pack(OP_LDB, rd.0, rs.0, off as u8),
            Instruction::Stb(rs, rd, off) => pack(OP_STB, rs.0, rd.0, off as u8),
            Instruction::Mov(rd, rs) => pack(OP_MOV, rd.0, rs.0, 0),
            Instruction::Add(rd, rs, rt) => pack(OP_ADD, rd.0, rs.0, rt.0),
            Instruction::Sub(rd, rs, rt) => pack(OP_SUB, rd.0, rs.0, rt.0),
            Instruction::And(rd, rs, rt) => pack(OP_AND, rd.0, rs.0, rt.0),
            Instruction::Or(rd, rs, rt) => pack(OP_OR, rd.0, rs.0, rt.0),
            Instruction::Xor(rd, rs, rt) => pack(OP_XOR, rd.0, rs.0, rt.0),
            Instruction::Shl(rd, rs, rt) => pack(OP_SHL, rd.0, rs.0, rt.0),
            Instruction::Shr(rd, rs, rt) => pack(OP_SHR, rd.0, rs.0, rt.0),
            Instruction::Mul(rd, rs, rt) => pack(OP_MUL, rd.0, rs.0, rt.0),
            Instruction::Addi(rd, rs, imm) => pack(OP_ADDI, rd.0, rs.0, imm as u8),
            Instruction::Beq(rs, rt, off) => pack(OP_BEQ, rs.0, rt.0, off as u8),
            Instruction::Bne(rs, rt, off) => pack(OP_BNE, rs.0, rt.0, off as u8),
            Instruction::Bltu(rs, rt, off) => pack(OP_BLTU, rs.0, rt.0, off as u8),
            Instruction::Jmp(addr) => {
                debug_assert_eq!(addr % 4, 0, "jump target must be word aligned");
                (u32::from(OP_JMP) << 24) | ((addr >> 2) & 0x00ff_ffff)
            }
            Instruction::Call(addr) => {
                debug_assert_eq!(addr % 4, 0, "call target must be word aligned");
                (u32::from(OP_CALL) << 24) | ((addr >> 2) & 0x00ff_ffff)
            }
            Instruction::Ret => pack(OP_RET, 0, 0, 0),
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown opcodes or bad register fields.
    pub fn decode(word: u32) -> Result<Self, DecodeError> {
        let [op, a, b, c] = word.to_be_bytes();
        let reg = |i: u8| -> Result<Reg, DecodeError> {
            if i < 8 {
                Ok(Reg(i))
            } else {
                Err(DecodeError { word })
            }
        };
        Ok(match op {
            OP_NOP => Instruction::Nop,
            OP_HALT => Instruction::Halt,
            OP_LDI => Instruction::Ldi(reg(a)?, u16::from_be_bytes([b, c])),
            OP_LUI => Instruction::Lui(reg(a)?, u16::from_be_bytes([b, c])),
            OP_LD => Instruction::Ld(reg(a)?, reg(b)?, c as i8),
            OP_ST => Instruction::St(reg(a)?, reg(b)?, c as i8),
            OP_LDB => Instruction::Ldb(reg(a)?, reg(b)?, c as i8),
            OP_STB => Instruction::Stb(reg(a)?, reg(b)?, c as i8),
            OP_MOV => Instruction::Mov(reg(a)?, reg(b)?),
            OP_ADD => Instruction::Add(reg(a)?, reg(b)?, reg(c)?),
            OP_SUB => Instruction::Sub(reg(a)?, reg(b)?, reg(c)?),
            OP_AND => Instruction::And(reg(a)?, reg(b)?, reg(c)?),
            OP_OR => Instruction::Or(reg(a)?, reg(b)?, reg(c)?),
            OP_XOR => Instruction::Xor(reg(a)?, reg(b)?, reg(c)?),
            OP_SHL => Instruction::Shl(reg(a)?, reg(b)?, reg(c)?),
            OP_SHR => Instruction::Shr(reg(a)?, reg(b)?, reg(c)?),
            OP_MUL => Instruction::Mul(reg(a)?, reg(b)?, reg(c)?),
            OP_ADDI => Instruction::Addi(reg(a)?, reg(b)?, c as i8),
            OP_BEQ => Instruction::Beq(reg(a)?, reg(b)?, c as i8),
            OP_BNE => Instruction::Bne(reg(a)?, reg(b)?, c as i8),
            OP_BLTU => Instruction::Bltu(reg(a)?, reg(b)?, c as i8),
            OP_JMP => Instruction::Jmp((word & 0x00ff_ffff) << 2),
            OP_CALL => Instruction::Call((word & 0x00ff_ffff) << 2),
            OP_RET => Instruction::Ret,
            _ => return Err(DecodeError { word }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        let r = Reg::new;
        let cases = [
            Instruction::Nop,
            Instruction::Halt,
            Instruction::Ldi(r(1), 0xbeef),
            Instruction::Lui(r(2), 0xdead),
            Instruction::Ld(r(3), r(4), -8),
            Instruction::St(r(5), r(6), 127),
            Instruction::Ldb(r(0), r(7), -128),
            Instruction::Stb(r(1), r(2), 0),
            Instruction::Mov(r(3), r(4)),
            Instruction::Add(r(1), r(2), r(3)),
            Instruction::Sub(r(1), r(2), r(3)),
            Instruction::And(r(1), r(2), r(3)),
            Instruction::Or(r(1), r(2), r(3)),
            Instruction::Xor(r(1), r(2), r(3)),
            Instruction::Shl(r(1), r(2), r(3)),
            Instruction::Shr(r(4), r(5), r(6)),
            Instruction::Mul(r(7), r(0), r(1)),
            Instruction::Addi(r(1), r(2), -1),
            Instruction::Beq(r(1), r(2), 5),
            Instruction::Bne(r(1), r(2), -5),
            Instruction::Bltu(r(1), r(2), 10),
            Instruction::Jmp(0x0001_0000),
            Instruction::Call(0x0000_1000),
            Instruction::Ret,
        ];
        for inst in cases {
            assert_eq!(
                Instruction::decode(inst.encode()).unwrap(),
                inst,
                "{inst:?}"
            );
        }
    }

    #[test]
    fn illegal_opcode_rejected() {
        assert!(Instruction::decode(0xff00_0000).is_err());
        assert!(Instruction::decode(0x7a00_0000).is_err());
    }

    #[test]
    fn bad_register_field_rejected() {
        // LDI with register index 9.
        let word = u32::from_be_bytes([0x02, 9, 0, 0]);
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn reg_constructor_validates() {
        let _ = Reg::new(8);
    }

    #[test]
    fn jump_addresses_word_granular() {
        let i = Instruction::Jmp(0x00ff_fffc);
        assert_eq!(Instruction::decode(i.encode()).unwrap(), i);
    }
}
