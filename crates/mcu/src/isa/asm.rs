//! A two-pass assembler for the tiny ISA.
//!
//! Syntax (one instruction per line, `;` or `#` comments, labels end with
//! `:`):
//!
//! ```text
//! ; steal the attestation key
//!         lui  r1, 0x0000
//!         ldi  r1, 0x3000     ; K_Attest address (low half)
//! loop:   ldb  r2, [r1]
//!         addi r1, r1, 1
//!         bne  r1, r3, loop
//!         halt
//! ```
//!
//! `ld`/`st`/`ldb`/`stb` take `[reg]` or `[reg+imm]` / `[reg-imm]` operands.
//! Branches take a label or a signed word offset. `jmp`/`call` take a label
//! or an absolute address. `.word <imm32>` emits raw data.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use super::inst::{Instruction, Reg};

/// Assembly failure with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assembles `source` into little-endian machine code, with instruction 0
/// at byte offset 0. Labels are resolved relative to `base` = 0; `jmp` and
/// `call` to labels therefore assume the program is loaded at the address
/// encoded by the caller — use [`assemble_at`] to link for a load address.
///
/// # Errors
///
/// [`AsmError`] describing the first offending line.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    assemble_at(source, 0)
}

/// Assembles `source` linked for load address `base`.
///
/// # Errors
///
/// [`AsmError`] describing the first offending line.
pub fn assemble_at(source: &str, base: u32) -> Result<Vec<u8>, AsmError> {
    // Pass 1: collect labels.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut word_index: u32 = 0;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = split_label(line);
        if let Some(name) = label {
            if labels
                .insert(name.to_string(), base + word_index * 4)
                .is_some()
            {
                return Err(err(lineno + 1, format!("duplicate label `{name}`")));
            }
        }
        if !rest.trim().is_empty() {
            word_index += 1;
        }
    }

    // Pass 2: encode.
    let mut out = Vec::new();
    let mut word_index: u32 = 0;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (_, rest) = split_label(line);
        let rest = rest.trim();
        if rest.is_empty() {
            continue;
        }
        let pc = base + word_index * 4;
        let word = encode_line(rest, pc, &labels, lineno + 1)?;
        out.extend_from_slice(&word.to_le_bytes());
        word_index += 1;
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    let end = line
        .find(';')
        .into_iter()
        .chain(line.find('#'))
        .min()
        .unwrap_or(line.len());
    &line[..end]
}

fn split_label(line: &str) -> (Option<&str>, &str) {
    if let Some(colon) = line.find(':') {
        let (label, rest) = line.split_at(colon);
        let label = label.trim();
        if !label.is_empty() && label.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return (Some(label), &rest[1..]);
        }
    }
    (None, line)
}

fn encode_line(
    text: &str,
    pc: u32,
    labels: &HashMap<String, u32>,
    lineno: usize,
) -> Result<u32, AsmError> {
    let (mnemonic, operands) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if operands.is_empty() {
        Vec::new()
    } else {
        operands.split(',').map(str::trim).collect()
    };

    let parse_reg = |s: &str| -> Result<Reg, AsmError> {
        let s = s.trim();
        let idx = s
            .strip_prefix('r')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 8)
            .ok_or_else(|| err(lineno, format!("bad register `{s}`")))?;
        Ok(Reg::new(idx))
    };

    let parse_imm = |s: &str| -> Result<i64, AsmError> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let value = if let Some(hex) = body.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else {
            body.parse::<i64>()
        }
        .map_err(|_| err(lineno, format!("bad immediate `{s}`")))?;
        Ok(if neg { -value } else { value })
    };

    // `[reg]`, `[reg+imm]` or `[reg-imm]`.
    let parse_mem = |s: &str| -> Result<(Reg, i8), AsmError> {
        let inner = s
            .trim()
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| err(lineno, format!("bad memory operand `{s}`")))?;
        if let Some(plus) = inner.find('+') {
            let reg = parse_reg(&inner[..plus])?;
            let off = parse_imm(&inner[plus + 1..])?;
            let off = i8::try_from(off).map_err(|_| err(lineno, "offset out of range"))?;
            Ok((reg, off))
        } else if let Some(minus) = inner.rfind('-') {
            let reg = parse_reg(&inner[..minus])?;
            let off = parse_imm(&inner[minus..])?;
            let off = i8::try_from(off).map_err(|_| err(lineno, "offset out of range"))?;
            Ok((reg, off))
        } else {
            Ok((parse_reg(inner)?, 0))
        }
    };

    // Branch target: label or explicit offset, converted to a word offset
    // relative to the *next* instruction.
    let parse_branch_target = |s: &str| -> Result<i8, AsmError> {
        if let Some(&addr) = labels.get(s.trim()) {
            let delta_words = (i64::from(addr) - i64::from(pc) - 4) / 4;
            i8::try_from(delta_words).map_err(|_| err(lineno, "branch target too far"))
        } else {
            let off = parse_imm(s)?;
            i8::try_from(off).map_err(|_| err(lineno, "branch offset out of range"))
        }
    };

    let parse_jump_target = |s: &str| -> Result<u32, AsmError> {
        let addr = if let Some(&addr) = labels.get(s.trim()) {
            addr
        } else {
            u32::try_from(parse_imm(s)?).map_err(|_| err(lineno, "jump target out of range"))?
        };
        if addr % 4 != 0 {
            return Err(err(lineno, "jump target must be word aligned"));
        }
        Ok(addr)
    };

    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                lineno,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    let inst = match mnemonic.to_ascii_lowercase().as_str() {
        "nop" => {
            need(0)?;
            Instruction::Nop
        }
        "halt" => {
            need(0)?;
            Instruction::Halt
        }
        "ldi" => {
            need(2)?;
            let imm = parse_imm(ops[1])?;
            let imm = u16::try_from(imm).map_err(|_| err(lineno, "ldi immediate out of range"))?;
            Instruction::Ldi(parse_reg(ops[0])?, imm)
        }
        "lui" => {
            need(2)?;
            let imm = parse_imm(ops[1])?;
            let imm = u16::try_from(imm).map_err(|_| err(lineno, "lui immediate out of range"))?;
            Instruction::Lui(parse_reg(ops[0])?, imm)
        }
        "ld" => {
            need(2)?;
            let (rs, off) = parse_mem(ops[1])?;
            Instruction::Ld(parse_reg(ops[0])?, rs, off)
        }
        "st" => {
            need(2)?;
            let (rd, off) = parse_mem(ops[1])?;
            Instruction::St(parse_reg(ops[0])?, rd, off)
        }
        "ldb" => {
            need(2)?;
            let (rs, off) = parse_mem(ops[1])?;
            Instruction::Ldb(parse_reg(ops[0])?, rs, off)
        }
        "stb" => {
            need(2)?;
            let (rd, off) = parse_mem(ops[1])?;
            Instruction::Stb(parse_reg(ops[0])?, rd, off)
        }
        "mov" => {
            need(2)?;
            Instruction::Mov(parse_reg(ops[0])?, parse_reg(ops[1])?)
        }
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" | "mul" => {
            need(3)?;
            let (rd, rs, rt) = (parse_reg(ops[0])?, parse_reg(ops[1])?, parse_reg(ops[2])?);
            match mnemonic {
                "add" => Instruction::Add(rd, rs, rt),
                "sub" => Instruction::Sub(rd, rs, rt),
                "and" => Instruction::And(rd, rs, rt),
                "or" => Instruction::Or(rd, rs, rt),
                "xor" => Instruction::Xor(rd, rs, rt),
                "shl" => Instruction::Shl(rd, rs, rt),
                "shr" => Instruction::Shr(rd, rs, rt),
                _ => Instruction::Mul(rd, rs, rt),
            }
        }
        "addi" => {
            need(3)?;
            let imm = parse_imm(ops[2])?;
            let imm = i8::try_from(imm).map_err(|_| err(lineno, "addi immediate out of range"))?;
            Instruction::Addi(parse_reg(ops[0])?, parse_reg(ops[1])?, imm)
        }
        "beq" | "bne" | "bltu" => {
            need(3)?;
            let (rs, rt) = (parse_reg(ops[0])?, parse_reg(ops[1])?);
            let off = parse_branch_target(ops[2])?;
            match mnemonic {
                "beq" => Instruction::Beq(rs, rt, off),
                "bne" => Instruction::Bne(rs, rt, off),
                _ => Instruction::Bltu(rs, rt, off),
            }
        }
        "jmp" => {
            need(1)?;
            Instruction::Jmp(parse_jump_target(ops[0])?)
        }
        "call" => {
            need(1)?;
            Instruction::Call(parse_jump_target(ops[0])?)
        }
        "ret" => {
            need(0)?;
            Instruction::Ret
        }
        ".word" => {
            need(1)?;
            let imm = parse_imm(ops[0])?;
            return u32::try_from(imm).map_err(|_| err(lineno, ".word value out of range"));
        }
        other => return Err(err(lineno, format!("unknown mnemonic `{other}`"))),
    };
    Ok(inst.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::Instruction;

    fn words(bytes: &[u8]) -> Vec<u32> {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    #[test]
    fn simple_program_assembles() {
        let code = assemble("ldi r1, 42\nhalt").unwrap();
        let w = words(&code);
        assert_eq!(
            Instruction::decode(w[0]).unwrap(),
            Instruction::Ldi(Reg::new(1), 42)
        );
        assert_eq!(Instruction::decode(w[1]).unwrap(), Instruction::Halt);
    }

    #[test]
    fn labels_and_branches() {
        let src = "
            ldi r1, 0
            ldi r2, 5
        loop:
            addi r1, r1, 1
            bne r1, r2, loop
            halt
        ";
        let code = assemble(src).unwrap();
        let w = words(&code);
        // bne is word 3 (pc 12); loop is word 2 (addr 8): offset (8-12-4)/4 = -2.
        assert_eq!(
            Instruction::decode(w[3]).unwrap(),
            Instruction::Bne(Reg::new(1), Reg::new(2), -2)
        );
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let src = "start: ldi r0, 1\n jmp start";
        let code = assemble_at(src, 0x1_0000).unwrap();
        let w = words(&code);
        assert_eq!(
            Instruction::decode(w[1]).unwrap(),
            Instruction::Jmp(0x1_0000)
        );
    }

    #[test]
    fn memory_operand_forms() {
        let code = assemble("ld r1, [r2]\nld r1, [r2+8]\nst r1, [r2-4]").unwrap();
        let w = words(&code);
        assert_eq!(
            Instruction::decode(w[0]).unwrap(),
            Instruction::Ld(Reg::new(1), Reg::new(2), 0)
        );
        assert_eq!(
            Instruction::decode(w[1]).unwrap(),
            Instruction::Ld(Reg::new(1), Reg::new(2), 8)
        );
        assert_eq!(
            Instruction::decode(w[2]).unwrap(),
            Instruction::St(Reg::new(1), Reg::new(2), -4)
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("; header\n\nnop # trailing\n").unwrap();
        assert_eq!(words(&code), vec![Instruction::Nop.encode()]);
    }

    #[test]
    fn hex_immediates() {
        let code = assemble("ldi r1, 0x3000").unwrap();
        assert_eq!(
            Instruction::decode(words(&code)[0]).unwrap(),
            Instruction::Ldi(Reg::new(1), 0x3000)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a:\nnop\na:\nnop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn branch_too_far_rejected() {
        let mut src = String::from("start:\n");
        for _ in 0..200 {
            src.push_str("nop\n");
        }
        src.push_str("beq r0, r0, start\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("too far"));
    }

    #[test]
    fn word_directive_emits_raw_data() {
        let code = assemble(".word 0xdeadbeef").unwrap();
        assert_eq!(words(&code), vec![0xdead_beef]);
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("ldi r9, 1").is_err());
        assert!(assemble("mov rx, r1").is_err());
    }
}
