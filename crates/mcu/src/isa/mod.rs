//! A tiny load/store ISA executed through the EA-MPU.
//!
//! The high-level simulation models trusted and untrusted code as Rust
//! closures tagged with a program counter. To also demonstrate EA-MAC at
//! *instruction* granularity — the way SMART and TrustLite actually
//! enforce it — this module provides a minimal 32-bit RISC machine whose
//! every instruction fetch, load and store goes through
//! [`Mcu::bus_fetch`](crate::device::Mcu::bus_fetch) /
//! [`bus_read`](crate::device::Mcu::bus_read) /
//! [`bus_write`](crate::device::Mcu::bus_write) with the real program
//! counter. A malware program that tries `ldb r1, [r2]` on `K_Attest`
//! faults exactly as it would on TrustLite.
//!
//! The machine: eight 32-bit registers (`r6` doubles as the link
//! register), fixed 32-bit instruction words, byte-addressed little-endian
//! memory.
//!
//! # Example
//!
//! ```
//! use proverguard_mcu::isa::{assemble, Cpu};
//! use proverguard_mcu::device::Mcu;
//! use proverguard_mcu::map;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "ldi r1, 42
//!      halt",
//! )?;
//! let mut mcu = Mcu::new();
//! mcu.program_flash(&program)?;
//! let mut cpu = Cpu::new(map::FLASH.start);
//! let outcome = cpu.run(&mut mcu, 100);
//! assert!(outcome.halted);
//! assert_eq!(cpu.reg(1), 42);
//! # Ok(())
//! # }
//! ```

mod asm;
mod cpu;
mod inst;

pub use asm::{assemble, assemble_at, AsmError};
pub use cpu::{Cpu, RunOutcome};
pub use inst::{DecodeError, Instruction, Reg};

/// Assembles `source` linked for the flash base address (where application
/// and malware programs live in this simulation).
///
/// # Errors
///
/// [`AsmError`] describing the first offending line.
pub fn assemble_at_flash(source: &str) -> Result<Vec<u8>, AsmError> {
    assemble_at(source, crate::map::FLASH.start)
}
