//! The execution-aware memory protection unit (EA-MPU).
//!
//! The core primitive of SMART/TrustLite and of the paper's §6: memory
//! access is allowed or denied based on **which code region the program
//! counter is currently in** (execution-aware memory access control,
//! EA-MAC). A [`Rule`] protects a data range by naming the single code
//! range allowed to touch it and with which permissions; any access into a
//! protected range from outside the named code range is denied.
//!
//! Addresses not covered by any rule are unrestricted — the EA-MPU is a
//! whitelist of *carve-outs*, matching the TrustLite design where
//! untrusted software keeps using ordinary memory freely.
//!
//! After secure boot installs the rules, the configuration is **locked**
//! ([`EaMpu::lock`]): further rule changes fail with
//! [`McuError::MpuLocked`], which is exactly the property that defeats
//! `Adv_roam`'s attempt to strip protections in Phase II.

use std::fmt;

use crate::error::McuError;
use crate::map::AddrRange;

/// Kind of memory access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Execute => write!(f, "execute"),
        }
    }
}

/// Permissions a rule grants to its code region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Permissions {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
}

impl Permissions {
    /// Read-only access.
    pub const READ_ONLY: Permissions = Permissions {
        read: true,
        write: false,
    };
    /// Read and write access.
    pub const READ_WRITE: Permissions = Permissions {
        read: true,
        write: true,
    };
    /// Write-only access (rare, but expressible).
    pub const WRITE_ONLY: Permissions = Permissions {
        read: false,
        write: true,
    };
    /// No access at all — used to seal a region against everyone.
    pub const NONE: Permissions = Permissions {
        read: false,
        write: false,
    };

    /// Does this permission set allow `kind`?
    #[must_use]
    pub fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            // Execution of a *data* range is never granted by a data rule.
            AccessKind::Execute => false,
        }
    }
}

/// One EA-MPU rule: `code_range` may access `data_range` with `perms`;
/// everyone else is denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable label for reports ("K_Attest", "IDT", …).
    pub name: &'static str,
    /// The protected data range.
    pub data_range: AddrRange,
    /// The only code range allowed to access it.
    pub code_range: AddrRange,
    /// What that code range may do.
    pub perms: Permissions,
}

impl Rule {
    /// Creates a rule.
    #[must_use]
    pub fn new(
        name: &'static str,
        data_range: AddrRange,
        code_range: AddrRange,
        perms: Permissions,
    ) -> Self {
        Rule {
            name,
            data_range,
            code_range,
            perms,
        }
    }
}

/// The EA-MPU: a fixed number of rule slots plus a lockdown latch.
///
/// # Example
///
/// ```
/// use proverguard_mcu::map::{self, AddrRange};
/// use proverguard_mcu::mpu::{AccessKind, EaMpu, Permissions, Rule};
///
/// # fn main() -> Result<(), proverguard_mcu::McuError> {
/// let mut mpu = EaMpu::new(4);
/// mpu.add_rule(Rule::new(
///     "K_Attest",
///     map::ATTEST_KEY,
///     map::ATTEST_CODE,
///     Permissions::READ_ONLY,
/// ))?;
/// // Code_Attest may read the key; the application may not.
/// assert!(mpu.check(map::ATTEST_PC, map::ATTEST_KEY.start, AccessKind::Read).is_ok());
/// assert!(mpu.check(map::APP_CODE, map::ATTEST_KEY.start, AccessKind::Read).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EaMpu {
    rules: Vec<Rule>,
    capacity: usize,
    locked: bool,
}

impl EaMpu {
    /// Creates an unlocked EA-MPU with `capacity` rule slots.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EaMpu {
            rules: Vec::new(),
            capacity,
            locked: false,
        }
    }

    /// Installed rules.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Rule-slot capacity (the `#r` of Table 3).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` once the configuration has been locked.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Installs a rule.
    ///
    /// # Errors
    ///
    /// - [`McuError::MpuLocked`] after lockdown.
    /// - [`McuError::MpuFull`] if all slots are used.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), McuError> {
        if self.locked {
            return Err(McuError::MpuLocked);
        }
        if self.rules.len() >= self.capacity {
            return Err(McuError::MpuFull {
                capacity: self.capacity,
            });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Removes all rules whose name matches.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuLocked`] after lockdown — this is the call
    /// `Adv_roam` would love to make and cannot.
    pub fn remove_rule(&mut self, name: &str) -> Result<usize, McuError> {
        if self.locked {
            return Err(McuError::MpuLocked);
        }
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        Ok(before - self.rules.len())
    }

    /// Locks the configuration; irreversible until hardware reset.
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// Checks whether code executing at `pc` may perform `kind` at `addr`.
    ///
    /// Denial semantics: if *any* rule covers `addr`, the access is allowed
    /// only if at least one covering rule names a code range containing
    /// `pc` and grants `kind`. Uncovered addresses are unrestricted.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] when the access is denied.
    pub fn check(&self, pc: u32, addr: u32, kind: AccessKind) -> Result<(), McuError> {
        let mut covered = false;
        for rule in &self.rules {
            if !rule.data_range.contains(addr) {
                continue;
            }
            covered = true;
            if rule.code_range.contains(pc) && rule.perms.allows(kind) {
                return Ok(());
            }
        }
        if covered {
            Err(McuError::MpuViolation { pc, addr, kind })
        } else {
            Ok(())
        }
    }

    /// Checks an access spanning `[addr, addr + len)`.
    ///
    /// The span is segmented at every rule boundary it crosses; within a
    /// segment the set of covering rules is constant, so checking one
    /// representative byte per segment is exactly equivalent to checking
    /// every byte.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] for the first denied segment.
    pub fn check_span(
        &self,
        pc: u32,
        addr: u32,
        len: u32,
        kind: AccessKind,
    ) -> Result<(), McuError> {
        if len == 0 {
            return Ok(());
        }
        let span_end = addr.saturating_add(len);
        let mut cuts: Vec<u32> = vec![addr];
        for rule in &self.rules {
            for edge in [rule.data_range.start, rule.data_range.end] {
                if edge > addr && edge < span_end {
                    cuts.push(edge);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for probe in cuts {
            self.check(pc, probe, kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map;

    fn key_rule() -> Rule {
        Rule::new(
            "K_Attest",
            map::ATTEST_KEY,
            map::ATTEST_CODE,
            Permissions::READ_ONLY,
        )
    }

    #[test]
    fn uncovered_addresses_are_open() {
        let mpu = EaMpu::new(4);
        assert!(mpu
            .check(map::APP_CODE, map::RAM.start, AccessKind::Write)
            .is_ok());
        assert!(mpu.check(0, 0xdead_beef, AccessKind::Read).is_ok());
    }

    #[test]
    fn rule_grants_named_code_only() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        assert!(mpu
            .check(map::ATTEST_PC, map::ATTEST_KEY.start, AccessKind::Read)
            .is_ok());
        let denied = mpu.check(map::APP_CODE, map::ATTEST_KEY.start, AccessKind::Read);
        assert!(matches!(denied, Err(McuError::MpuViolation { .. })));
        // Even Code_Clock (trusted, but not named) is denied.
        assert!(mpu
            .check(map::CLOCK_PC, map::ATTEST_KEY.start, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn read_only_rule_denies_writes_even_to_owner() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        assert!(mpu
            .check(map::ATTEST_PC, map::ATTEST_KEY.start, AccessKind::Write)
            .is_err());
    }

    #[test]
    fn overlapping_rules_any_grant_wins() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        // Second rule grants Code_Clock read access to the same range.
        mpu.add_rule(Rule::new(
            "K_Attest-for-clock",
            map::ATTEST_KEY,
            map::CLOCK_CODE,
            Permissions::READ_ONLY,
        ))
        .unwrap();
        assert!(mpu
            .check(map::CLOCK_PC, map::ATTEST_KEY.start, AccessKind::Read)
            .is_ok());
        assert!(mpu
            .check(map::ATTEST_PC, map::ATTEST_KEY.start, AccessKind::Read)
            .is_ok());
        assert!(mpu
            .check(map::APP_CODE, map::ATTEST_KEY.start, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn lockdown_blocks_reconfiguration() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        mpu.lock();
        assert!(matches!(mpu.add_rule(key_rule()), Err(McuError::MpuLocked)));
        assert!(matches!(
            mpu.remove_rule("K_Attest"),
            Err(McuError::MpuLocked)
        ));
        assert!(mpu.is_locked());
        // Checks still work after lockdown.
        assert!(mpu
            .check(map::ATTEST_PC, map::ATTEST_KEY.start, AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn capacity_enforced() {
        let mut mpu = EaMpu::new(1);
        mpu.add_rule(key_rule()).unwrap();
        assert!(matches!(
            mpu.add_rule(key_rule()),
            Err(McuError::MpuFull { capacity: 1 })
        ));
    }

    #[test]
    fn remove_rule_before_lockdown() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        assert_eq!(mpu.remove_rule("K_Attest").unwrap(), 1);
        assert_eq!(mpu.remove_rule("K_Attest").unwrap(), 0);
        assert!(mpu
            .check(map::APP_CODE, map::ATTEST_KEY.start, AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn span_check_covers_partial_overlap() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(key_rule()).unwrap();
        // Span starting before the key but running into it is denied for app code.
        let before = map::ATTEST_KEY.start - 8;
        assert!(mpu
            .check_span(map::APP_CODE, before, 16, AccessKind::Read)
            .is_err());
        // Span stopping right at the key start is fine.
        assert!(mpu
            .check_span(map::APP_CODE, before, 8, AccessKind::Read)
            .is_ok());
        // Owner may span across.
        assert!(mpu
            .check_span(map::ATTEST_PC, before, 16, AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn execute_never_granted_by_data_rules() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(Rule::new(
            "sealed",
            map::COUNTER_R,
            map::ATTEST_CODE,
            Permissions::READ_WRITE,
        ))
        .unwrap();
        assert!(mpu
            .check(map::ATTEST_PC, map::COUNTER_R.start, AccessKind::Execute)
            .is_err());
    }

    #[test]
    fn none_permissions_seal_a_region() {
        let mut mpu = EaMpu::new(4);
        mpu.add_rule(Rule::new(
            "sealed",
            map::CLOCK_MSB,
            map::CLOCK_CODE,
            Permissions::NONE,
        ))
        .unwrap();
        assert!(mpu
            .check(map::CLOCK_PC, map::CLOCK_MSB.start, AccessKind::Read)
            .is_err());
        assert!(mpu
            .check(map::APP_CODE, map::CLOCK_MSB.start, AccessKind::Read)
            .is_err());
    }
}
