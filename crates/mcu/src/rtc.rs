//! Dedicated hardware real-time clocks (Figure 1a and the §6.3 variants).
//!
//! The *base* prototype uses a wide dedicated counter register that never
//! wraps within the device lifetime: 64 bits at full CPU speed
//! (≈ 24 372.6 years at 24 MHz) or 32 bits behind a ÷2²⁰ prescaler
//! (≈ 6 years at 42 ms resolution).
//!
//! Hardware increments the counter; software can at most *read* it — on a
//! correctly configured device. Whether a rogue write is possible is the
//! device's MPU configuration, not this struct's concern: [`HwRtc::set_raw`]
//! exists so the device can model writable (unprotected) clocks and let
//! `Adv_roam` execute its clock-reset attack against them.

use crate::cycles::CLOCK_HZ;

/// A free-running real-time counter of `width` bits behind a `2^prescaler`
/// divider.
///
/// # Example
///
/// ```
/// use proverguard_mcu::rtc::HwRtc;
///
/// let mut rtc = HwRtc::wide64();
/// rtc.advance(24_000_000); // one second of cycles
/// assert!((rtc.seconds() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwRtc {
    width: u32,
    prescaler_log2: u32,
    ticks: u64,
    residual_cycles: u64,
}

impl HwRtc {
    /// The 64-bit full-speed clock of Figure 1a.
    #[must_use]
    pub fn wide64() -> Self {
        HwRtc {
            width: 64,
            prescaler_log2: 0,
            ticks: 0,
            residual_cycles: 0,
        }
    }

    /// The 32-bit ÷2²⁰ clock of §6.3 (42 ms resolution, ~6 year wrap).
    #[must_use]
    pub fn divided32() -> Self {
        HwRtc {
            width: 32,
            prescaler_log2: 20,
            ticks: 0,
            residual_cycles: 0,
        }
    }

    /// An arbitrary clock for ablations.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    #[must_use]
    pub fn custom(width: u32, prescaler_log2: u32) -> Self {
        assert!((1..=64).contains(&width), "rtc width out of range");
        HwRtc {
            width,
            prescaler_log2,
            ticks: 0,
            residual_cycles: 0,
        }
    }

    /// Counter width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// log₂ of the prescaler (0 = one tick per CPU cycle).
    #[must_use]
    pub fn prescaler_log2(&self) -> u32 {
        self.prescaler_log2
    }

    /// Current counter value, wrapped to `width` bits.
    #[must_use]
    pub fn read(&self) -> u64 {
        if self.width == 64 {
            self.ticks
        } else {
            self.ticks & ((1u64 << self.width) - 1)
        }
    }

    /// Current time in seconds (from wrapped ticks — after a wrap, time
    /// appears to restart, which is exactly the failure mode §6.3 sizes
    /// the register to avoid).
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.read() as f64 * 2f64.powi(self.prescaler_log2 as i32) / CLOCK_HZ as f64
    }

    /// Advances by `cycles` CPU cycles.
    pub fn advance(&mut self, cycles: u64) {
        let total = self.residual_cycles + cycles;
        self.ticks = self.ticks.wrapping_add(total >> self.prescaler_log2);
        self.residual_cycles = total & ((1u64 << self.prescaler_log2) - 1);
    }

    /// Overwrites the counter — the clock-reset attack surface. A
    /// correctly protected device never routes a write here; the
    /// unprotected baseline does, letting `Adv_roam` set the clock back.
    pub fn set_raw(&mut self, ticks: u64) {
        self.ticks = if self.width == 64 {
            ticks
        } else {
            ticks & ((1u64 << self.width) - 1)
        };
    }

    /// Seconds until the counter wraps, from zero, at 24 MHz.
    #[must_use]
    pub fn wraparound_seconds(&self) -> f64 {
        2f64.powi(self.width as i32) * 2f64.powi(self.prescaler_log2 as i32) / CLOCK_HZ as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide64_tracks_cycles_exactly() {
        let mut rtc = HwRtc::wide64();
        rtc.advance(123_456);
        assert_eq!(rtc.read(), 123_456);
    }

    #[test]
    fn divided32_prescales() {
        let mut rtc = HwRtc::divided32();
        rtc.advance((1 << 20) - 1);
        assert_eq!(rtc.read(), 0);
        rtc.advance(1);
        assert_eq!(rtc.read(), 1);
        // Residual carries across calls.
        rtc.advance(1 << 19);
        rtc.advance(1 << 19);
        assert_eq!(rtc.read(), 2);
    }

    #[test]
    fn resolution_is_42ms() {
        let mut rtc = HwRtc::divided32();
        rtc.advance(1 << 20);
        let res = rtc.seconds();
        assert!((res - 0.0437).abs() < 0.001, "got {res}");
    }

    #[test]
    fn wraparound_times_match_section_6_3() {
        let years64 = HwRtc::wide64().wraparound_seconds() / (365.25 * 86_400.0);
        assert!((years64 - 24_372.6).abs() < 30.0, "got {years64}");
        let minutes32_raw = HwRtc::custom(32, 0).wraparound_seconds() / 60.0;
        assert!((minutes32_raw - 2.98).abs() < 0.05, "got {minutes32_raw}");
        let years32_div = HwRtc::divided32().wraparound_seconds() / (365.25 * 86_400.0);
        assert!((years32_div - 5.95).abs() < 0.2, "got {years32_div}");
    }

    #[test]
    fn narrow_clock_wraps_and_time_restarts() {
        let mut rtc = HwRtc::custom(8, 0);
        rtc.advance(300);
        assert_eq!(rtc.read(), 300 % 256);
    }

    #[test]
    fn set_raw_models_clock_reset_attack() {
        let mut rtc = HwRtc::wide64();
        rtc.advance(1_000_000);
        rtc.set_raw(10);
        assert_eq!(rtc.read(), 10);
    }

    #[test]
    #[should_panic(expected = "rtc width out of range")]
    fn invalid_width_rejected() {
        let _ = HwRtc::custom(65, 0);
    }
}
