//! The device address map.
//!
//! A fixed layout modelled on small TrustLite/Siskiyou-class devices. RAM
//! is 512 KiB — the exact size the paper uses for its whole-memory MAC
//! cost example in §3.1.

use std::fmt;

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrRange {
    /// First address in the range.
    pub start: u32,
    /// One past the last address in the range.
    pub end: u32,
}

impl AddrRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    #[must_use]
    pub const fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "range start must not exceed end");
        AddrRange { start, end }
    }

    /// Length in bytes.
    #[must_use]
    pub const fn len(&self) -> u32 {
        self.end - self.start
    }

    /// `true` iff the range is empty.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` iff `addr` lies inside the range.
    #[must_use]
    pub const fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }

    /// `true` iff `[addr, addr+len)` lies entirely inside the range.
    #[must_use]
    pub fn contains_span(&self, addr: u32, len: u32) -> bool {
        if len == 0 {
            return self.contains(addr) || addr == self.end;
        }
        match addr.checked_add(len) {
            Some(end) => addr >= self.start && end <= self.end,
            None => false,
        }
    }

    /// `true` iff the two ranges share at least one address.
    #[must_use]
    pub const fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#010x}, {:#010x})", self.start, self.end)
    }
}

/// ROM: boot code, `Code_Attest`, `Code_Clock`, and `K_Attest` (16 KiB).
pub const ROM: AddrRange = AddrRange::new(0x0000_0000, 0x0000_4000);

/// Flash: the application image (256 KiB).
pub const FLASH: AddrRange = AddrRange::new(0x0001_0000, 0x0005_0000);

/// RAM: 512 KiB of writable memory — the size of the paper's §3.1 example.
pub const RAM: AddrRange = AddrRange::new(0x0010_0000, 0x0018_0000);

/// Memory-mapped I/O: MPU configuration, timer, RTC (4 KiB).
pub const MMIO: AddrRange = AddrRange::new(0x0020_0000, 0x0020_1000);

/// MMIO sub-window: EA-MPU configuration registers.
pub const MMIO_MPU_CONFIG: AddrRange = AddrRange::new(0x0020_0000, 0x0020_0100);

/// MMIO sub-window: `Clock_LSB` timer registers (counter + control).
pub const MMIO_TIMER: AddrRange = AddrRange::new(0x0020_0100, 0x0020_0120);

/// MMIO sub-window: dedicated hardware RTC register (Figure 1a variant).
pub const MMIO_RTC: AddrRange = AddrRange::new(0x0020_0120, 0x0020_0140);

// ---- Well-known ROM layout -------------------------------------------------

/// ROM window holding the secure-boot loader.
pub const BOOT_CODE: AddrRange = AddrRange::new(0x0000_0000, 0x0000_1000);

/// ROM window holding `Code_Attest` (the attestation trust anchor).
pub const ATTEST_CODE: AddrRange = AddrRange::new(0x0000_1000, 0x0000_2000);

/// ROM window holding `Code_Clock` (the SW-clock interrupt handler).
pub const CLOCK_CODE: AddrRange = AddrRange::new(0x0000_2000, 0x0000_2800);

/// ROM cell holding `K_Attest` (16 bytes).
pub const ATTEST_KEY: AddrRange = AddrRange::new(0x0000_3000, 0x0000_3010);

// ---- Well-known RAM layout -------------------------------------------------

/// RAM word holding `counter_R` (the last accepted request counter, 8 bytes).
pub const COUNTER_R: AddrRange = AddrRange::new(0x0010_0000, 0x0010_0008);

/// RAM word holding `Clock_MSB` (high-order SW-clock bits, 8 bytes).
pub const CLOCK_MSB: AddrRange = AddrRange::new(0x0010_0008, 0x0010_0010);

/// RAM region holding the interrupt descriptor table (32 vectors × 4 bytes).
pub const IDT: AddrRange = AddrRange::new(0x0010_0010, 0x0010_0090);

/// RAM region holding the trust anchor's extension state (24 bytes):
/// clock-sync offset (i64), last sync counter (u64), last command counter
/// (u64) — used by the §7 future-work services.
pub const TRUST_STATE: AddrRange = AddrRange::new(0x0010_0090, 0x0010_00a8);

/// General-purpose application RAM (everything after the reserved words).
pub const APP_RAM: AddrRange = AddrRange::new(0x0010_0100, 0x0018_0000);

/// RAM window holding the execute-from-RAM shadow copy of the flash
/// image (installed by the flash controller's DMA engine after a
/// firmware update; flash-sized, at the bottom of application RAM).
pub const APP_IMAGE_MIRROR: AddrRange = AddrRange::new(APP_RAM.start, APP_RAM.start + FLASH.len());

/// Flash window treated as the untrusted application's code region.
pub const APP_CODE_RANGE: AddrRange = AddrRange::new(0x0001_0000, 0x0005_0000);

/// The universal code range: a rule naming it grants access to code
/// executing *anywhere* (used for "readable by everyone, writable by
/// nobody else" patterns).
pub const ALL_CODE: AddrRange = AddrRange::new(0, u32::MAX);

/// A representative program-counter value inside the untrusted application.
pub const APP_CODE: u32 = APP_CODE_RANGE.start + 0x100;

/// A representative program-counter value inside `Code_Attest`.
pub const ATTEST_PC: u32 = ATTEST_CODE.start + 0x10;

/// A representative program-counter value inside `Code_Clock`.
pub const CLOCK_PC: u32 = CLOCK_CODE.start + 0x10;

/// A representative program-counter value inside the boot loader.
pub const BOOT_PC: u32 = BOOT_CODE.start + 0x10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_is_512_kib() {
        assert_eq!(RAM.len(), 512 * 1024);
    }

    #[test]
    fn regions_do_not_overlap() {
        let regions = [ROM, FLASH, RAM, MMIO];
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn rom_sublayout_within_rom() {
        for sub in [BOOT_CODE, ATTEST_CODE, CLOCK_CODE, ATTEST_KEY] {
            assert!(ROM.contains_span(sub.start, sub.len()), "{sub} outside ROM");
        }
    }

    #[test]
    fn ram_sublayout_within_ram() {
        for sub in [COUNTER_R, CLOCK_MSB, IDT, TRUST_STATE, APP_RAM] {
            assert!(RAM.contains_span(sub.start, sub.len()), "{sub} outside RAM");
        }
    }

    #[test]
    fn image_mirror_is_flash_sized_and_inside_app_ram() {
        assert_eq!(APP_IMAGE_MIRROR.len(), FLASH.len());
        assert!(APP_RAM.contains_span(APP_IMAGE_MIRROR.start, APP_IMAGE_MIRROR.len()));
    }

    #[test]
    fn reserved_ram_words_do_not_overlap() {
        let words = [COUNTER_R, CLOCK_MSB, IDT, TRUST_STATE, APP_RAM];
        for (i, a) in words.iter().enumerate() {
            for b in &words[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn contains_span_edges() {
        let r = AddrRange::new(0x100, 0x200);
        assert!(r.contains_span(0x100, 0x100));
        assert!(!r.contains_span(0x100, 0x101));
        assert!(!r.contains_span(0xff, 2));
        assert!(r.contains_span(0x1ff, 1));
        assert!(!r.contains_span(u32::MAX, 2)); // overflow guarded
    }

    #[test]
    fn representative_pcs_inside_their_regions() {
        assert!(ATTEST_CODE.contains(ATTEST_PC));
        assert!(CLOCK_CODE.contains(CLOCK_PC));
        assert!(BOOT_CODE.contains(BOOT_PC));
        assert!(APP_CODE_RANGE.contains(APP_CODE));
    }

    #[test]
    fn mmio_subwindows_within_mmio() {
        for sub in [MMIO_MPU_CONFIG, MMIO_TIMER, MMIO_RTC] {
            assert!(MMIO.contains_span(sub.start, sub.len()));
        }
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(
            AddrRange::new(0, 0x4000).to_string(),
            "[0x00000000, 0x00004000)"
        );
    }
}
