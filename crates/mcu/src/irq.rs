//! Interrupt controller and in-memory interrupt descriptor table.
//!
//! Figure 1b's security argument hinges on the interrupt path: if
//! `Adv_roam` can redirect or suppress the `Clock_LSB` wrap-around
//! interrupt, the SW-clock silently stops. Three attack surfaces exist and
//! all are modelled here or in the device:
//!
//! 1. **Rewriting the IDT entry** — the IDT lives in RAM at [`map::IDT`];
//!    writes go through the bus and can be denied by an MPU rule.
//! 2. **Moving the IDT** — the IDT base register is hardware-fixed in this
//!    design ("the location of the IDT itself must be immutable").
//! 3. **Disabling the interrupt** — the enable bit is an MMIO register the
//!    device can place under an MPU rule.
//!
//! Hardware dispatch reads the IDT directly (a hardware read, not a
//! software access), so *read* rules on the IDT never break dispatch; only
//! *write* protection is needed.

use crate::error::McuError;
use crate::map;
use crate::memory::PhysicalMemory;

/// Number of interrupt vectors.
pub const VECTORS: u8 = 32;

/// The interrupt controller state.
///
/// Pending interrupts are *counted* per vector rather than latched as a
/// single bit: the simulation advances time in coarse steps, and a counter
/// models the real-world behaviour of a promptly-serviced interrupt line
/// (one handler run per wrap) without forcing cycle-by-cycle stepping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrqController {
    pending: [u32; VECTORS as usize],
    /// Per-vector enable mask (bit set = enabled).
    enabled_mask: u32,
    /// Global interrupt enable.
    global_enable: bool,
}

impl Default for IrqController {
    fn default() -> Self {
        Self::new()
    }
}

impl IrqController {
    /// A controller with all vectors enabled and none pending.
    #[must_use]
    pub fn new() -> Self {
        IrqController {
            pending: [0; VECTORS as usize],
            enabled_mask: u32::MAX,
            global_enable: true,
        }
    }

    /// Raises `vector` (increments its pending count).
    ///
    /// # Errors
    ///
    /// [`McuError::BadIrqVector`] if `vector >= 32`.
    pub fn raise(&mut self, vector: u8) -> Result<(), McuError> {
        if vector >= VECTORS {
            return Err(McuError::BadIrqVector { vector });
        }
        self.pending[vector as usize] = self.pending[vector as usize].saturating_add(1);
        Ok(())
    }

    /// The lowest pending-and-enabled vector, if interrupts are globally
    /// enabled.
    #[must_use]
    pub fn next_pending(&self) -> Option<u8> {
        if !self.global_enable {
            return None;
        }
        (0..VECTORS).find(|&v| self.pending[v as usize] > 0 && self.enabled_mask & (1 << v) != 0)
    }

    /// Outstanding deliveries for `vector` (0 for out-of-range vectors).
    #[must_use]
    pub fn pending_count(&self, vector: u8) -> u32 {
        if vector < VECTORS {
            self.pending[vector as usize]
        } else {
            0
        }
    }

    /// Consumes one pending delivery of `vector` (handler acknowledgement).
    ///
    /// # Errors
    ///
    /// [`McuError::BadIrqVector`] if `vector >= 32`.
    pub fn acknowledge(&mut self, vector: u8) -> Result<(), McuError> {
        if vector >= VECTORS {
            return Err(McuError::BadIrqVector { vector });
        }
        self.pending[vector as usize] = self.pending[vector as usize].saturating_sub(1);
        Ok(())
    }

    /// Sets the per-vector enable bit.
    ///
    /// # Errors
    ///
    /// [`McuError::BadIrqVector`] if `vector >= 32`.
    pub fn set_vector_enabled(&mut self, vector: u8, enabled: bool) -> Result<(), McuError> {
        if vector >= VECTORS {
            return Err(McuError::BadIrqVector { vector });
        }
        if enabled {
            self.enabled_mask |= 1 << vector;
        } else {
            self.enabled_mask &= !(1 << vector);
        }
        Ok(())
    }

    /// `true` iff the vector's enable bit is set.
    #[must_use]
    pub fn is_vector_enabled(&self, vector: u8) -> bool {
        vector < VECTORS && self.enabled_mask & (1 << vector) != 0
    }

    /// Sets the global interrupt enable.
    pub fn set_global_enable(&mut self, enabled: bool) {
        self.global_enable = enabled;
    }

    /// `true` iff interrupts are globally enabled.
    #[must_use]
    pub fn is_globally_enabled(&self) -> bool {
        self.global_enable
    }
}

/// Reads the handler address for `vector` from the in-memory IDT.
///
/// This is the *hardware* dispatch path: it reads physical memory directly
/// and is not subject to MPU rules (which only constrain software).
///
/// # Errors
///
/// - [`McuError::BadIrqVector`] if `vector >= 32`.
/// - [`McuError::BusFault`] if the IDT region is unmapped (cannot happen
///   with the default map).
pub fn handler_address(memory: &PhysicalMemory, vector: u8) -> Result<u32, McuError> {
    if vector >= VECTORS {
        return Err(McuError::BadIrqVector { vector });
    }
    let mut buf = [0u8; 4];
    memory.read(map::IDT.start + 4 * vector as u32, &mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes the handler address for `vector` into the in-memory IDT.
///
/// This is a plain memory helper used during boot, when the MPU is not yet
/// locked; at runtime software must go through the bus (and the MPU).
///
/// # Errors
///
/// Same conditions as [`handler_address`].
pub fn install_handler(
    memory: &mut PhysicalMemory,
    vector: u8,
    handler: u32,
) -> Result<(), McuError> {
    if vector >= VECTORS {
        return Err(McuError::BadIrqVector { vector });
    }
    memory.write(map::IDT.start + 4 * vector as u32, &handler.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_dispatch_order() {
        let mut irq = IrqController::new();
        irq.raise(5).unwrap();
        irq.raise(2).unwrap();
        assert_eq!(irq.next_pending(), Some(2));
        irq.acknowledge(2).unwrap();
        assert_eq!(irq.next_pending(), Some(5));
        irq.acknowledge(5).unwrap();
        assert_eq!(irq.next_pending(), None);
    }

    #[test]
    fn multiple_raises_are_counted_not_latched() {
        let mut irq = IrqController::new();
        irq.raise(0).unwrap();
        irq.raise(0).unwrap();
        irq.raise(0).unwrap();
        assert_eq!(irq.pending_count(0), 3);
        irq.acknowledge(0).unwrap();
        assert_eq!(irq.next_pending(), Some(0), "two deliveries remain");
        irq.acknowledge(0).unwrap();
        irq.acknowledge(0).unwrap();
        assert_eq!(irq.next_pending(), None);
        // Over-acknowledging saturates at zero.
        irq.acknowledge(0).unwrap();
        assert_eq!(irq.pending_count(0), 0);
    }

    #[test]
    fn bad_vector_rejected() {
        let mut irq = IrqController::new();
        assert!(matches!(
            irq.raise(32),
            Err(McuError::BadIrqVector { vector: 32 })
        ));
        assert!(irq.acknowledge(255).is_err());
        assert!(irq.set_vector_enabled(32, true).is_err());
    }

    #[test]
    fn vector_disable_masks_dispatch() {
        let mut irq = IrqController::new();
        irq.raise(0).unwrap();
        irq.set_vector_enabled(0, false).unwrap();
        assert_eq!(irq.next_pending(), None);
        // The pending bit survives; re-enabling delivers it.
        irq.set_vector_enabled(0, true).unwrap();
        assert_eq!(irq.next_pending(), Some(0));
    }

    #[test]
    fn global_disable_masks_everything() {
        let mut irq = IrqController::new();
        irq.raise(3).unwrap();
        irq.set_global_enable(false);
        assert_eq!(irq.next_pending(), None);
        irq.set_global_enable(true);
        assert_eq!(irq.next_pending(), Some(3));
    }

    #[test]
    fn idt_install_and_lookup() {
        let mut mem = PhysicalMemory::new();
        install_handler(&mut mem, 0, 0x0000_2010).unwrap();
        install_handler(&mut mem, 7, 0x0001_0040).unwrap();
        assert_eq!(handler_address(&mem, 0).unwrap(), 0x0000_2010);
        assert_eq!(handler_address(&mem, 7).unwrap(), 0x0001_0040);
        assert_eq!(handler_address(&mem, 1).unwrap(), 0);
        assert!(handler_address(&mem, 32).is_err());
    }
}
