//! Secure boot (§6.2 "Secure Boot").
//!
//! The protection of the critical components is realized by EA-MPU rules —
//! but if the adversary controls system software it could change those
//! rules before they are locked. Secure boot closes the loop: immutable
//! ROM code (1) verifies that the correct software is loaded (hash of the
//! flash image against a reference burned in ROM), (2) installs the memory
//! protection rules, and (3) locks the EA-MPU configuration.
//!
//! # Example
//!
//! ```
//! use proverguard_mcu::boot::{image_digest, SecureBoot};
//! use proverguard_mcu::device::Mcu;
//!
//! # fn main() -> Result<(), proverguard_mcu::McuError> {
//! let mut mcu = Mcu::new();
//! mcu.program_flash(b"application v1")?;
//! let reference = image_digest(mcu.physical_memory().flash());
//! SecureBoot::new(reference).run(&mut mcu, &[])?;
//! assert!(mcu.mpu().is_locked());
//! # Ok(())
//! # }
//! ```

use proverguard_crypto::ct::ct_eq;
use proverguard_crypto::sha1::{Sha1, DIGEST_SIZE};

use crate::device::Mcu;
use crate::error::McuError;
use crate::mpu::Rule;

/// Computes the reference digest of a flash image (whole-flash SHA-1).
#[must_use]
pub fn image_digest(flash: &[u8]) -> [u8; DIGEST_SIZE] {
    Sha1::digest(flash)
}

/// The ROM boot loader.
#[derive(Debug, Clone)]
pub struct SecureBoot {
    reference_digest: [u8; DIGEST_SIZE],
}

impl SecureBoot {
    /// A boot loader trusting images matching `reference_digest`.
    #[must_use]
    pub fn new(reference_digest: [u8; DIGEST_SIZE]) -> Self {
        SecureBoot { reference_digest }
    }

    /// The reference digest burned into ROM.
    #[must_use]
    pub fn reference_digest(&self) -> &[u8; DIGEST_SIZE] {
        &self.reference_digest
    }

    /// Boots the device: verifies the flash image, installs `rules`, and
    /// locks the EA-MPU.
    ///
    /// # Errors
    ///
    /// - [`McuError::BootImageRejected`] if the flash hash mismatches; no
    ///   rules are installed and the MPU is left unlocked (the device
    ///   refuses to come up).
    /// - [`McuError::MpuFull`] if `rules` exceed the MPU capacity.
    pub fn run(&self, mcu: &mut Mcu, rules: &[Rule]) -> Result<(), McuError> {
        let digest = image_digest(mcu.physical_memory().flash());
        if !ct_eq(&digest, &self.reference_digest) {
            return Err(McuError::BootImageRejected {
                reason: "flash image digest mismatch".to_string(),
            });
        }
        for rule in rules {
            mcu.mpu_mut().add_rule(*rule)?;
        }
        mcu.mpu_mut().lock();
        Ok(())
    }

    /// Recovery boot: installs `rules` and locks the EA-MPU **without**
    /// checking the flash digest.
    ///
    /// This is the OTA safety net. A power loss mid-update leaves flash
    /// holding neither the old nor the new image; refusing to come up
    /// (the [`SecureBoot::run`] behaviour) would brick the device. The
    /// recovery path instead arms the trust anchor's protections — the
    /// attestation key, counter and clock words are exactly as defended
    /// as in a healthy boot — and lets the device come up *unattestable*:
    /// any attestation it produces matches neither reference image, so a
    /// verifier sees the torn state immediately and can re-issue the
    /// update. The application image is never executed from this state.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuFull`] if `rules` exceed the MPU capacity.
    pub fn run_recovery(&self, mcu: &mut Mcu, rules: &[Rule]) -> Result<(), McuError> {
        for rule in rules {
            mcu.mpu_mut().add_rule(*rule)?;
        }
        mcu.mpu_mut().lock();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map;
    use crate::mpu::Permissions;

    fn booted_mcu(rules: &[Rule]) -> Result<Mcu, McuError> {
        let mut mcu = Mcu::new();
        mcu.program_flash(b"good image").unwrap();
        let reference = image_digest(mcu.physical_memory().flash());
        SecureBoot::new(reference).run(&mut mcu, rules)?;
        Ok(mcu)
    }

    #[test]
    fn good_image_boots_and_locks() {
        let mcu = booted_mcu(&[]).unwrap();
        assert!(mcu.mpu().is_locked());
    }

    #[test]
    fn tampered_image_refused() {
        let mut mcu = Mcu::new();
        mcu.program_flash(b"good image").unwrap();
        let reference = image_digest(mcu.physical_memory().flash());
        // Malware lands in flash before boot.
        mcu.program_flash(b"evil image").unwrap();
        let err = SecureBoot::new(reference).run(&mut mcu, &[]);
        assert!(matches!(err, Err(McuError::BootImageRejected { .. })));
        assert!(!mcu.mpu().is_locked());
    }

    #[test]
    fn rules_installed_before_lock() {
        let rule = Rule::new(
            "K_Attest",
            map::ATTEST_KEY,
            map::ATTEST_CODE,
            Permissions::READ_ONLY,
        );
        let mcu = booted_mcu(&[rule]).unwrap();
        assert_eq!(mcu.mpu().rules().len(), 1);
        assert!(mcu.mpu().is_locked());
    }

    #[test]
    fn too_many_rules_rejected() {
        let rule = Rule::new(
            "r",
            map::ATTEST_KEY,
            map::ATTEST_CODE,
            Permissions::READ_ONLY,
        );
        let rules = vec![rule; crate::device::DEFAULT_MPU_CAPACITY + 1];
        assert!(matches!(booted_mcu(&rules), Err(McuError::MpuFull { .. })));
    }

    #[test]
    fn recovery_boot_locks_without_digest_check() {
        let mut mcu = Mcu::new();
        mcu.program_flash(b"good image").unwrap();
        let reference = image_digest(mcu.physical_memory().flash());
        // Torn flash: neither image. A normal boot refuses...
        mcu.program_flash(b"good imag\0").unwrap();
        let boot = SecureBoot::new(reference);
        assert!(boot.run(&mut mcu, &[]).is_err());
        // ...but recovery still arms the protections.
        let rule = Rule::new(
            "K_Attest",
            map::ATTEST_KEY,
            map::ATTEST_CODE,
            Permissions::READ_ONLY,
        );
        boot.run_recovery(&mut mcu, &[rule]).unwrap();
        assert!(mcu.mpu().is_locked());
        assert_eq!(mcu.mpu().rules().len(), 1);
    }

    #[test]
    fn digest_is_whole_flash() {
        // Two images differing only in a far byte produce different digests.
        let mut mcu = Mcu::new();
        let mut image = vec![0u8; 1024];
        mcu.program_flash(&image).unwrap();
        let d1 = image_digest(mcu.physical_memory().flash());
        image[1000] = 1;
        mcu.program_flash(&image).unwrap();
        let d2 = image_digest(mcu.physical_memory().flash());
        assert_ne!(d1, d2);
    }
}
