//! MCU error types.

use std::error::Error;
use std::fmt;

use crate::mpu::AccessKind;

/// Errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum McuError {
    /// An access touched an address that no memory region maps.
    BusFault {
        /// Offending address.
        addr: u32,
    },
    /// The execution-aware MPU denied an access.
    MpuViolation {
        /// Program counter of the code attempting the access.
        pc: u32,
        /// Address being accessed.
        addr: u32,
        /// Kind of access attempted.
        kind: AccessKind,
    },
    /// A write targeted read-only memory (ROM).
    RomWrite {
        /// Offending address.
        addr: u32,
    },
    /// The MPU is locked and its configuration cannot change.
    MpuLocked,
    /// The MPU has no free rule slots.
    MpuFull {
        /// Number of rule slots the MPU was synthesized with.
        capacity: usize,
    },
    /// Secure boot rejected the flash image.
    BootImageRejected {
        /// Human-readable reason.
        reason: String,
    },
    /// An interrupt vector was out of range.
    BadIrqVector {
        /// Offending vector number.
        vector: u8,
    },
    /// An ISA program fault (illegal opcode, PC out of executable memory…).
    CpuFault {
        /// Program counter at the fault.
        pc: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// Control flow entered a protected code region somewhere other than
    /// its designated entry point (§6.2: "limiting code entry points").
    EntryPointViolation {
        /// Program counter the jump came from.
        from: u32,
        /// Illegal target inside the protected region.
        to: u32,
    },
    /// The battery has been depleted; the device is dead.
    BatteryDepleted,
    /// A dirty-tracking segment length was not a power of two between
    /// 64 bytes and the RAM size.
    BadSegmentLen {
        /// Offending length in bytes.
        len: u32,
    },
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::BusFault { addr } => write!(f, "bus fault at {addr:#010x}"),
            McuError::MpuViolation { pc, addr, kind } => write!(
                f,
                "ea-mpu violation: pc {pc:#010x} attempted {kind} at {addr:#010x}"
            ),
            McuError::RomWrite { addr } => write!(f, "write to rom at {addr:#010x}"),
            McuError::MpuLocked => write!(f, "ea-mpu configuration is locked"),
            McuError::MpuFull { capacity } => {
                write!(f, "ea-mpu has no free rule slots (capacity {capacity})")
            }
            McuError::BootImageRejected { reason } => {
                write!(f, "secure boot rejected the image: {reason}")
            }
            McuError::BadIrqVector { vector } => write!(f, "bad interrupt vector {vector}"),
            McuError::CpuFault { pc, reason } => {
                write!(f, "cpu fault at {pc:#010x}: {reason}")
            }
            McuError::EntryPointViolation { from, to } => {
                write!(
                    f,
                    "entry-point violation: jump from {from:#010x} into protected code at {to:#010x}"
                )
            }
            McuError::BatteryDepleted => write!(f, "battery depleted"),
            McuError::BadSegmentLen { len } => {
                write!(f, "bad dirty-tracking segment length {len}")
            }
        }
    }
}

impl Error for McuError {}
