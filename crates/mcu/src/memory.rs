//! Physical memory backing the address map.
//!
//! [`PhysicalMemory`] stores ROM, flash and RAM contents and enforces the
//! *physical* property that ROM cannot be written after manufacturing
//! ([`PhysicalMemory::burn_rom`] is the factory step). Access-control
//! (who may read/write what) is the MPU's job, not this module's.

use crate::error::McuError;
use crate::map::{self, AddrRange};

/// Flat storage for the ROM, flash and RAM regions.
#[derive(Clone)]
pub struct PhysicalMemory {
    rom: Vec<u8>,
    flash: Vec<u8>,
    ram: Vec<u8>,
}

impl std::fmt::Debug for PhysicalMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMemory")
            .field("rom_bytes", &self.rom.len())
            .field("flash_bytes", &self.flash.len())
            .field("ram_bytes", &self.ram.len())
            .finish()
    }
}

impl Default for PhysicalMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysicalMemory {
    /// Creates zeroed memory matching the [`map`] layout.
    #[must_use]
    pub fn new() -> Self {
        PhysicalMemory {
            rom: vec![0; map::ROM.len() as usize],
            flash: vec![0; map::FLASH.len() as usize],
            ram: vec![0; map::RAM.len() as usize],
        }
    }

    /// Resolves an address to its region and offset.
    fn region_of(&self, addr: u32) -> Option<(AddrRange, Region)> {
        if map::ROM.contains(addr) {
            Some((map::ROM, Region::Rom))
        } else if map::FLASH.contains(addr) {
            Some((map::FLASH, Region::Flash))
        } else if map::RAM.contains(addr) {
            Some((map::RAM, Region::Ram))
        } else {
            None
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves mapped memory (MMIO is
    /// handled by the device, not here).
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), McuError> {
        let (range, region) = self
            .region_of(addr)
            .filter(|(range, _)| range.contains_span(addr, buf.len() as u32))
            .ok_or(McuError::BusFault { addr })?;
        let off = (addr - range.start) as usize;
        let src = match region {
            Region::Rom => &self.rom,
            Region::Flash => &self.flash,
            Region::Ram => &self.ram,
        };
        buf.copy_from_slice(&src[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// - [`McuError::BusFault`] if the span leaves mapped memory.
    /// - [`McuError::RomWrite`] if the span touches ROM — ROM is
    ///   physically immutable at runtime.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        let (range, region) = self
            .region_of(addr)
            .filter(|(range, _)| range.contains_span(addr, data.len() as u32))
            .ok_or(McuError::BusFault { addr })?;
        let off = (addr - range.start) as usize;
        let dst = match region {
            Region::Rom => return Err(McuError::RomWrite { addr }),
            Region::Flash => &mut self.flash,
            Region::Ram => &mut self.ram,
        };
        dst[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Factory step: writes ROM contents before the device ships.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves ROM.
    pub fn burn_rom(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        if !map::ROM.contains_span(addr, data.len() as u32) {
            return Err(McuError::BusFault { addr });
        }
        let off = (addr - map::ROM.start) as usize;
        self.rom[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Programs the flash image (used by provisioning and by `Adv_roam`'s
    /// malware installation in the simulation — flash *is* writable).
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves flash.
    pub fn program_flash(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        self.write(addr, data).and_then(|()| {
            if map::FLASH.contains(addr) {
                Ok(())
            } else {
                Err(McuError::BusFault { addr })
            }
        })
    }

    /// Zeroes all of RAM — what a power cycle does to volatile memory.
    /// ROM and flash are non-volatile and survive.
    pub fn wipe_ram(&mut self) {
        self.ram.fill(0);
    }

    /// Borrows the whole RAM contents (for whole-memory MAC computation).
    #[must_use]
    pub fn ram(&self) -> &[u8] {
        &self.ram
    }

    /// Borrows the whole flash contents (for secure-boot hashing).
    #[must_use]
    pub fn flash(&self) -> &[u8] {
        &self.flash
    }
}

#[derive(Clone, Copy)]
enum Region {
    Rom,
    Flash,
    Ram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_read_write_roundtrip() {
        let mut mem = PhysicalMemory::new();
        mem.write(map::RAM.start + 100, &[9, 8, 7]).unwrap();
        let mut buf = [0u8; 3];
        mem.read(map::RAM.start + 100, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7]);
    }

    #[test]
    fn rom_write_rejected_but_burn_allowed() {
        let mut mem = PhysicalMemory::new();
        assert!(matches!(
            mem.write(map::ROM.start, &[1]),
            Err(McuError::RomWrite { .. })
        ));
        mem.burn_rom(map::ROM.start + 4, &[0xaa, 0xbb]).unwrap();
        let mut buf = [0u8; 2];
        mem.read(map::ROM.start + 4, &mut buf).unwrap();
        assert_eq!(buf, [0xaa, 0xbb]);
    }

    #[test]
    fn burn_rom_outside_rom_rejected() {
        let mut mem = PhysicalMemory::new();
        assert!(mem.burn_rom(map::RAM.start, &[1]).is_err());
        // Span straddling the ROM end is also rejected.
        assert!(mem.burn_rom(map::ROM.end - 1, &[1, 2]).is_err());
    }

    #[test]
    fn unmapped_access_faults() {
        let mut mem = PhysicalMemory::new();
        let mut buf = [0u8];
        assert!(matches!(
            mem.read(0x0009_0000, &mut buf),
            Err(McuError::BusFault { .. })
        ));
        assert!(mem.write(0xffff_0000, &[0]).is_err());
    }

    #[test]
    fn cross_region_span_faults() {
        let mem = PhysicalMemory::new();
        let mut buf = [0u8; 8];
        // Starts in ROM but runs past its end into unmapped space.
        assert!(mem.read(map::ROM.end - 4, &mut buf).is_err());
    }

    #[test]
    fn flash_programming() {
        let mut mem = PhysicalMemory::new();
        mem.program_flash(map::FLASH.start, b"app image").unwrap();
        assert_eq!(&mem.flash()[..9], b"app image");
    }

    #[test]
    fn ram_slice_is_full_size() {
        let mem = PhysicalMemory::new();
        assert_eq!(mem.ram().len(), 512 * 1024);
    }
}
