//! Physical memory backing the address map.
//!
//! [`PhysicalMemory`] stores ROM, flash and RAM contents and enforces the
//! *physical* property that ROM cannot be written after manufacturing
//! ([`PhysicalMemory::burn_rom`] is the factory step). Access-control
//! (who may read/write what) is the MPU's job, not this module's.
//!
//! RAM additionally carries a hardware **dirty map**: one bit per
//! fixed-size segment, set by the memory controller on *any* RAM write
//! (there is no way to store a byte without tripping it) and cleared only
//! through the device's PC-gated acknowledge path. The incremental
//! attestation cache rests entirely on this bit being write-synchronous.
//!
//! Alongside each dirty bit the controller keeps a **last-write epoch**:
//! a copy of the device's epoch register latched on every write covering
//! the segment. The register counts attestation rounds and advances only
//! through the PC-gated [`crate::device::Mcu::advance_epoch`], so the log
//! answers "was this segment written since round R?" with the same
//! write-synchronous guarantee the dirty map gives "was it written since
//! the last acknowledge?" — the RATA-style primitive behind
//! `AttestScope::History`.

use crate::error::McuError;
use crate::map::{self, AddrRange};

/// Default dirty-tracking granularity: 8 KiB segments, i.e. 64 segments
/// over the 512 KiB RAM.
pub const DEFAULT_SEGMENT_LEN: u32 = 8 * 1024;

/// Smallest supported dirty-tracking segment (one SHA-1 block).
pub const MIN_SEGMENT_LEN: u32 = 64;

/// Reset value of the epoch register: writes before the first attestation
/// round belong to epoch 1 ("modified since round 0").
pub const EPOCH_RESET: u64 = 1;

/// Flat storage for the ROM, flash and RAM regions.
#[derive(Clone)]
pub struct PhysicalMemory {
    rom: Vec<u8>,
    flash: Vec<u8>,
    ram: Vec<u8>,
    /// Dirty-tracking granularity in bytes (power of two).
    segment_len: u32,
    /// One dirty bit per RAM segment.
    dirty: Vec<bool>,
    /// Epoch register latched into [`Self::epochs`] on every write.
    epoch: u64,
    /// Last-write epoch per RAM segment.
    epochs: Vec<u64>,
}

impl std::fmt::Debug for PhysicalMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysicalMemory")
            .field("rom_bytes", &self.rom.len())
            .field("flash_bytes", &self.flash.len())
            .field("ram_bytes", &self.ram.len())
            .finish()
    }
}

impl Default for PhysicalMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysicalMemory {
    /// Creates zeroed memory matching the [`map`] layout.
    #[must_use]
    pub fn new() -> Self {
        let segments = map::RAM.len().div_ceil(DEFAULT_SEGMENT_LEN) as usize;
        PhysicalMemory {
            rom: vec![0; map::ROM.len() as usize],
            flash: vec![0; map::FLASH.len() as usize],
            ram: vec![0; map::RAM.len() as usize],
            segment_len: DEFAULT_SEGMENT_LEN,
            // Everything starts dirty: no digest has ever covered it.
            dirty: vec![true; segments],
            epoch: EPOCH_RESET,
            // And everything was "just written": modified since round 0.
            epochs: vec![EPOCH_RESET; segments],
        }
    }

    /// Resolves an address to its region and offset.
    fn region_of(&self, addr: u32) -> Option<(AddrRange, Region)> {
        if map::ROM.contains(addr) {
            Some((map::ROM, Region::Rom))
        } else if map::FLASH.contains(addr) {
            Some((map::FLASH, Region::Flash))
        } else if map::RAM.contains(addr) {
            Some((map::RAM, Region::Ram))
        } else {
            None
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves mapped memory (MMIO is
    /// handled by the device, not here).
    pub fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), McuError> {
        let (range, region) = self
            .region_of(addr)
            .filter(|(range, _)| range.contains_span(addr, buf.len() as u32))
            .ok_or(McuError::BusFault { addr })?;
        let off = (addr - range.start) as usize;
        let src = match region {
            Region::Rom => &self.rom,
            Region::Flash => &self.flash,
            Region::Ram => &self.ram,
        };
        buf.copy_from_slice(&src[off..off + buf.len()]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// - [`McuError::BusFault`] if the span leaves mapped memory.
    /// - [`McuError::RomWrite`] if the span touches ROM — ROM is
    ///   physically immutable at runtime.
    pub fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        let (range, region) = self
            .region_of(addr)
            .filter(|(range, _)| range.contains_span(addr, data.len() as u32))
            .ok_or(McuError::BusFault { addr })?;
        let off = (addr - range.start) as usize;
        let dst = match region {
            Region::Rom => return Err(McuError::RomWrite { addr }),
            Region::Flash => &mut self.flash,
            Region::Ram => &mut self.ram,
        };
        dst[off..off + data.len()].copy_from_slice(data);
        if matches!(region, Region::Ram) {
            self.mark_dirty_span(off, data.len());
        }
        Ok(())
    }

    /// Sets the dirty bit of every segment overlapping `[off, off+len)`
    /// (RAM offsets) and latches the epoch register into their last-write
    /// epochs. The controller does this synchronously with the store —
    /// there is no window where data has changed but the bit is still
    /// clear or the epoch still old.
    fn mark_dirty_span(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let seg = self.segment_len as usize;
        let first = off / seg;
        let last = ((off + len - 1) / seg).min(self.dirty.len() - 1);
        for bit in &mut self.dirty[first..=last] {
            *bit = true;
        }
        for e in &mut self.epochs[first..=last] {
            *e = self.epoch;
        }
    }

    /// Factory step: writes ROM contents before the device ships.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves ROM.
    pub fn burn_rom(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        if !map::ROM.contains_span(addr, data.len() as u32) {
            return Err(McuError::BusFault { addr });
        }
        let off = (addr - map::ROM.start) as usize;
        self.rom[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Programs the flash image (used by provisioning and by `Adv_roam`'s
    /// malware installation in the simulation — flash *is* writable).
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves flash.
    pub fn program_flash(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        self.write(addr, data).and_then(|()| {
            if map::FLASH.contains(addr) {
                Ok(())
            } else {
                Err(McuError::BusFault { addr })
            }
        })
    }

    /// DMA-copies `len` bytes of flash (from flash offset `flash_off`)
    /// into RAM at address `ram_addr`, **bypassing the dirty tracker**.
    ///
    /// Models the flash controller's DMA engine on execute-from-RAM
    /// parts: it moves data over a dedicated port *behind* the memory
    /// controller, so the per-segment dirty bits never see the transfer.
    /// That is faithful hardware behaviour — and exactly why software
    /// performing a firmware update must explicitly mark the mirrored
    /// region dirty afterwards, or the incremental attestation cache will
    /// keep serving digests of the *old* image as trusted.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if either span leaves its region.
    pub fn dma_copy_flash_to_ram(
        &mut self,
        flash_off: u32,
        ram_addr: u32,
        len: u32,
    ) -> Result<(), McuError> {
        if !map::FLASH.contains_span(map::FLASH.start + flash_off, len) {
            return Err(McuError::BusFault {
                addr: map::FLASH.start + flash_off,
            });
        }
        if !map::RAM.contains_span(ram_addr, len) {
            return Err(McuError::BusFault { addr: ram_addr });
        }
        let src = flash_off as usize;
        let dst = (ram_addr - map::RAM.start) as usize;
        let n = len as usize;
        self.ram[dst..dst + n].copy_from_slice(&self.flash[src..src + n]);
        // Deliberately NO mark_dirty_span here: the DMA port is not
        // routed through the dirty-tracking memory controller.
        Ok(())
    }

    /// Sets the dirty bit of every segment overlapping the RAM span
    /// `[ram_addr, ram_addr + len)` — the software-visible "mark dirty"
    /// register. Anyone may *set* bits (only clearing is PC-gated), so
    /// update code uses this to tell the attestation cache that a DMA
    /// transfer changed memory behind the tracker's back.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves RAM.
    pub fn mark_dirty_region(&mut self, ram_addr: u32, len: u32) -> Result<(), McuError> {
        if !map::RAM.contains_span(ram_addr, len) {
            return Err(McuError::BusFault { addr: ram_addr });
        }
        self.mark_dirty_span((ram_addr - map::RAM.start) as usize, len as usize);
        Ok(())
    }

    /// Zeroes all of RAM — what a power cycle does to volatile memory.
    /// ROM and flash are non-volatile and survive. Every dirty bit comes
    /// back **set**: the wipe changed the contents, and the dirty map
    /// must never claim continuity across a power cycle (that would hand
    /// `Adv_roam` a stale-but-trusted digest).
    pub fn wipe_ram(&mut self) {
        self.ram.fill(0);
        self.mark_all_dirty();
    }

    // ---- dirty-region tracking --------------------------------------------

    /// Dirty-tracking granularity in bytes.
    #[must_use]
    pub fn segment_len(&self) -> u32 {
        self.segment_len
    }

    /// Number of tracked RAM segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.dirty.len()
    }

    /// Reconfigures the dirty-tracking granularity (a boot-time hardware
    /// strap). All bits come back set — no digest covers the new layout.
    ///
    /// # Errors
    ///
    /// [`McuError::BadSegmentLen`] unless `len` is a power of two between
    /// [`MIN_SEGMENT_LEN`] and the RAM size.
    pub fn set_segment_len(&mut self, len: u32) -> Result<(), McuError> {
        if !len.is_power_of_two() || len < MIN_SEGMENT_LEN || len > map::RAM.len() {
            return Err(McuError::BadSegmentLen { len });
        }
        self.segment_len = len;
        let segments = map::RAM.len().div_ceil(len) as usize;
        self.dirty = vec![true; segments];
        // No per-segment history covers the new layout either.
        self.epochs = vec![self.epoch; segments];
        Ok(())
    }

    /// The dirty bit of segment `index` (out-of-range reads as dirty —
    /// the conservative answer).
    #[must_use]
    pub fn segment_dirty(&self, index: usize) -> bool {
        self.dirty.get(index).copied().unwrap_or(true)
    }

    /// Sets every dirty bit and stamps every segment with the current
    /// epoch (a whole-RAM event — wipe, relayout — *is* a write).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.fill(true);
        self.epochs.fill(self.epoch);
    }

    /// The epoch register: the round number writes are currently being
    /// attributed to.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The last-write epoch of segment `index`. Out-of-range reads as the
    /// current epoch — "written just now", the conservative answer.
    #[must_use]
    pub fn segment_epoch(&self, index: usize) -> u64 {
        self.epochs.get(index).copied().unwrap_or(self.epoch)
    }

    /// Advances the epoch register by one (saturating). Crate-private on
    /// purpose: software reaches this only through
    /// [`crate::device::Mcu::advance_epoch`], which gates the advance on
    /// the caller executing inside `Code_Attest` — exactly like the
    /// dirty-bit acknowledge.
    pub(crate) fn advance_epoch(&mut self) -> u64 {
        self.epoch = self.epoch.saturating_add(1);
        self.epoch
    }

    /// Power-cycles the epoch register back to [`EPOCH_RESET`] — the
    /// register is volatile, like every other register. Only the sealed
    /// NV record (and [`Self::restore_epoch`]) carry round numbering
    /// across a reboot.
    pub(crate) fn reset_epoch(&mut self) {
        self.epoch = EPOCH_RESET;
    }

    /// Restores the epoch register after a reboot (the register is
    /// volatile; the sealed NV record is the source of truth). Stamps
    /// every segment with the restored value: the power cycle wiped and
    /// re-populated RAM, so every segment truly was "just written" —
    /// restoring the *per-segment* log verbatim would claim continuity
    /// across the wipe. Monotonic: the register never moves backwards.
    /// Crate-private; reached through the PC-gated
    /// [`crate::device::Mcu::restore_epoch`].
    pub(crate) fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
        self.mark_all_dirty();
    }

    /// Clears one dirty bit. Crate-private on purpose: software reaches
    /// this only through [`crate::device::Mcu::acknowledge_segment`],
    /// which gates the clear on the caller executing inside
    /// `Code_Attest`.
    pub(crate) fn clear_dirty(&mut self, index: usize) {
        if let Some(bit) = self.dirty.get_mut(index) {
            *bit = false;
        }
    }

    /// Borrows the whole RAM contents (for whole-memory MAC computation).
    #[must_use]
    pub fn ram(&self) -> &[u8] {
        &self.ram
    }

    /// Borrows the whole flash contents (for secure-boot hashing).
    #[must_use]
    pub fn flash(&self) -> &[u8] {
        &self.flash
    }
}

#[derive(Clone, Copy)]
enum Region {
    Rom,
    Flash,
    Ram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_read_write_roundtrip() {
        let mut mem = PhysicalMemory::new();
        mem.write(map::RAM.start + 100, &[9, 8, 7]).unwrap();
        let mut buf = [0u8; 3];
        mem.read(map::RAM.start + 100, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7]);
    }

    #[test]
    fn rom_write_rejected_but_burn_allowed() {
        let mut mem = PhysicalMemory::new();
        assert!(matches!(
            mem.write(map::ROM.start, &[1]),
            Err(McuError::RomWrite { .. })
        ));
        mem.burn_rom(map::ROM.start + 4, &[0xaa, 0xbb]).unwrap();
        let mut buf = [0u8; 2];
        mem.read(map::ROM.start + 4, &mut buf).unwrap();
        assert_eq!(buf, [0xaa, 0xbb]);
    }

    #[test]
    fn burn_rom_outside_rom_rejected() {
        let mut mem = PhysicalMemory::new();
        assert!(mem.burn_rom(map::RAM.start, &[1]).is_err());
        // Span straddling the ROM end is also rejected.
        assert!(mem.burn_rom(map::ROM.end - 1, &[1, 2]).is_err());
    }

    #[test]
    fn unmapped_access_faults() {
        let mut mem = PhysicalMemory::new();
        let mut buf = [0u8];
        assert!(matches!(
            mem.read(0x0009_0000, &mut buf),
            Err(McuError::BusFault { .. })
        ));
        assert!(mem.write(0xffff_0000, &[0]).is_err());
    }

    #[test]
    fn cross_region_span_faults() {
        let mem = PhysicalMemory::new();
        let mut buf = [0u8; 8];
        // Starts in ROM but runs past its end into unmapped space.
        assert!(mem.read(map::ROM.end - 4, &mut buf).is_err());
    }

    #[test]
    fn flash_programming() {
        let mut mem = PhysicalMemory::new();
        mem.program_flash(map::FLASH.start, b"app image").unwrap();
        assert_eq!(&mem.flash()[..9], b"app image");
    }

    #[test]
    fn ram_slice_is_full_size() {
        let mem = PhysicalMemory::new();
        assert_eq!(mem.ram().len(), 512 * 1024);
    }

    #[test]
    fn dma_copy_bypasses_dirty_tracking() {
        let mut mem = PhysicalMemory::new();
        mem.program_flash(map::FLASH.start, b"firmware v2").unwrap();
        // Clear every bit so the bypass is observable.
        for i in 0..mem.segment_count() {
            mem.clear_dirty(i);
        }
        mem.dma_copy_flash_to_ram(0, map::APP_RAM.start, 11)
            .unwrap();
        let mut buf = [0u8; 11];
        mem.read(map::APP_RAM.start, &mut buf).unwrap();
        assert_eq!(&buf, b"firmware v2");
        // The DMA port is behind the dirty tracker: no bit tripped.
        assert!((0..mem.segment_count()).all(|i| !mem.segment_dirty(i)));
        // The explicit mark register closes the gap.
        mem.mark_dirty_region(map::APP_RAM.start, 11).unwrap();
        let seg = ((map::APP_RAM.start - map::RAM.start) / mem.segment_len()) as usize;
        assert!(mem.segment_dirty(seg));
    }

    #[test]
    fn dma_copy_bounds_checked() {
        let mut mem = PhysicalMemory::new();
        assert!(mem
            .dma_copy_flash_to_ram(map::FLASH.len() - 4, map::RAM.start, 8)
            .is_err());
        assert!(mem.dma_copy_flash_to_ram(0, map::RAM.end - 4, 8).is_err());
        assert!(mem.mark_dirty_region(map::RAM.end - 4, 8).is_err());
    }

    fn clear_all(mem: &mut PhysicalMemory) {
        for i in 0..mem.segment_count() {
            mem.clear_dirty(i);
        }
    }

    #[test]
    fn writes_set_dirty_bits_at_default_granularity() {
        let mut mem = PhysicalMemory::new();
        assert_eq!(mem.segment_len(), DEFAULT_SEGMENT_LEN);
        assert_eq!(mem.segment_count(), 64);
        clear_all(&mut mem);
        assert!(!mem.segment_dirty(0));
        // One byte in segment 3.
        mem.write(map::RAM.start + 3 * DEFAULT_SEGMENT_LEN + 17, &[1])
            .unwrap();
        assert!(mem.segment_dirty(3));
        assert!(!mem.segment_dirty(2) && !mem.segment_dirty(4));
    }

    #[test]
    fn straddling_write_dirties_both_segments() {
        let mut mem = PhysicalMemory::new();
        clear_all(&mut mem);
        // Four bytes across the segment 0 / segment 1 boundary.
        mem.write(map::RAM.start + DEFAULT_SEGMENT_LEN - 2, &[9; 4])
            .unwrap();
        assert!(mem.segment_dirty(0));
        assert!(mem.segment_dirty(1));
        assert!(!mem.segment_dirty(2));
    }

    #[test]
    fn flash_and_failed_writes_do_not_touch_dirty_map() {
        let mut mem = PhysicalMemory::new();
        clear_all(&mut mem);
        mem.program_flash(map::FLASH.start, b"image").unwrap();
        assert!(mem.write(0xffff_0000, &[0]).is_err());
        assert!((0..mem.segment_count()).all(|i| !mem.segment_dirty(i)));
    }

    #[test]
    fn wipe_marks_everything_dirty() {
        let mut mem = PhysicalMemory::new();
        clear_all(&mut mem);
        mem.wipe_ram();
        assert!((0..mem.segment_count()).all(|i| mem.segment_dirty(i)));
    }

    #[test]
    fn segment_len_reconfiguration_validates_and_resets() {
        let mut mem = PhysicalMemory::new();
        clear_all(&mut mem);
        mem.set_segment_len(4096).unwrap();
        assert_eq!(mem.segment_count(), 128);
        // The new layout has no digests over it yet: all dirty.
        assert!((0..mem.segment_count()).all(|i| mem.segment_dirty(i)));
        for bad in [0, 63, 100, 12_345, map::RAM.len() * 2] {
            assert!(matches!(
                mem.set_segment_len(bad),
                Err(McuError::BadSegmentLen { .. })
            ));
        }
        // Whole-RAM-as-one-segment is the degenerate but legal maximum.
        mem.set_segment_len(map::RAM.len()).unwrap();
        assert_eq!(mem.segment_count(), 1);
    }

    #[test]
    fn out_of_range_segment_reads_dirty() {
        let mem = PhysicalMemory::new();
        assert!(mem.segment_dirty(usize::MAX));
    }

    #[test]
    fn zero_length_write_marks_nothing() {
        let mut mem = PhysicalMemory::new();
        clear_all(&mut mem);
        mem.write(map::RAM.start, &[]).unwrap();
        assert!(!mem.segment_dirty(0));
    }

    #[test]
    fn writes_latch_current_epoch() {
        let mut mem = PhysicalMemory::new();
        assert_eq!(mem.epoch(), EPOCH_RESET);
        assert!((0..mem.segment_count()).all(|i| mem.segment_epoch(i) == EPOCH_RESET));
        assert_eq!(mem.advance_epoch(), EPOCH_RESET + 1);
        mem.write(map::RAM.start + 3 * DEFAULT_SEGMENT_LEN, &[1])
            .unwrap();
        assert_eq!(mem.segment_epoch(3), EPOCH_RESET + 1);
        assert_eq!(mem.segment_epoch(2), EPOCH_RESET);
        // Acknowledging the dirty bit does not touch the epoch log.
        mem.clear_dirty(3);
        assert_eq!(mem.segment_epoch(3), EPOCH_RESET + 1);
    }

    #[test]
    fn dma_copy_bypasses_epoch_log_too() {
        let mut mem = PhysicalMemory::new();
        mem.program_flash(map::FLASH.start, b"firmware v2").unwrap();
        mem.advance_epoch();
        mem.dma_copy_flash_to_ram(0, map::APP_RAM.start, 11)
            .unwrap();
        let seg = ((map::APP_RAM.start - map::RAM.start) / mem.segment_len()) as usize;
        assert_eq!(
            mem.segment_epoch(seg),
            EPOCH_RESET,
            "DMA port skips the log"
        );
        // The explicit mark register stamps the epoch alongside the bit.
        mem.mark_dirty_region(map::APP_RAM.start, 11).unwrap();
        assert_eq!(mem.segment_epoch(seg), EPOCH_RESET + 1);
    }

    #[test]
    fn wipe_and_relayout_stamp_every_epoch() {
        let mut mem = PhysicalMemory::new();
        mem.advance_epoch();
        mem.advance_epoch();
        mem.wipe_ram();
        assert!((0..mem.segment_count()).all(|i| mem.segment_epoch(i) == mem.epoch()));
        mem.advance_epoch();
        mem.set_segment_len(4096).unwrap();
        assert!((0..mem.segment_count()).all(|i| mem.segment_epoch(i) == mem.epoch()));
    }

    #[test]
    fn epoch_restore_is_monotonic_and_conservative() {
        let mut mem = PhysicalMemory::new();
        mem.restore_epoch(17);
        assert_eq!(mem.epoch(), 17);
        assert!((0..mem.segment_count()).all(|i| mem.segment_epoch(i) == 17));
        // A rolled-back restore cannot drag the register backwards.
        mem.restore_epoch(3);
        assert_eq!(mem.epoch(), 17);
        mem.reset_epoch();
        assert_eq!(mem.epoch(), EPOCH_RESET);
    }

    #[test]
    fn out_of_range_epoch_reads_current() {
        let mut mem = PhysicalMemory::new();
        mem.advance_epoch();
        assert_eq!(mem.segment_epoch(usize::MAX), mem.epoch());
    }
}
