//! Linear energy model for the battery-depletion DoS experiments.
//!
//! §3.1 argues that maliciously invoked attestation "results in a waste of
//! energy (by depleting batteries)". We model the prover as drawing a
//! fixed charge per active CPU cycle — DoS damage is then linear in the
//! cycles an adversary can force the prover to burn, which is all the
//! paper's argument needs.
//!
//! Default constants approximate a Siskiyou-class 32-bit MCU at 24 MHz
//! running from a CR2450 coin cell: ~10 mA active at 3 V → ~1.25 nJ per
//! cycle; a 620 mAh cell stores ~6.7 kJ.

use crate::cycles::CLOCK_HZ;

/// Energy per active cycle in nanojoules (≈ 3 V × 10 mA / 24 MHz).
pub const DEFAULT_NJ_PER_CYCLE: f64 = 1.25;

/// Usable energy of a CR2450 coin cell in joules (620 mAh × 3 V).
pub const DEFAULT_BATTERY_JOULES: f64 = 6_696.0;

/// A battery drained by CPU activity.
///
/// # Example
///
/// ```
/// use proverguard_mcu::energy::Battery;
///
/// let mut battery = Battery::default();
/// let full = battery.remaining_joules();
/// battery.drain_cycles(24_000_000); // one second of full-speed compute
/// assert!(battery.remaining_joules() < full);
/// assert!(!battery.is_depleted());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    drained_j: f64,
    nj_per_cycle: f64,
}

impl Default for Battery {
    fn default() -> Self {
        Battery::new(DEFAULT_BATTERY_JOULES, DEFAULT_NJ_PER_CYCLE)
    }
}

impl Battery {
    /// A battery with `capacity_j` joules and `nj_per_cycle` drain.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive.
    #[must_use]
    pub fn new(capacity_j: f64, nj_per_cycle: f64) -> Self {
        assert!(capacity_j > 0.0, "capacity must be positive");
        assert!(nj_per_cycle > 0.0, "per-cycle energy must be positive");
        Battery {
            capacity_j,
            drained_j: 0.0,
            nj_per_cycle,
        }
    }

    /// Remaining energy in joules (never negative).
    #[must_use]
    pub fn remaining_joules(&self) -> f64 {
        (self.capacity_j - self.drained_j).max(0.0)
    }

    /// Fraction of capacity remaining in `[0, 1]`.
    #[must_use]
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining_joules() / self.capacity_j
    }

    /// `true` once all energy is gone.
    #[must_use]
    pub fn is_depleted(&self) -> bool {
        self.drained_j >= self.capacity_j
    }

    /// Drains the energy of `cycles` active cycles.
    pub fn drain_cycles(&mut self, cycles: u64) {
        self.drained_j += cycles as f64 * self.nj_per_cycle * 1e-9;
    }

    /// Energy of `cycles` active cycles in joules (without draining).
    #[must_use]
    pub fn energy_of_cycles(&self, cycles: u64) -> f64 {
        cycles as f64 * self.nj_per_cycle * 1e-9
    }

    /// How many cycles of active compute the remaining energy affords.
    #[must_use]
    pub fn cycles_remaining(&self) -> u64 {
        (self.remaining_joules() / (self.nj_per_cycle * 1e-9)).round() as u64
    }

    /// Device lifetime in seconds if it computes continuously at 24 MHz.
    #[must_use]
    pub fn lifetime_seconds_at_full_load(&self) -> f64 {
        self.cycles_remaining() as f64 / CLOCK_HZ as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery_full() {
        let b = Battery::default();
        assert!((b.remaining_fraction() - 1.0).abs() < 1e-12);
        assert!(!b.is_depleted());
    }

    #[test]
    fn drain_is_linear() {
        let mut b = Battery::new(1.0, 1.0); // 1 J, 1 nJ/cycle
        b.drain_cycles(500_000_000); // 0.5 J
        assert!((b.remaining_joules() - 0.5).abs() < 1e-9);
        b.drain_cycles(500_000_000);
        assert!(b.is_depleted());
        // Further drain clamps at zero.
        b.drain_cycles(1);
        assert_eq!(b.remaining_joules(), 0.0);
    }

    #[test]
    fn cycles_remaining_inverse_of_drain() {
        let b = Battery::new(1.0, 1.0);
        assert_eq!(b.cycles_remaining(), 1_000_000_000);
    }

    #[test]
    fn coin_cell_lasts_days_at_full_load() {
        let b = Battery::default();
        let days = b.lifetime_seconds_at_full_load() / 86_400.0;
        // ~6.7 kJ at 30 mW ≈ 2.6 days of continuous full-load compute.
        assert!(days > 1.0 && days < 10.0, "got {days} days");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::new(0.0, 1.0);
    }
}
