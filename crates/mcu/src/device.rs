//! The composed prover device.
//!
//! [`Mcu`] ties together physical memory, the EA-MPU, the interrupt
//! controller, the `Clock_LSB` timer, an optional dedicated RTC, the cycle
//! clock and the battery. Every *software* access goes through
//! [`Mcu::bus_read`] / [`Mcu::bus_write`] carrying the program counter of
//! the code performing it, so EA-MAC semantics hold uniformly for RAM,
//! flash, ROM and MMIO registers.

use crate::cycles::{CostTable, CycleClock};
use crate::energy::Battery;
use crate::error::McuError;
use crate::irq::{self, IrqController};
use crate::map;
use crate::memory::PhysicalMemory;
use crate::mpu::{AccessKind, EaMpu};
use crate::rtc::HwRtc;
use crate::timer::{TimerLsb, TIMER_WRAP_VECTOR};

/// Default EA-MPU rule capacity (generous; Table 3 sweeps `#r`).
pub const DEFAULT_MPU_CAPACITY: usize = 8;

/// Default `Clock_LSB` width in bits.
pub const DEFAULT_TIMER_WIDTH: u32 = 16;

/// Default `Clock_LSB` prescaler (log₂): one tick per 16 cycles, so the
/// 16-bit counter wraps every 2²⁰ cycles ≈ 43.7 ms at 24 MHz.
pub const DEFAULT_TIMER_PRESCALER_LOG2: u32 = 4;

/// MMIO register offsets inside [`map::MMIO_TIMER`].
pub mod timer_regs {
    /// Counter value (read-only; writes always fault).
    pub const VALUE: u32 = 0x0;
    /// Control register (bit 0 = timer enable, bit 1 = global IRQ enable,
    /// bit 2 = wrap-vector enable).
    pub const CONTROL: u32 = 0x4;
}

/// The simulated prover device.
///
/// # Example
///
/// ```
/// use proverguard_mcu::device::Mcu;
/// use proverguard_mcu::map;
///
/// # fn main() -> Result<(), proverguard_mcu::McuError> {
/// let mut mcu = Mcu::new();
/// mcu.provision_attest_key(&[0x42; 16])?;
/// // Before protections are installed, even app code can read the key -
/// // this is the unprotected strawman the paper's defences fix.
/// let key = mcu.read_attest_key(map::APP_CODE)?;
/// assert_eq!(key, [0x42; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mcu {
    memory: PhysicalMemory,
    mpu: EaMpu,
    irq: IrqController,
    timer: TimerLsb,
    rtc: Option<HwRtc>,
    clock: CycleClock,
    battery: Battery,
    cost: CostTable,
    fault_log: Vec<McuError>,
    /// Protected code regions with their single legal entry point (§6.2:
    /// "limiting code entry points").
    entry_points: Vec<(map::AddrRange, u32)>,
}

impl Default for Mcu {
    fn default() -> Self {
        Self::new()
    }
}

impl Mcu {
    /// A device with the default map, an 8-slot unlocked EA-MPU, the
    /// default `Clock_LSB` timer, no dedicated RTC, and a fresh battery.
    #[must_use]
    pub fn new() -> Self {
        Mcu {
            memory: PhysicalMemory::new(),
            mpu: EaMpu::new(DEFAULT_MPU_CAPACITY),
            irq: IrqController::new(),
            timer: TimerLsb::new(DEFAULT_TIMER_WIDTH, DEFAULT_TIMER_PRESCALER_LOG2),
            rtc: None,
            clock: CycleClock::new(),
            battery: Battery::default(),
            cost: CostTable::siskiyou_peak(),
            fault_log: Vec::new(),
            entry_points: Vec::new(),
        }
    }

    /// Installs a dedicated hardware RTC (Figure 1a designs).
    pub fn install_rtc(&mut self, rtc: HwRtc) {
        self.rtc = Some(rtc);
    }

    /// Power-cycles the device (a reboot, a brown-out, or `Adv_roam`
    /// yanking the battery).
    ///
    /// Volatile state is lost: RAM is wiped (taking `counter_R`,
    /// `Clock_MSB`, the IDT and the trust state with it), the EA-MPU comes
    /// back empty and *unlocked* (secure boot must re-run to re-arm it),
    /// pending interrupts are discarded, and the timer and RTC restart
    /// from zero. Non-volatile state persists: ROM (`K_Attest`), flash
    /// (the application image), and the battery charge. The cycle clock —
    /// the simulation's wall-time/energy ledger — also persists, so a
    /// reset neither hides elapsed time nor refunds energy. The fault log
    /// is diagnostic instrumentation, not device RAM, and survives too.
    pub fn reset(&mut self) {
        // The epoch register is volatile too: round numbering survives a
        // power cycle only through the sealed NV record (restored via the
        // PC-gated `restore_epoch`), never through the silicon.
        self.memory.reset_epoch();
        self.memory.wipe_ram();
        self.mpu = EaMpu::new(self.mpu.capacity());
        self.irq = IrqController::new();
        self.timer = TimerLsb::new(self.timer.width(), self.timer.prescaler_log2());
        if let Some(rtc) = &self.rtc {
            self.rtc = Some(HwRtc::custom(rtc.width(), rtc.prescaler_log2()));
        }
        self.entry_points.clear();
    }

    // ---- time & energy -----------------------------------------------------

    /// The cycle clock.
    #[must_use]
    pub fn clock(&self) -> &CycleClock {
        &self.clock
    }

    /// The battery.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Swaps in a different battery (fleet experiments provision devices
    /// with varying capacities; physically, a cell replacement).
    pub fn set_battery(&mut self, battery: Battery) {
        self.battery = battery;
    }

    /// The Table 1 cost calibration.
    #[must_use]
    pub fn cost_table(&self) -> &CostTable {
        &self.cost
    }

    /// Advances time by `cycles` of *active* computation: drains the
    /// battery, ticks `Clock_LSB` (raising wrap interrupts) and the RTC.
    pub fn advance_active(&mut self, cycles: u64) {
        self.battery.drain_cycles(cycles);
        self.advance_time_only(cycles);
    }

    /// Advances time by `cycles` of idle sleep: clocks tick, battery drain
    /// is treated as negligible (low-power sleep states).
    pub fn advance_idle(&mut self, cycles: u64) {
        self.advance_time_only(cycles);
    }

    fn advance_time_only(&mut self, cycles: u64) {
        self.clock.advance(cycles);
        let wraps = self.timer.advance(cycles);
        for _ in 0..wraps {
            // Vector errors are impossible for the constant vector.
            let _ = self.irq.raise(TIMER_WRAP_VECTOR);
        }
        if let Some(rtc) = &mut self.rtc {
            rtc.advance(cycles);
        }
    }

    // ---- bus ---------------------------------------------------------------

    /// MPU-checked read at `addr` by code executing at `pc`.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] (logged) or [`McuError::BusFault`].
    pub fn bus_read(&mut self, addr: u32, buf: &mut [u8], pc: u32) -> Result<(), McuError> {
        if let Err(e) = self
            .mpu
            .check_span(pc, addr, buf.len() as u32, AccessKind::Read)
        {
            self.fault_log.push(e.clone());
            return Err(e);
        }
        if map::MMIO.contains(addr) {
            return self.mmio_read(addr, buf);
        }
        self.memory.read(addr, buf)
    }

    /// MPU-checked write at `addr` by code executing at `pc`.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] (logged), [`McuError::BusFault`], or
    /// [`McuError::RomWrite`].
    pub fn bus_write(&mut self, addr: u32, data: &[u8], pc: u32) -> Result<(), McuError> {
        if let Err(e) = self
            .mpu
            .check_span(pc, addr, data.len() as u32, AccessKind::Write)
        {
            self.fault_log.push(e.clone());
            return Err(e);
        }
        if map::MMIO.contains(addr) {
            return self.mmio_write(addr, data);
        }
        self.memory.write(addr, data)
    }

    /// MPU-checked instruction fetch (used by the ISA interpreter).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mcu::bus_read`].
    pub fn bus_fetch(&mut self, addr: u32, buf: &mut [u8], pc: u32) -> Result<(), McuError> {
        if let Err(e) = self
            .mpu
            .check_span(pc, addr, buf.len() as u32, AccessKind::Execute)
        {
            self.fault_log.push(e.clone());
            return Err(e);
        }
        self.memory.read(addr, buf)
    }

    fn mmio_read(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), McuError> {
        if map::MMIO_TIMER.contains(addr) {
            let off = addr - map::MMIO_TIMER.start;
            let value: u64 = match off {
                timer_regs::VALUE => self.timer.value(),
                timer_regs::CONTROL => {
                    (self.timer.is_enabled() as u64)
                        | ((self.irq.is_globally_enabled() as u64) << 1)
                        | ((self.irq.is_vector_enabled(TIMER_WRAP_VECTOR) as u64) << 2)
                }
                _ => 0,
            };
            let bytes = value.to_le_bytes();
            for (i, b) in buf.iter_mut().enumerate() {
                *b = bytes.get(i).copied().unwrap_or(0);
            }
            return Ok(());
        }
        if map::MMIO_RTC.contains(addr) {
            let value = self.rtc.as_ref().map_or(0, HwRtc::read);
            let bytes = value.to_le_bytes();
            let off = (addr - map::MMIO_RTC.start) as usize;
            for (i, b) in buf.iter_mut().enumerate() {
                *b = bytes.get(off + i).copied().unwrap_or(0);
            }
            return Ok(());
        }
        if map::MMIO_MPU_CONFIG.contains(addr) {
            // Reading the config space exposes lock state and rule count.
            let value = (self.mpu.is_locked() as u64) | ((self.mpu.rules().len() as u64) << 1);
            let bytes = value.to_le_bytes();
            for (i, b) in buf.iter_mut().enumerate() {
                *b = bytes.get(i).copied().unwrap_or(0);
            }
            return Ok(());
        }
        Err(McuError::BusFault { addr })
    }

    fn mmio_write(&mut self, addr: u32, data: &[u8]) -> Result<(), McuError> {
        if map::MMIO_TIMER.contains(addr) {
            let off = addr - map::MMIO_TIMER.start;
            match off {
                timer_regs::VALUE => {
                    // The counter is hardware-driven and never writable.
                    return Err(McuError::MpuViolation {
                        pc: 0,
                        addr,
                        kind: AccessKind::Write,
                    });
                }
                timer_regs::CONTROL => {
                    let v = data.first().copied().unwrap_or(0);
                    self.timer.set_enabled(v & 0b001 != 0);
                    self.irq.set_global_enable(v & 0b010 != 0);
                    self.irq
                        .set_vector_enabled(TIMER_WRAP_VECTOR, v & 0b100 != 0)?;
                    return Ok(());
                }
                _ => return Ok(()),
            }
        }
        if map::MMIO_RTC.contains(addr) {
            // A writable RTC register: the clock-reset attack surface.
            // Protected configurations install an MPU rule so this line is
            // never reached from untrusted code.
            if let Some(rtc) = &mut self.rtc {
                let mut bytes = rtc.read().to_le_bytes();
                let off = (addr - map::MMIO_RTC.start) as usize;
                for (i, b) in data.iter().enumerate() {
                    if off + i < 8 {
                        bytes[off + i] = *b;
                    }
                }
                rtc.set_raw(u64::from_le_bytes(bytes));
            }
            return Ok(());
        }
        if map::MMIO_MPU_CONFIG.contains(addr) {
            // Runtime MPU reconfiguration through MMIO is modelled by the
            // richer `reconfigure_mpu` API; raw writes land here only to be
            // rejected once locked.
            if self.mpu.is_locked() {
                return Err(McuError::MpuLocked);
            }
            return Ok(());
        }
        Err(McuError::BusFault { addr })
    }

    // ---- MPU ---------------------------------------------------------------

    /// The EA-MPU (read-only view).
    #[must_use]
    pub fn mpu(&self) -> &EaMpu {
        &self.mpu
    }

    /// Attempts to reconfigure the EA-MPU as code executing at `pc`.
    ///
    /// Models a write to the memory-mapped configuration registers: the
    /// access must pass the MPU itself (the lockdown rule covers
    /// [`map::MMIO_MPU_CONFIG`]) and the MPU must not be locked.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`], [`McuError::MpuLocked`], or whatever
    /// `f` returns.
    pub fn reconfigure_mpu<F>(&mut self, pc: u32, f: F) -> Result<(), McuError>
    where
        F: FnOnce(&mut EaMpu) -> Result<(), McuError>,
    {
        if let Err(e) = self
            .mpu
            .check(pc, map::MMIO_MPU_CONFIG.start, AccessKind::Write)
        {
            self.fault_log.push(e.clone());
            return Err(e);
        }
        if self.mpu.is_locked() {
            self.fault_log.push(McuError::MpuLocked);
            return Err(McuError::MpuLocked);
        }
        f(&mut self.mpu)
    }

    /// Boot-time rule installation (bypasses the config-space check —
    /// used only by [`crate::boot`] before lockdown).
    pub(crate) fn mpu_mut(&mut self) -> &mut EaMpu {
        &mut self.mpu
    }

    // ---- interrupts ----------------------------------------------------------

    /// The interrupt controller (read-only view).
    #[must_use]
    pub fn irq(&self) -> &IrqController {
        &self.irq
    }

    /// Pops the next pending interrupt, returning `(vector, handler)` with
    /// the handler address hardware-read from the IDT. Returns `None` when
    /// nothing is deliverable.
    pub fn take_interrupt(&mut self) -> Option<(u8, u32)> {
        let vector = self.irq.next_pending()?;
        // Acknowledge: hardware auto-clears on dispatch in this design.
        let _ = self.irq.acknowledge(vector);
        let handler = irq::handler_address(&self.memory, vector).ok()?;
        Some((vector, handler))
    }

    /// Boot-time IDT population (plain memory write; at runtime the IDT
    /// write-protection rule applies to bus writes instead).
    ///
    /// # Errors
    ///
    /// [`McuError::BadIrqVector`] for vectors ≥ 32.
    pub fn install_idt_entry(&mut self, vector: u8, handler: u32) -> Result<(), McuError> {
        irq::install_handler(&mut self.memory, vector, handler)
    }

    // ---- provisioning (factory / Adv_roam physical-equivalents) -------------

    /// Burns `K_Attest` into ROM (factory step).
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the key does not fit the ROM cell.
    pub fn provision_attest_key(&mut self, key: &[u8; 16]) -> Result<(), McuError> {
        self.memory.burn_rom(map::ATTEST_KEY.start, key)
    }

    /// Reads `K_Attest` as code executing at `pc` (MPU-checked).
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] when `pc` is not inside a code range a
    /// rule grants read access to.
    pub fn read_attest_key(&mut self, pc: u32) -> Result<[u8; 16], McuError> {
        let mut key = [0u8; 16];
        self.bus_read(map::ATTEST_KEY.start, &mut key, pc)?;
        Ok(key)
    }

    /// Programs the application image into flash (provisioning, firmware
    /// update, or `Adv_roam` malware installation).
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the image exceeds flash.
    pub fn program_flash(&mut self, image: &[u8]) -> Result<(), McuError> {
        self.memory.program_flash(map::FLASH.start, image)
    }

    /// Direct access to physical memory (hardware's view; used by secure
    /// boot for hashing and by test oracles).
    #[must_use]
    pub fn physical_memory(&self) -> &PhysicalMemory {
        &self.memory
    }

    /// MPU-checked snapshot of the whole RAM (what `Code_Attest` MACs).
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] if `pc` may not read some protected RAM
    /// word.
    pub fn ram_snapshot(&mut self, pc: u32) -> Result<Vec<u8>, McuError> {
        self.mpu
            .check_span(pc, map::RAM.start, map::RAM.len(), AccessKind::Read)
            .inspect_err(|e| self.fault_log.push(e.clone()))?;
        Ok(self.memory.ram().to_vec())
    }

    // ---- dirty-region tracking ---------------------------------------------

    /// Dirty-tracking granularity in bytes (see
    /// [`crate::memory::DEFAULT_SEGMENT_LEN`]).
    #[must_use]
    pub fn segment_len(&self) -> u32 {
        self.memory.segment_len()
    }

    /// Number of tracked RAM segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.memory.segment_count()
    }

    /// Reconfigures the dirty-tracking granularity — a boot-time hardware
    /// strap, like the timer width. Non-volatile: it survives
    /// [`Mcu::reset`]. All bits come back set.
    ///
    /// # Errors
    ///
    /// [`McuError::BadSegmentLen`] for lengths that are not a power of two
    /// between 64 bytes and the RAM size.
    pub fn set_segment_len(&mut self, len: u32) -> Result<(), McuError> {
        self.memory.set_segment_len(len)
    }

    /// The hardware dirty bit of segment `index`. Readable by anyone —
    /// the bit only becomes load-bearing through the clear path below.
    #[must_use]
    pub fn segment_dirty(&self, index: usize) -> bool {
        self.memory.segment_dirty(index)
    }

    /// Clears the dirty bit of segment `index` as code executing at `pc`.
    ///
    /// The acknowledge register is hardwired to `Code_Attest` (§6.2 in
    /// spirit: the same execution-aware gating that protects `counter_R`).
    /// This is what makes a cached segment digest sound: untrusted code
    /// can *set* bits all day by writing memory, but it can never clear
    /// one to freeze a stale digest into the next report.
    ///
    /// # Errors
    ///
    /// - [`McuError::MpuViolation`] (logged) when `pc` is outside
    ///   [`map::ATTEST_CODE`].
    /// - [`McuError::BusFault`] for an out-of-range segment index.
    pub fn acknowledge_segment(&mut self, index: usize, pc: u32) -> Result<(), McuError> {
        let addr = map::RAM
            .start
            .saturating_add((index as u32).saturating_mul(self.memory.segment_len()));
        if !map::ATTEST_CODE.contains(pc) {
            let e = McuError::MpuViolation {
                pc,
                addr,
                kind: AccessKind::Write,
            };
            self.fault_log.push(e.clone());
            return Err(e);
        }
        if index >= self.memory.segment_count() {
            return Err(McuError::BusFault { addr });
        }
        self.memory.clear_dirty(index);
        Ok(())
    }

    /// The epoch register: which attestation round writes are currently
    /// being attributed to. Readable by anyone, like the dirty bits.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.memory.epoch()
    }

    /// The last-write epoch of segment `index` (out-of-range reads as the
    /// current epoch — the conservative answer).
    #[must_use]
    pub fn segment_epoch(&self, index: usize) -> u64 {
        self.memory.segment_epoch(index)
    }

    /// Advances the epoch register by one as code executing at `pc`,
    /// returning the new value. The advance register is hardwired to
    /// `Code_Attest` exactly like the dirty-bit acknowledge: untrusted
    /// code moving the register forward could launder a fresh write as
    /// an old one ("written at epoch N" read against a register it
    /// already pushed past N), so only the attest routine — which only
    /// advances *after* digesting the round — may touch it.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] (logged) when `pc` is outside
    /// [`map::ATTEST_CODE`].
    pub fn advance_epoch(&mut self, pc: u32) -> Result<u64, McuError> {
        if !map::ATTEST_CODE.contains(pc) {
            let e = McuError::MpuViolation {
                pc,
                addr: map::RAM.start,
                kind: AccessKind::Write,
            };
            self.fault_log.push(e.clone());
            return Err(e);
        }
        Ok(self.memory.advance_epoch())
    }

    /// Restores the epoch register from the sealed NV record during boot,
    /// as code executing at `pc`. Monotonic (the register never moves
    /// backwards) and stamps every segment with the restored epoch: the
    /// power cycle rewrote all of RAM, so claiming any segment unmodified
    /// across it would be exactly the stale-trusted answer the log
    /// exists to prevent. Gated to `Code_Attest` ∪ `Code_Boot` — the
    /// paths that hold the sealed record's key material.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] (logged) when `pc` is outside both
    /// regions.
    pub fn restore_epoch(&mut self, epoch: u64, pc: u32) -> Result<(), McuError> {
        if !map::ATTEST_CODE.contains(pc) && !map::BOOT_CODE.contains(pc) {
            let e = McuError::MpuViolation {
                pc,
                addr: map::RAM.start,
                kind: AccessKind::Write,
            };
            self.fault_log.push(e.clone());
            return Err(e);
        }
        self.memory.restore_epoch(epoch);
        Ok(())
    }

    /// Kicks the flash controller's DMA engine: copies `len` flash bytes
    /// starting at flash offset `flash_off` into RAM at `ram_addr`. The
    /// transfer runs on a dedicated port behind the dirty-tracking memory
    /// controller, so **no dirty bits are set** — callers performing a
    /// firmware update must follow up with [`Mcu::mark_dirty_region`] or
    /// the attestation cache will keep trusting digests of the old bytes.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if either span leaves its region.
    pub fn dma_copy_flash_to_ram(
        &mut self,
        flash_off: u32,
        ram_addr: u32,
        len: u32,
    ) -> Result<(), McuError> {
        self.memory.dma_copy_flash_to_ram(flash_off, ram_addr, len)
    }

    /// Sets the dirty bit of every segment overlapping the RAM span —
    /// the software "mark dirty" register. Setting bits is open to all
    /// code (only clearing is PC-gated to `Code_Attest`), because a set
    /// bit can only make the next attestation *more* honest.
    ///
    /// # Errors
    ///
    /// [`McuError::BusFault`] if the span leaves RAM.
    pub fn mark_dirty_region(&mut self, ram_addr: u32, len: u32) -> Result<(), McuError> {
        self.memory.mark_dirty_region(ram_addr, len)
    }

    // ---- RTC ------------------------------------------------------------------

    /// Reads the dedicated RTC (if installed) as `pc`, through the bus.
    ///
    /// # Errors
    ///
    /// [`McuError::MpuViolation`] if an MPU rule denies the MMIO read.
    pub fn read_rtc(&mut self, pc: u32) -> Result<u64, McuError> {
        let mut buf = [0u8; 8];
        self.bus_read(map::MMIO_RTC.start, &mut buf, pc)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// The RTC hardware state (test oracle).
    #[must_use]
    pub fn rtc(&self) -> Option<&HwRtc> {
        self.rtc.as_ref()
    }

    // ---- code entry points ------------------------------------------------

    /// Declares `region` a protected code region whose only legal entry
    /// from outside is `entry` (boot-time setup; §6.2's mitigation for
    /// runtime attacks on `Code_Attest`).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not inside `region`.
    pub fn install_entry_point(&mut self, region: map::AddrRange, entry: u32) {
        assert!(
            region.contains(entry),
            "entry point must lie inside the region"
        );
        self.entry_points.push((region, entry));
    }

    /// Checks a control transfer from `from_pc` to `to_pc`: entering a
    /// protected region from outside it must land exactly on its entry
    /// point. Transfers within a region, out of it, or between unprotected
    /// addresses are unrestricted.
    ///
    /// # Errors
    ///
    /// [`McuError::EntryPointViolation`] (logged) on an illegal entry.
    pub fn check_control_transfer(&mut self, from_pc: u32, to_pc: u32) -> Result<(), McuError> {
        for (region, entry) in &self.entry_points {
            if region.contains(to_pc) && !region.contains(from_pc) && to_pc != *entry {
                let e = McuError::EntryPointViolation {
                    from: from_pc,
                    to: to_pc,
                };
                self.fault_log.push(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    // ---- fault log -------------------------------------------------------------

    /// Denied accesses observed so far (evidence for attack reports).
    #[must_use]
    pub fn fault_log(&self) -> &[McuError] {
        &self.fault_log
    }

    /// Clears the fault log.
    pub fn clear_fault_log(&mut self) {
        self.fault_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::{Permissions, Rule};

    #[test]
    fn unprotected_device_is_open() {
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(&[7; 16]).unwrap();
        assert_eq!(mcu.read_attest_key(map::APP_CODE).unwrap(), [7; 16]);
        mcu.bus_write(map::COUNTER_R.start, &9u64.to_le_bytes(), map::APP_CODE)
            .unwrap();
    }

    fn protect_key(mcu: &mut Mcu) {
        mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
            mpu.add_rule(Rule::new(
                "K_Attest",
                map::ATTEST_KEY,
                map::ATTEST_CODE,
                Permissions::READ_ONLY,
            ))
        })
        .unwrap();
    }

    #[test]
    fn key_rule_blocks_app_reads() {
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(&[7; 16]).unwrap();
        protect_key(&mut mcu);
        assert!(mcu.read_attest_key(map::APP_CODE).is_err());
        assert_eq!(mcu.read_attest_key(map::ATTEST_PC).unwrap(), [7; 16]);
        assert_eq!(mcu.fault_log().len(), 1);
    }

    #[test]
    fn lockdown_blocks_reconfiguration_via_api() {
        let mut mcu = Mcu::new();
        protect_key(&mut mcu);
        mcu.mpu_mut().lock();
        let result =
            mcu.reconfigure_mpu(map::APP_CODE, |mpu| mpu.remove_rule("K_Attest").map(|_| ()));
        assert!(matches!(result, Err(McuError::MpuLocked)));
    }

    #[test]
    fn config_space_rule_blocks_even_before_lock() {
        let mut mcu = Mcu::new();
        // Lockdown rule: nobody may write the config space.
        mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
            mpu.add_rule(Rule::new(
                "MPU-lockdown",
                map::MMIO_MPU_CONFIG,
                map::AddrRange::new(0, 0), // empty code range: no one
                Permissions::READ_WRITE,
            ))
        })
        .unwrap();
        let denied = mcu.reconfigure_mpu(map::APP_CODE, |mpu| {
            mpu.remove_rule("MPU-lockdown").map(|_| ())
        });
        assert!(matches!(denied, Err(McuError::MpuViolation { .. })));
    }

    #[test]
    fn timer_wrap_raises_interrupt() {
        let mut mcu = Mcu::new();
        mcu.install_idt_entry(TIMER_WRAP_VECTOR, map::CLOCK_CODE.start)
            .unwrap();
        // Default timer wraps every 2^(16+4) cycles.
        mcu.advance_idle(1 << 20);
        let (vector, handler) = mcu.take_interrupt().expect("wrap interrupt");
        assert_eq!(vector, TIMER_WRAP_VECTOR);
        assert_eq!(handler, map::CLOCK_CODE.start);
        assert!(mcu.take_interrupt().is_none());
    }

    #[test]
    fn timer_control_mmio_roundtrip() {
        let mut mcu = Mcu::new();
        let ctrl = map::MMIO_TIMER.start + timer_regs::CONTROL;
        // Disable everything.
        mcu.bus_write(ctrl, &[0], map::APP_CODE).unwrap();
        mcu.advance_idle(1 << 22);
        assert!(mcu.take_interrupt().is_none());
        let mut buf = [0u8; 1];
        mcu.bus_read(ctrl, &mut buf, map::APP_CODE).unwrap();
        assert_eq!(buf[0] & 0b111, 0);
        // Re-enable.
        mcu.bus_write(ctrl, &[0b111], map::APP_CODE).unwrap();
        mcu.advance_idle(1 << 21);
        assert!(mcu.take_interrupt().is_some());
    }

    #[test]
    fn timer_value_register_is_hardware_read_only() {
        let mut mcu = Mcu::new();
        let value_reg = map::MMIO_TIMER.start + timer_regs::VALUE;
        assert!(mcu.bus_write(value_reg, &[1], map::APP_CODE).is_err());
    }

    #[test]
    fn rtc_mmio_read_and_rogue_write() {
        let mut mcu = Mcu::new();
        mcu.install_rtc(HwRtc::wide64());
        mcu.advance_idle(1000);
        assert_eq!(mcu.read_rtc(map::APP_CODE).unwrap(), 1000);
        // Unprotected: the clock-reset attack works.
        mcu.bus_write(map::MMIO_RTC.start, &5u64.to_le_bytes(), map::APP_CODE)
            .unwrap();
        assert_eq!(mcu.read_rtc(map::APP_CODE).unwrap(), 5);
    }

    #[test]
    fn rtc_rule_blocks_rogue_write() {
        let mut mcu = Mcu::new();
        mcu.install_rtc(HwRtc::wide64());
        mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
            mpu.add_rule(Rule::new(
                "RTC",
                map::MMIO_RTC,
                map::ALL_CODE,
                Permissions::READ_ONLY,
            ))
        })
        .unwrap();
        mcu.advance_idle(1000);
        assert_eq!(mcu.read_rtc(map::APP_CODE).unwrap(), 1000);
        assert!(mcu
            .bus_write(map::MMIO_RTC.start, &5u64.to_le_bytes(), map::APP_CODE)
            .is_err());
        assert_eq!(mcu.read_rtc(map::APP_CODE).unwrap(), 1000);
    }

    #[test]
    fn active_cycles_drain_battery_idle_does_not() {
        let mut mcu = Mcu::new();
        let full = mcu.battery().remaining_joules();
        mcu.advance_idle(1_000_000);
        assert_eq!(mcu.battery().remaining_joules(), full);
        mcu.advance_active(1_000_000);
        assert!(mcu.battery().remaining_joules() < full);
    }

    #[test]
    fn ram_snapshot_is_mpu_checked() {
        let mut mcu = Mcu::new();
        // Seal a RAM word against everyone except Code_Clock.
        mcu.reconfigure_mpu(map::BOOT_PC, |mpu| {
            mpu.add_rule(Rule::new(
                "Clock_MSB",
                map::CLOCK_MSB,
                map::CLOCK_CODE,
                Permissions::READ_WRITE,
            ))
        })
        .unwrap();
        assert!(mcu.ram_snapshot(map::APP_CODE).is_err());
        assert!(mcu.ram_snapshot(map::CLOCK_PC).is_ok());
    }

    #[test]
    fn entry_point_enforcement() {
        let mut mcu = Mcu::new();
        mcu.install_entry_point(map::ATTEST_CODE, map::ATTEST_CODE.start);
        // Entering at the entry point is fine.
        assert!(mcu
            .check_control_transfer(map::APP_CODE, map::ATTEST_CODE.start)
            .is_ok());
        // Entering anywhere else is a violation.
        let denied = mcu.check_control_transfer(map::APP_CODE, map::ATTEST_CODE.start + 0x40);
        assert!(matches!(denied, Err(McuError::EntryPointViolation { .. })));
        assert_eq!(mcu.fault_log().len(), 1);
        // Transfers wholly inside the region are unrestricted.
        assert!(mcu
            .check_control_transfer(map::ATTEST_CODE.start, map::ATTEST_CODE.start + 0x40)
            .is_ok());
        // Leaving the region is unrestricted.
        assert!(mcu
            .check_control_transfer(map::ATTEST_CODE.start + 0x40, map::APP_CODE)
            .is_ok());
        // Unprotected targets are unrestricted.
        assert!(mcu
            .check_control_transfer(map::APP_CODE, map::APP_CODE + 4)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "entry point must lie inside")]
    fn entry_point_outside_region_rejected() {
        let mut mcu = Mcu::new();
        mcu.install_entry_point(map::ATTEST_CODE, map::APP_CODE);
    }

    #[test]
    fn reset_wipes_volatile_state_but_not_nonvolatile() {
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(&[7; 16]).unwrap();
        mcu.program_flash(b"app").unwrap();
        mcu.install_rtc(HwRtc::wide64());
        mcu.install_entry_point(map::ATTEST_CODE, map::ATTEST_CODE.start);
        mcu.bus_write(map::COUNTER_R.start, &9u64.to_le_bytes(), map::APP_CODE)
            .unwrap();
        protect_key(&mut mcu);
        mcu.mpu_mut().lock();
        mcu.advance_active(1 << 21);
        let drained = mcu.battery().remaining_joules();
        let elapsed = mcu.clock().cycles();

        mcu.reset();

        // Volatile: RAM zeroed, MPU empty + unlocked, IRQs gone, clocks at 0.
        let mut buf = [0u8; 8];
        mcu.bus_read(map::COUNTER_R.start, &mut buf, map::APP_CODE)
            .unwrap();
        assert_eq!(u64::from_le_bytes(buf), 0);
        assert!(!mcu.mpu().is_locked());
        assert!(mcu.mpu().rules().is_empty());
        assert!(mcu.take_interrupt().is_none());
        assert_eq!(mcu.timer.value(), 0);
        assert_eq!(mcu.rtc().unwrap().read(), 0);
        assert!(mcu
            .check_control_transfer(map::APP_CODE, map::ATTEST_CODE.start + 0x40)
            .is_ok());
        // Non-volatile: key, flash, battery level, cycle clock.
        assert_eq!(mcu.read_attest_key(map::APP_CODE).unwrap(), [7; 16]);
        assert_eq!(&mcu.physical_memory().flash()[..3], b"app");
        assert_eq!(mcu.battery().remaining_joules(), drained);
        assert_eq!(mcu.clock().cycles(), elapsed);
    }

    #[test]
    fn segment_acknowledge_is_pc_gated() {
        let mut mcu = Mcu::new();
        // Dirty from power-on; only Code_Attest may acknowledge.
        assert!(mcu.segment_dirty(5));
        let denied = mcu.acknowledge_segment(5, map::APP_CODE);
        assert!(matches!(denied, Err(McuError::MpuViolation { .. })));
        assert!(mcu.segment_dirty(5));
        assert_eq!(mcu.fault_log().len(), 1);
        mcu.acknowledge_segment(5, map::ATTEST_PC).unwrap();
        assert!(!mcu.segment_dirty(5));
        // A bus write from anywhere re-dirties it.
        mcu.bus_write(
            map::RAM.start + 5 * mcu.segment_len() + 1,
            &[0xcc],
            map::APP_CODE,
        )
        .unwrap();
        assert!(mcu.segment_dirty(5));
    }

    #[test]
    fn acknowledge_out_of_range_faults() {
        let mut mcu = Mcu::new();
        assert!(matches!(
            mcu.acknowledge_segment(1_000, map::ATTEST_PC),
            Err(McuError::BusFault { .. })
        ));
    }

    #[test]
    fn reset_marks_all_segments_dirty_but_keeps_granularity() {
        let mut mcu = Mcu::new();
        mcu.set_segment_len(4096).unwrap();
        for i in 0..mcu.segment_count() {
            mcu.acknowledge_segment(i, map::ATTEST_PC).unwrap();
        }
        mcu.reset();
        // Granularity is a hardware strap and survives; the bits do not.
        assert_eq!(mcu.segment_len(), 4096);
        assert!((0..mcu.segment_count()).all(|i| mcu.segment_dirty(i)));
    }

    #[test]
    fn epoch_advance_is_pc_gated_like_acknowledge() {
        let mut mcu = Mcu::new();
        let start = mcu.epoch();
        let denied = mcu.advance_epoch(map::APP_CODE);
        assert!(matches!(denied, Err(McuError::MpuViolation { .. })));
        assert_eq!(mcu.epoch(), start);
        assert_eq!(mcu.fault_log().len(), 1);
        assert_eq!(mcu.advance_epoch(map::ATTEST_PC).unwrap(), start + 1);
        // A bus write from anywhere latches the advanced epoch.
        mcu.bus_write(map::APP_RAM.start, &[0xcc], map::APP_CODE)
            .unwrap();
        let seg = ((map::APP_RAM.start - map::RAM.start) / mcu.segment_len()) as usize;
        assert_eq!(mcu.segment_epoch(seg), start + 1);
    }

    #[test]
    fn epoch_register_is_volatile_and_restore_is_gated() {
        let mut mcu = Mcu::new();
        mcu.advance_epoch(map::ATTEST_PC).unwrap();
        mcu.advance_epoch(map::ATTEST_PC).unwrap();
        let before = mcu.epoch();
        mcu.reset();
        assert_eq!(mcu.epoch(), crate::memory::EPOCH_RESET);
        assert!(matches!(
            mcu.restore_epoch(before, map::APP_CODE),
            Err(McuError::MpuViolation { .. })
        ));
        mcu.restore_epoch(before, map::BOOT_PC).unwrap();
        assert_eq!(mcu.epoch(), before);
        // Conservative: the wipe counts as a write of everything.
        assert!((0..mcu.segment_count()).all(|i| mcu.segment_epoch(i) == before));
        // Monotonic: a rolled-back restore is a no-op.
        mcu.restore_epoch(1, map::ATTEST_PC).unwrap();
        assert_eq!(mcu.epoch(), before);
    }

    #[test]
    fn snapshot_sees_bus_writes() {
        let mut mcu = Mcu::new();
        mcu.bus_write(map::APP_RAM.start, b"hello", map::APP_CODE)
            .unwrap();
        let snap = mcu.ram_snapshot(map::APP_CODE).unwrap();
        let off = (map::APP_RAM.start - map::RAM.start) as usize;
        assert_eq!(&snap[off..off + 5], b"hello");
    }
}
