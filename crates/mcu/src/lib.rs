//! Simulated low-end MCU substrate for the ProverGuard suite.
//!
//! The paper's prototypes run on the Intel Siskiyou Peak softcore with a
//! TrustLite-style execution-aware MPU. We do not have that hardware, so
//! this crate provides a behavioural simulation that preserves exactly the
//! properties the paper's security argument rests on (see `DESIGN.md` §3):
//!
//! - [`map`] / [`memory`] — a fixed address map with ROM (16 KiB), flash
//!   (256 KiB), **512 KiB of RAM** (the size the paper's 754 ms
//!   whole-memory MAC example uses) and an MMIO window.
//! - [`mpu`] — the execution-aware MPU: access rules keyed on *which code
//!   region the program counter is in*, plus the boot-time lockdown that
//!   prevents compromised software from reconfiguring it.
//! - [`cycles`] — a 24 MHz cycle clock and a cost table calibrated from
//!   the paper's Table 1, so device-side operations can be priced in
//!   cycles/milliseconds exactly as the paper prices them.
//! - [`energy`] — a linear energy model for the battery-depletion DoS
//!   experiments.
//! - [`timer`] — the short `Clock_LSB` counter with a wrap-around
//!   interrupt (Figure 1b ①).
//! - [`rtc`] — the dedicated wide hardware clocks (Figure 1a; 64-bit, and
//!   32-bit behind a ÷2²⁰ prescaler).
//! - [`irq`] — an interrupt controller with an in-memory IDT that can be
//!   locked down by MPU rule (Figure 1b ②).
//! - [`boot`] — secure boot: hash-verify the flash image, install the MPU
//!   rules, lock the MPU.
//! - [`device`] — [`device::Mcu`], the composition, with PC-scoped
//!   execution contexts for trusted and untrusted code.
//! - [`isa`] — a tiny load/store ISA with an assembler and an interpreter
//!   whose every fetch/load/store goes through the EA-MPU, so attack
//!   programs can *literally execute* and get faulted.
//!
//! # Example
//!
//! ```
//! use proverguard_mcu::device::Mcu;
//! use proverguard_mcu::map;
//!
//! # fn main() -> Result<(), proverguard_mcu::McuError> {
//! let mut mcu = Mcu::new();
//! // Untrusted code can use RAM freely before any protections exist.
//! mcu.bus_write(map::RAM.start, &[1, 2, 3], map::APP_CODE)?;
//! let mut buf = [0u8; 3];
//! mcu.bus_read(map::RAM.start, &mut buf, map::APP_CODE)?;
//! assert_eq!(buf, [1, 2, 3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod cycles;
pub mod device;
pub mod energy;
pub mod error;
pub mod irq;
pub mod isa;
pub mod map;
pub mod memory;
pub mod mpu;
pub mod rtc;
pub mod timer;

pub use cycles::{CycleClock, CLOCK_HZ};
pub use device::Mcu;
pub use error::McuError;
pub use memory::{DEFAULT_SEGMENT_LEN, MIN_SEGMENT_LEN};
pub use mpu::{AccessKind, EaMpu, Rule};
