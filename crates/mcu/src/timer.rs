//! The short-term hardware counter `Clock_LSB` (Figure 1b ①).
//!
//! Common low-end MCUs (Siskiyou Peak, TI MSP430) ship a narrow timer that
//! wraps around quickly and raises an interrupt at wrap-around. The
//! advanced prototype builds a real-time clock from it: trusted
//! `Code_Clock` serves the wrap interrupt and maintains the high-order
//! bits (`Clock_MSB`) in protected RAM.
//!
//! The counter itself is hardware-incremented and read-only; what software
//! *can* normally do is disable the timer — which is why the paper requires
//! that "disabling the timer interrupt must also be prevented". The enable
//! bit is exposed through the device's MMIO window so an MPU rule can lock
//! it.

/// Interrupt vector raised at wrap-around.
pub const TIMER_WRAP_VECTOR: u8 = 0;

/// A `width`-bit free-running up-counter with wrap-around detection.
///
/// # Example
///
/// ```
/// use proverguard_mcu::timer::TimerLsb;
///
/// let mut t = TimerLsb::new(16, 0);
/// let wraps = t.advance(65_536 * 3 + 10);
/// assert_eq!(wraps, 3);
/// assert_eq!(t.value(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerLsb {
    width: u32,
    prescaler_log2: u32,
    /// Total prescaled ticks since reset (the counter value is the low
    /// `width` bits).
    ticks: u64,
    /// Residual cycles not yet forming a full prescaled tick.
    residual_cycles: u64,
    enabled: bool,
}

impl TimerLsb {
    /// Creates an enabled timer.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 32`.
    #[must_use]
    pub fn new(width: u32, prescaler_log2: u32) -> Self {
        assert!((1..=32).contains(&width), "timer width out of range");
        TimerLsb {
            width,
            prescaler_log2,
            ticks: 0,
            residual_cycles: 0,
            enabled: true,
        }
    }

    /// Counter width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// log₂ of the prescaler (0 = one tick per CPU cycle).
    #[must_use]
    pub fn prescaler_log2(&self) -> u32 {
        self.prescaler_log2
    }

    /// `true` while the timer is running.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the timer. The device must gate this behind an
    /// MPU-protected MMIO register — a disabled timer silently stops the
    /// SW-clock, which is exactly `Adv_roam`'s goal.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Current counter value (low `width` bits of the tick count).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.ticks & ((1u64 << self.width) - 1)
    }

    /// Total prescaled ticks since reset (not wrapped). The *hardware*
    /// knows this only implicitly; it is exposed for test oracles.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances the timer by `cycles` CPU cycles; returns how many
    /// wrap-around interrupts occurred. Returns 0 while disabled.
    pub fn advance(&mut self, cycles: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        let total_cycles = self.residual_cycles + cycles;
        let new_ticks = total_cycles >> self.prescaler_log2;
        self.residual_cycles = total_cycles & ((1u64 << self.prescaler_log2) - 1);
        let before = self.ticks;
        self.ticks += new_ticks;
        // Wraps = how many times the low `width` bits rolled over.
        (self.ticks >> self.width) - (before >> self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_wraps() {
        let mut t = TimerLsb::new(8, 0);
        assert_eq!(t.advance(255), 0);
        assert_eq!(t.value(), 255);
        assert_eq!(t.advance(1), 1);
        assert_eq!(t.value(), 0);
        assert_eq!(t.advance(512), 2);
    }

    #[test]
    fn prescaler_divides_cycles() {
        let mut t = TimerLsb::new(8, 4); // one tick per 16 cycles
        assert_eq!(t.advance(15), 0);
        assert_eq!(t.value(), 0);
        assert_eq!(t.advance(1), 0);
        assert_eq!(t.value(), 1);
        // Residual cycles accumulate exactly.
        let mut t2 = TimerLsb::new(8, 4);
        let mut wraps = 0;
        for _ in 0..(16 * 256) {
            wraps += t2.advance(1);
        }
        assert_eq!(wraps, 1);
        assert_eq!(t2.value(), 0);
    }

    #[test]
    fn disabled_timer_freezes() {
        let mut t = TimerLsb::new(8, 0);
        t.advance(10);
        t.set_enabled(false);
        assert_eq!(t.advance(1000), 0);
        assert_eq!(t.value(), 10);
        t.set_enabled(true);
        assert_eq!(t.advance(246), 1);
    }

    #[test]
    fn wide_advance_counts_all_wraps() {
        let mut t = TimerLsb::new(16, 0);
        let wraps = t.advance(65_536 * 100 + 7);
        assert_eq!(wraps, 100);
        assert_eq!(t.value(), 7);
    }

    #[test]
    #[should_panic(expected = "timer width out of range")]
    fn invalid_width_rejected() {
        let _ = TimerLsb::new(0, 0);
    }

    #[test]
    fn value_masks_to_width() {
        let mut t = TimerLsb::new(4, 0);
        t.advance(0x1_0005);
        assert_eq!(t.value(), 5);
        assert_eq!(t.total_ticks(), 0x1_0005);
    }
}
