//! The 24 MHz cycle clock and the Table 1 cost calibration.
//!
//! The paper prices every prover-side operation in milliseconds on a
//! 24 MHz Intel Siskiyou Peak (Table 1). The simulation keeps the same
//! accounting: device-side work consumes *cycles* from a [`CostTable`]
//! whose constants are the paper's measurements converted to cycles at
//! 24 MHz. This substitution is documented in `DESIGN.md` §3 — the
//! absolute constants come from the paper, while our own host-measured
//! Criterion benchmarks independently validate the *relative* shape.

use std::time::Duration;

use proverguard_crypto::mac::MacAlgorithm;

/// The prover CPU frequency: 24 MHz, as in the paper.
pub const CLOCK_HZ: u64 = 24_000_000;

/// Converts milliseconds (as reported in Table 1) to cycles at 24 MHz.
#[must_use]
pub fn ms_to_cycles(ms: f64) -> u64 {
    (ms * 1e-3 * CLOCK_HZ as f64).round() as u64
}

/// Converts cycles at 24 MHz back to milliseconds.
#[must_use]
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ as f64 * 1e3
}

/// A monotonically increasing cycle counter at [`CLOCK_HZ`].
///
/// # Example
///
/// ```
/// use proverguard_mcu::cycles::CycleClock;
///
/// let mut clock = CycleClock::new();
/// clock.advance(24_000); // 1 ms at 24 MHz
/// assert_eq!(clock.elapsed().as_millis(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleClock {
    cycles: u64,
}

impl CycleClock {
    /// A clock at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        CycleClock { cycles: 0 }
    }

    /// Total cycles elapsed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.cycles = self.cycles.saturating_add(cycles);
    }

    /// Elapsed wall time at 24 MHz.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos((self.cycles as f64 / CLOCK_HZ as f64 * 1e9) as u64)
    }
}

/// Per-operation cycle costs calibrated from the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// HMAC fixed cost (key pads + outer hash): 0.340 ms.
    pub hmac_fixed: u64,
    /// HMAC per-64-byte-block cost: 0.092 ms.
    pub hmac_per_block: u64,
    /// AES-128 key expansion: 0.074 ms.
    pub aes_key_expansion: u64,
    /// AES-128 CBC encryption per 16-byte block: 0.288 ms.
    pub aes_enc_per_block: u64,
    /// AES-128 CBC decryption per 16-byte block: 0.570 ms.
    pub aes_dec_per_block: u64,
    /// Speck 64/128 key expansion: 0.016 ms.
    pub speck_key_expansion: u64,
    /// Speck encryption per 8-byte block: 0.017 ms.
    pub speck_enc_per_block: u64,
    /// Speck decryption per 8-byte block: 0.015 ms.
    pub speck_dec_per_block: u64,
    /// ECDSA secp160r1 signature: 183.464 ms.
    pub ecdsa_sign: u64,
    /// ECDSA secp160r1 verification: 170.907 ms.
    pub ecdsa_verify: u64,
}

impl Default for CostTable {
    fn default() -> Self {
        Self::siskiyou_peak()
    }
}

impl CostTable {
    /// The Table 1 calibration (Intel Siskiyou Peak at 24 MHz).
    #[must_use]
    pub fn siskiyou_peak() -> Self {
        CostTable {
            hmac_fixed: ms_to_cycles(0.340),
            hmac_per_block: ms_to_cycles(0.092),
            aes_key_expansion: ms_to_cycles(0.074),
            aes_enc_per_block: ms_to_cycles(0.288),
            aes_dec_per_block: ms_to_cycles(0.570),
            speck_key_expansion: ms_to_cycles(0.016),
            speck_enc_per_block: ms_to_cycles(0.017),
            speck_dec_per_block: ms_to_cycles(0.015),
            ecdsa_sign: ms_to_cycles(183.464),
            ecdsa_verify: ms_to_cycles(170.907),
        }
    }

    /// Cycles to MAC `len` bytes with `alg` (key already expanded).
    ///
    /// For HMAC this is the paper's `fixed + blocks · per_block` formula;
    /// for the CBC-MACs it is one encryption per cipher block (plus the
    /// length-prepend block our construction adds).
    #[must_use]
    pub fn mac_cost(&self, alg: MacAlgorithm, len: usize) -> u64 {
        let blocks = len.div_ceil(alg.input_block_len()) as u64;
        match alg {
            MacAlgorithm::HmacSha1 => self.hmac_fixed + blocks * self.hmac_per_block,
            MacAlgorithm::Aes128Cbc => (blocks + 1) * self.aes_enc_per_block,
            MacAlgorithm::Speck64Cbc => (blocks + 1) * self.speck_enc_per_block,
        }
    }

    /// Cycles for the paper's §3.1 example: one HMAC over the whole
    /// writable memory, computed with the formula the paper prints
    /// (`(512 KB / 64 B) · t_block + t_fix`).
    #[must_use]
    pub fn whole_memory_mac(&self, memory_bytes: usize) -> u64 {
        self.mac_cost(MacAlgorithm::HmacSha1, memory_bytes)
    }

    /// Cycles to SHA-1-digest `len` arbitrary bytes (unkeyed — no HMAC
    /// pads, no key schedule): one compression per padded 64-byte block
    /// at the Table 1 per-block rate. This is what one segment of the
    /// incremental attestation cache costs to (re)digest.
    #[must_use]
    pub fn sha1_digest_cost(&self, len: usize) -> u64 {
        // Merkle–Damgård padding: 0x80 plus the 8-byte length word.
        ((len + 9).div_ceil(64) as u64) * self.hmac_per_block
    }

    /// Cycles to verify an authenticated request with `alg` (recompute MAC
    /// + compare).
    ///
    /// §4.1 assumes "messages fit into one block for each cryptographic
    /// primitive", which yields its quoted figures: HMAC 0.430 ms
    /// (fixed + one block), AES 0.288 ms (one block encryption, key
    /// already expanded), Speck 0.017 ms. We follow that convention here;
    /// [`CostTable::mac_cost`] is the general multi-block formula used for
    /// memory measurement.
    #[must_use]
    pub fn request_check_cost(&self, alg: MacAlgorithm) -> u64 {
        match alg {
            MacAlgorithm::HmacSha1 => self.hmac_fixed + self.hmac_per_block,
            MacAlgorithm::Aes128Cbc => self.aes_enc_per_block,
            MacAlgorithm::Speck64Cbc => self.speck_enc_per_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_cycles_roundtrip() {
        assert_eq!(ms_to_cycles(1.0), 24_000);
        assert!((cycles_to_ms(24_000) - 1.0).abs() < 1e-9);
        assert_eq!(ms_to_cycles(0.340), 8_160);
    }

    #[test]
    fn clock_advances_and_converts() {
        let mut c = CycleClock::new();
        assert_eq!(c.cycles(), 0);
        c.advance(CLOCK_HZ); // one second
        assert_eq!(c.elapsed(), Duration::from_secs(1));
        c.advance(u64::MAX); // saturates instead of wrapping
        assert_eq!(c.cycles(), u64::MAX);
    }

    #[test]
    fn whole_memory_mac_matches_paper_754ms() {
        // §3.1 prints "(512 KB/64 B)·0.340 ms + 0.120 ms = 754.032 ms",
        // which is internally inconsistent (the printed constants do not
        // produce the printed result; 754.032 equals exactly
        // 8196 · 0.092, i.e. message blocks plus HMAC's four extra
        // compressions). Our fixed+per-block model gives 754.004 ms —
        // within 0.03 ms of the paper's figure.
        let table = CostTable::siskiyou_peak();
        let cycles = table.whole_memory_mac(512 * 1024);
        let ms = cycles_to_ms(cycles);
        assert!((ms - 754.032).abs() < 0.05, "got {ms} ms");
    }

    #[test]
    fn request_check_single_block_costs() {
        let table = CostTable::siskiyou_peak();
        // §4.1: "a SHA-1-based HMAC can be validated in 0.430 ms" — one
        // 64-byte block: 0.340 + 0.092 = 0.432 (the paper rounds).
        let hmac_ms = cycles_to_ms(table.request_check_cost(MacAlgorithm::HmacSha1));
        assert!((hmac_ms - 0.432).abs() < 0.005, "got {hmac_ms} ms");

        // §4.1: AES "slightly better" — 0.288 ms single-block check.
        let aes_ms = cycles_to_ms(table.request_check_cost(MacAlgorithm::Aes128Cbc));
        assert!((aes_ms - 0.288).abs() < 1e-6, "got {aes_ms} ms");
        assert!(aes_ms < hmac_ms);

        // §4.1: Speck "reduces the cost even further, to 0.015 ms, if key
        // expansion is done in advance" (enc direction: 0.017 ms).
        let speck_ms = cycles_to_ms(table.request_check_cost(MacAlgorithm::Speck64Cbc));
        assert!((speck_ms - 0.017).abs() < 1e-6, "got {speck_ms} ms");
    }

    #[test]
    fn ecc_is_three_orders_slower_than_speck() {
        let table = CostTable::siskiyou_peak();
        let speck = table.request_check_cost(MacAlgorithm::Speck64Cbc);
        assert!(table.ecdsa_verify > 1000 * speck);
    }

    #[test]
    fn sha1_digest_cost_tracks_blocks_without_hmac_fixed() {
        let table = CostTable::siskiyou_peak();
        // 55 bytes pad into one block; 56 spill into two.
        assert_eq!(table.sha1_digest_cost(55), table.hmac_per_block);
        assert_eq!(table.sha1_digest_cost(56), 2 * table.hmac_per_block);
        // An unkeyed digest never pays the HMAC fixed cost: one segment
        // costs strictly less than HMACing the same bytes.
        let seg = 8 * 1024;
        assert!(table.sha1_digest_cost(seg) < table.mac_cost(MacAlgorithm::HmacSha1, seg));
    }

    #[test]
    fn mac_cost_scales_linearly() {
        let table = CostTable::siskiyou_peak();
        let one = table.mac_cost(MacAlgorithm::HmacSha1, 64);
        let ten = table.mac_cost(MacAlgorithm::HmacSha1, 640);
        assert_eq!(ten - one, 9 * table.hmac_per_block);
    }

    #[test]
    fn conversion_round_trips_at_the_bottom() {
        assert_eq!(cycles_to_ms(0), 0.0);
        assert_eq!(ms_to_cycles(0.0), 0);
        // A single cycle survives the trip through milliseconds exactly:
        // 1/24e6 s is representable to far more precision than f64 loses.
        assert_eq!(ms_to_cycles(cycles_to_ms(1)), 1);
        // The trip is exact while the conversion's ~2-ULP rounding error
        // stays under half a cycle — i.e. up to about 2^50 cycles (~1.3
        // years of device time); spot-check the top of that range.
        let exact = 1u64 << 50;
        assert_eq!(ms_to_cycles(cycles_to_ms(exact)), exact);
    }

    #[test]
    fn conversion_round_trips_near_u64_max() {
        // Above 2^53, f64 can no longer hold every integer, so the trip
        // is only exact to f64 relative precision (~2^-52) — but it must
        // land within that error, not wrap or saturate to garbage.
        let got = ms_to_cycles(cycles_to_ms(u64::MAX));
        assert!(
            got.abs_diff(u64::MAX) <= 4096,
            "round trip of u64::MAX landed at {got}"
        );
    }

    #[test]
    fn ms_to_cycles_saturates_on_pathological_input() {
        // Rust's f64→u64 `as` cast saturates; the conversion inherits
        // that instead of wrapping or panicking.
        assert_eq!(ms_to_cycles(f64::MAX), u64::MAX);
        assert_eq!(ms_to_cycles(f64::INFINITY), u64::MAX);
        assert_eq!(ms_to_cycles(-1.0), 0);
        assert_eq!(ms_to_cycles(f64::NAN), 0);
    }
}
