//! Device-level integration scenarios: secure boot + EA-MPU + interrupts
//! + clocks working together, plus property tests on the bus.

use proptest::prelude::*;

use proverguard_mcu::boot::{image_digest, SecureBoot};
use proverguard_mcu::device::{timer_regs, Mcu};
use proverguard_mcu::map;
use proverguard_mcu::mpu::{AccessKind, Permissions, Rule};
use proverguard_mcu::rtc::HwRtc;
use proverguard_mcu::timer::TIMER_WRAP_VECTOR;
use proverguard_mcu::{McuError, CLOCK_HZ};

fn booted_with_rules(rules: &[Rule]) -> Mcu {
    let mut mcu = Mcu::new();
    mcu.provision_attest_key(&[0x42; 16]).expect("key");
    mcu.program_flash(b"scenario image").expect("flash");
    let reference = image_digest(mcu.physical_memory().flash());
    SecureBoot::new(reference)
        .run(&mut mcu, rules)
        .expect("boot");
    mcu
}

#[test]
fn boot_lockdown_survives_every_reconfiguration_path() {
    let rule = Rule::new(
        "K_Attest",
        map::ATTEST_KEY,
        map::ATTEST_CODE,
        Permissions::READ_ONLY,
    );
    let mut mcu = booted_with_rules(&[rule]);
    // API path.
    assert!(matches!(
        mcu.reconfigure_mpu(map::APP_CODE, |mpu| mpu.remove_rule("K_Attest").map(|_| ())),
        Err(McuError::MpuLocked)
    ));
    // Even trusted code cannot reconfigure after lockdown.
    assert!(matches!(
        mcu.reconfigure_mpu(map::ATTEST_PC, |mpu| mpu
            .remove_rule("K_Attest")
            .map(|_| ())),
        Err(McuError::MpuLocked)
    ));
    // MMIO path: raw write to config space is rejected once locked.
    assert!(matches!(
        mcu.bus_write(map::MMIO_MPU_CONFIG.start, &[0], map::APP_CODE),
        Err(McuError::MpuLocked)
    ));
}

#[test]
fn timer_interrupts_accumulate_across_long_idle() {
    let mut mcu = Mcu::new();
    mcu.install_idt_entry(TIMER_WRAP_VECTOR, map::CLOCK_CODE.start)
        .expect("idt");
    // 10 seconds = floor(10 * 24e6 / 2^20) wraps of the default timer.
    mcu.advance_idle(10 * CLOCK_HZ);
    let expected = (10 * CLOCK_HZ) >> 20;
    let mut served = 0;
    while mcu.take_interrupt().is_some() {
        served += 1;
    }
    assert!(
        (served as i64 - expected as i64).abs() <= 1,
        "served {served}, expected ~{expected}"
    );
}

#[test]
fn rtc_and_timer_advance_coherently() {
    let mut mcu = Mcu::new();
    mcu.install_rtc(HwRtc::wide64());
    // Mixed active/idle advancing.
    mcu.advance_active(CLOCK_HZ / 2);
    mcu.advance_idle(CLOCK_HZ / 2);
    assert_eq!(mcu.rtc().expect("installed").read(), CLOCK_HZ);
    assert_eq!(mcu.clock().cycles(), CLOCK_HZ);
    let mut buf = [0u8; 8];
    mcu.bus_read(
        map::MMIO_TIMER.start + timer_regs::VALUE,
        &mut buf,
        map::APP_CODE,
    )
    .expect("read");
    assert_eq!(u64::from_le_bytes(buf), (CLOCK_HZ >> 4) & 0xffff);
}

#[test]
fn fault_log_accumulates_and_clears() {
    let rule = Rule::new(
        "K_Attest",
        map::ATTEST_KEY,
        map::ATTEST_CODE,
        Permissions::READ_ONLY,
    );
    let mut mcu = booted_with_rules(&[rule]);
    for _ in 0..3 {
        let _ = mcu.read_attest_key(map::APP_CODE);
    }
    assert_eq!(mcu.fault_log().len(), 3);
    assert!(matches!(mcu.fault_log()[0], McuError::MpuViolation { .. }));
    mcu.clear_fault_log();
    assert!(mcu.fault_log().is_empty());
}

#[test]
fn whole_ram_snapshot_roundtrips_bus_writes() {
    let mut mcu = Mcu::new();
    // Scatter writes across the RAM.
    for i in 0..64u32 {
        let addr = map::APP_RAM.start + i * 8 * 1024;
        if map::APP_RAM.contains_span(addr, 4) {
            mcu.bus_write(addr, &i.to_le_bytes(), map::APP_CODE)
                .expect("write");
        }
    }
    let snap = mcu.ram_snapshot(map::APP_CODE).expect("snapshot");
    assert_eq!(snap.len(), map::RAM.len() as usize);
    for i in 0..64u32 {
        let addr = map::APP_RAM.start + i * 8 * 1024;
        if map::APP_RAM.contains_span(addr, 4) {
            let off = (addr - map::RAM.start) as usize;
            assert_eq!(
                u32::from_le_bytes(snap[off..off + 4].try_into().unwrap()),
                i
            );
        }
    }
}

#[test]
fn divided_rtc_read_through_mmio_matches_hardware() {
    let mut mcu = Mcu::new();
    mcu.install_rtc(HwRtc::divided32());
    mcu.advance_idle(5 * CLOCK_HZ);
    let hw = mcu.rtc().expect("installed").read();
    assert_eq!(mcu.read_rtc(map::APP_CODE).expect("read"), hw);
    assert_eq!(hw, (5 * CLOCK_HZ) >> 20);
}

proptest! {
    #[test]
    fn bus_roundtrips_arbitrary_ram_writes(
        offset in 0u32..(512 * 1024 - 64),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut mcu = Mcu::new();
        let addr = map::RAM.start + offset;
        mcu.bus_write(addr, &data, map::APP_CODE).expect("write");
        let mut back = vec![0u8; data.len()];
        mcu.bus_read(addr, &mut back, map::APP_CODE).expect("read");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn unmapped_addresses_always_fault(addr in 0x0030_0000u32..0xffff_0000) {
        let mut mcu = Mcu::new();
        let mut buf = [0u8; 1];
        prop_assert!(mcu.bus_read(addr, &mut buf, map::APP_CODE).is_err());
        prop_assert!(mcu.bus_write(addr, &buf, map::APP_CODE).is_err());
    }

    #[test]
    fn mpu_rule_is_a_clean_partition(
        offset in 0u32..16,
        pc_offset in 0u32..0x1000,
        write in any::<bool>(),
    ) {
        // K_Attest rule: ATTEST_CODE may read, nobody may write.
        let rule = Rule::new(
            "K_Attest",
            map::ATTEST_KEY,
            map::ATTEST_CODE,
            Permissions::READ_ONLY,
        );
        let mcu = booted_with_rules(&[rule]);
        let addr = map::ATTEST_KEY.start + offset;
        let inside_pc = map::ATTEST_CODE.start + (pc_offset & (map::ATTEST_CODE.len() - 1));
        let kind = if write { AccessKind::Write } else { AccessKind::Read };
        let allowed = mcu.mpu().check(inside_pc, addr, kind).is_ok();
        prop_assert_eq!(allowed, !write, "trusted code: read-only");
        let outside_pc = map::APP_CODE;
        prop_assert!(mcu.mpu().check(outside_pc, addr, kind).is_err());
    }
}
