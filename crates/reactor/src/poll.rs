//! The readiness selector: epoll / poll(2) backends, wake pipe, and the
//! notify queue that folds non-fd sources into the same poll call.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::sys::{self, RawFd};
use crate::{Event, Interest, Token};

/// Which kernel readiness primitive a [`Poller`] uses.
///
/// Both backends implement identical semantics (level-triggered fd
/// readiness merged with the notify queue); CI runs the reactor test
/// suite against both so the portable fallback stays honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll(7)` — O(ready) wait, the fast path for large fleets.
    Epoll,
    /// Portable `poll(2)` — O(registered) wait, the fallback path.
    Poll,
}

/// Sentinel stored in the selector for the wake pipe's read end.
const WAKE_DATA: u64 = u64::MAX;

/// The write end of the wake pipe, shared by every [`Waker`] clone.
struct WakePipe {
    tx: RawFd,
}

impl WakePipe {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup, so EAGAIN is
        // success; other errors mean the poller is gone, which is fine.
        let _ = sys::sys_write(self.tx, &[1u8]);
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        sys::sys_close(self.tx);
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::poll`] from another thread.
///
/// Cheap to clone; waking an already-awake poller is a no-op beyond one
/// pipe write.
#[derive(Clone)]
pub struct Waker {
    pipe: Arc<WakePipe>,
}

impl Waker {
    /// Interrupts the poller's current (or next) blocking wait.
    pub fn wake(&self) {
        self.pipe.wake();
    }
}

/// Shared state behind one [`Notifier`].
struct NotifyState {
    token: Token,
    /// True while an undelivered readiness event for this source sits in
    /// the queue — collapses bursts of notifies into one event.
    queued: AtomicBool,
    queue: Arc<Mutex<VecDeque<Arc<NotifyState>>>>,
    pipe: Arc<WakePipe>,
}

/// Readiness signal for a non-fd event source (e.g. an in-memory
/// loopback channel), delivered through the owning [`Poller`] exactly
/// like an fd event.
///
/// Semantics are edge-style: each [`Notifier::notify`] guarantees at
/// least one future readiness event, and bursts between deliveries
/// collapse into one — so the handler must drain its source completely
/// on every event, exactly as it would with an edge-triggered fd.
#[derive(Clone)]
pub struct Notifier {
    state: Arc<NotifyState>,
}

impl Notifier {
    /// Marks the source ready and wakes the poller.
    pub fn notify(&self) {
        if !self.state.queued.swap(true, Ordering::AcqRel) {
            self.state
                .queue
                .lock()
                .expect("notify queue poisoned")
                .push_back(Arc::clone(&self.state));
            self.state.pipe.wake();
        }
    }

    /// The token events for this source carry.
    #[must_use]
    pub fn token(&self) -> Token {
        self.state.token
    }
}

/// A batch of readiness events, reused across [`Poller::poll`] calls to
/// avoid per-iteration allocation.
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// Creates an empty batch with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Iterates the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Number of delivered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last poll delivered nothing (pure timeout/wake).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

struct PollEntry {
    fd: RawFd,
    token: Token,
    interest: Interest,
}

enum Selector {
    Epoll {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        entries: Vec<PollEntry>,
    },
}

impl Drop for Selector {
    fn drop(&mut self) {
        if let Selector::Epoll { epfd, .. } = self {
            sys::sys_close(*epfd);
        }
    }
}

/// The readiness selector one shard owns: registered fds, the wake
/// pipe, and the notify queue, multiplexed through one blocking wait.
///
/// `Poller` is deliberately `&mut`-driven and not `Sync`: a shard owns
/// its poller exclusively, and cross-thread interaction goes through
/// the cloneable [`Waker`] / [`Notifier`] handles only.
pub struct Poller {
    selector: Selector,
    wake_rx: RawFd,
    pipe: Arc<WakePipe>,
    notify_queue: Arc<Mutex<VecDeque<Arc<NotifyState>>>>,
}

impl Poller {
    /// Creates a poller on the platform's preferred backend.
    pub fn new() -> io::Result<Poller> {
        if cfg!(target_os = "linux") {
            Poller::with_backend(Backend::Epoll)
        } else {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// Creates a poller on an explicit backend (tests run both).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let (rx, tx) = sys::sys_pipe()?;
        let selector = match backend {
            Backend::Epoll => {
                let epfd = match sys::sys_epoll_create() {
                    Ok(fd) => fd,
                    Err(e) => {
                        sys::sys_close(rx);
                        sys::sys_close(tx);
                        return Err(e);
                    }
                };
                if let Err(e) =
                    sys::sys_epoll_ctl(epfd, sys::EPOLL_CTL_ADD, rx, sys::EPOLLIN, WAKE_DATA)
                {
                    sys::sys_close(epfd);
                    sys::sys_close(rx);
                    sys::sys_close(tx);
                    return Err(e);
                }
                Selector::Epoll {
                    epfd,
                    buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
                }
            }
            Backend::Poll => Selector::Poll {
                entries: Vec::new(),
            },
        };
        Ok(Poller {
            selector,
            wake_rx: rx,
            pipe: Arc::new(WakePipe { tx }),
            notify_queue: Arc::new(Mutex::new(VecDeque::new())),
        })
    }

    /// Which backend this poller runs on.
    #[must_use]
    pub fn backend(&self) -> Backend {
        match self.selector {
            Selector::Epoll { .. } => Backend::Epoll,
            Selector::Poll { .. } => Backend::Poll,
        }
    }

    /// A cloneable cross-thread wake handle.
    #[must_use]
    pub fn waker(&self) -> Waker {
        Waker {
            pipe: Arc::clone(&self.pipe),
        }
    }

    /// Creates a readiness notifier for a non-fd source under `token`.
    pub fn notifier(&self, token: Token) -> io::Result<Notifier> {
        if token == Token::WAKE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "Token::WAKE is reserved",
            ));
        }
        Ok(Notifier {
            state: Arc::new(NotifyState {
                token,
                queued: AtomicBool::new(false),
                queue: Arc::clone(&self.notify_queue),
                pipe: Arc::clone(&self.pipe),
            }),
        })
    }

    fn epoll_mask(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if interest.is_readable() {
            mask |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    /// Registers `fd` for level-triggered readiness under `token`.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if token == Token::WAKE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "Token::WAKE is reserved",
            ));
        }
        match &mut self.selector {
            Selector::Epoll { epfd, .. } => sys::sys_epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                Self::epoll_mask(interest),
                token.0 as u64,
            ),
            Selector::Poll { entries } => {
                if entries.iter().any(|e| e.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                entries.push(PollEntry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Changes the interest/token of an already-registered `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.selector {
            Selector::Epoll { epfd, .. } => sys::sys_epoll_ctl(
                *epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                Self::epoll_mask(interest),
                token.0 as u64,
            ),
            Selector::Poll { entries } => {
                let entry = entries
                    .iter_mut()
                    .find(|e| e.fd == fd)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
        }
    }

    /// Removes `fd` from the selector. Callers close the fd themselves
    /// afterwards (epoll also auto-deregisters on close).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.selector {
            Selector::Epoll { epfd, .. } => sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Selector::Poll { entries } => {
                let before = entries.len();
                entries.retain(|e| e.fd != fd);
                if entries.len() == before {
                    Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Blocks until readiness, a wake, a notify, or `timeout`, then
    /// fills `events` with everything ready.
    ///
    /// An empty `events` after return means the wait ended by timeout or
    /// a bare [`Waker::wake`] — both are normal control-flow signals for
    /// the shard loop (run timers / check the inbox).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();

        // Undelivered notifies make the wait non-blocking so fd events
        // still get collected but nothing stalls the queued sources.
        let timeout_ms = if self
            .notify_queue
            .lock()
            .expect("notify queue poisoned")
            .is_empty()
        {
            match timeout {
                None => -1i32,
                Some(d) => {
                    let ms = d.as_millis();
                    if ms == 0 && !d.is_zero() {
                        1
                    } else {
                        ms.min(i32::MAX as u128) as i32
                    }
                }
            }
        } else {
            0
        };

        let mut drain_wake = false;
        match &mut self.selector {
            Selector::Epoll { epfd, buf } => {
                let n = sys::sys_epoll_wait(*epfd, buf, timeout_ms)?;
                for ev in buf.iter().take(n) {
                    // Copy out of the (packed on x86) struct first.
                    let mask = ev.events;
                    let data = ev.data;
                    if data == WAKE_DATA {
                        drain_wake = true;
                        continue;
                    }
                    let hangup = mask & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0;
                    events.inner.push(Event {
                        token: Token(data as usize),
                        readable: mask & sys::EPOLLIN != 0 || hangup,
                        writable: mask & sys::EPOLLOUT != 0,
                        hangup,
                    });
                }
            }
            Selector::Poll { entries } => {
                let mut fds = Vec::with_capacity(entries.len() + 1);
                fds.push(sys::PollFd {
                    fd: self.wake_rx,
                    events: sys::POLLIN,
                    revents: 0,
                });
                for e in entries.iter() {
                    let mut mask = 0i16;
                    if e.interest.is_readable() {
                        mask |= sys::POLLIN;
                    }
                    if e.interest.is_writable() {
                        mask |= sys::POLLOUT;
                    }
                    fds.push(sys::PollFd {
                        fd: e.fd,
                        events: mask,
                        revents: 0,
                    });
                }
                sys::sys_poll(&mut fds, timeout_ms)?;
                if fds[0].revents != 0 {
                    drain_wake = true;
                }
                for (slot, entry) in fds[1..].iter().zip(entries.iter()) {
                    let r = slot.revents;
                    if r == 0 {
                        continue;
                    }
                    let hangup = r & (sys::POLLHUP | sys::POLLERR) != 0;
                    events.inner.push(Event {
                        token: entry.token,
                        readable: r & sys::POLLIN != 0 || hangup,
                        writable: r & sys::POLLOUT != 0,
                        hangup,
                    });
                }
            }
        }

        if drain_wake {
            let mut sink = [0u8; 64];
            while matches!(sys::sys_read(self.wake_rx, &mut sink), Ok(n) if n > 0) {}
        }

        // Deliver queued non-fd readiness. Re-arm (clear `queued`)
        // *before* emitting so a notify landing while the handler runs
        // queues a fresh event instead of being lost.
        loop {
            let state = {
                let mut q = self.notify_queue.lock().expect("notify queue poisoned");
                match q.pop_front() {
                    Some(s) => s,
                    None => break,
                }
            };
            state.queued.store(false, Ordering::Release);
            events.inner.push(Event {
                token: state.token,
                readable: true,
                writable: false,
                hangup: false,
            });
        }

        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::sys_close(self.wake_rx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    fn both_backends(f: impl Fn(Backend)) {
        f(Backend::Poll);
        if cfg!(target_os = "linux") {
            f(Backend::Epoll);
        }
    }

    #[test]
    fn pipe_readiness_roundtrip() {
        both_backends(|backend| {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (rx, tx) = sys::sys_pipe().unwrap();
            poller.register(rx, Token(7), Interest::READABLE).unwrap();

            let mut events = Events::with_capacity(8);
            // Nothing written yet: timeout path.
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");

            sys::sys_write(tx, b"x").unwrap();
            poller
                .poll(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let ev = events.iter().next().expect("readable event");
            assert_eq!(ev.token, Token(7));
            assert!(ev.readable);

            poller.deregister(rx).unwrap();
            sys::sys_close(rx);
            sys::sys_close(tx);
        });
    }

    #[test]
    fn hangup_reports_readable() {
        both_backends(|backend| {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (rx, tx) = sys::sys_pipe().unwrap();
            poller.register(rx, Token(3), Interest::READABLE).unwrap();
            sys::sys_close(tx); // peer goes away
            let mut events = Events::default();
            poller
                .poll(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let ev = events.iter().next().expect("hangup event");
            assert!(ev.readable && ev.hangup, "{backend:?}: {ev:?}");
            poller.deregister(rx).unwrap();
            sys::sys_close(rx);
        });
    }

    #[test]
    fn waker_interrupts_blocking_poll() {
        both_backends(|backend| {
            let mut poller = Poller::with_backend(backend).unwrap();
            let waker = poller.waker();
            let handle = thread::spawn(move || {
                thread::sleep(Duration::from_millis(30));
                waker.wake();
            });
            let start = Instant::now();
            let mut events = Events::default();
            poller
                .poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(events.is_empty());
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{backend:?}: wake did not interrupt"
            );
            handle.join().unwrap();
        });
    }

    #[test]
    fn notifier_delivers_and_collapses() {
        both_backends(|backend| {
            let mut poller = Poller::with_backend(backend).unwrap();
            let notifier = poller.notifier(Token(42)).unwrap();
            notifier.notify();
            notifier.notify();
            notifier.notify();
            let mut events = Events::default();
            poller
                .poll(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: burst must collapse");
            assert_eq!(events.iter().next().unwrap().token, Token(42));

            // Re-armed after delivery.
            notifier.notify();
            poller
                .poll(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1);
        });
    }

    #[test]
    fn notifier_from_other_thread_wakes_poll() {
        both_backends(|backend| {
            let mut poller = Poller::with_backend(backend).unwrap();
            let notifier = poller.notifier(Token(9)).unwrap();
            let handle = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                notifier.notify();
            });
            let mut events = Events::default();
            poller
                .poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert_eq!(events.len(), 1);
            assert_eq!(events.iter().next().unwrap().token, Token(9));
            handle.join().unwrap();
        });
    }

    #[test]
    fn wake_token_is_rejected() {
        let mut poller = Poller::with_backend(Backend::Poll).unwrap();
        assert!(poller.register(0, Token::WAKE, Interest::READABLE).is_err());
        assert!(poller.notifier(Token::WAKE).is_err());
    }
}
