//! A zero-dependency readiness reactor for the ProverGuard gateway.
//!
//! The verifier gateway in `proverguard-attest` historically drove every
//! connection from a blocking worker thread, which caps concurrency at
//! OS thread count. This crate is the in-repo replacement for the event
//! layer a production verifier would take from `mio`/`tokio` — built
//! from raw syscalls in the same offline spirit as the workspace's
//! `proptest`/`criterion` shims, because the build environment has no
//! crates.io access:
//!
//! - [`Poller`] — a readiness selector with two selectable backends:
//!   `epoll(7)` (Linux fast path) and portable `poll(2)` (fallback, and
//!   a second implementation CI runs the same tests against);
//! - [`Token`] / [`Interest`] — token-keyed interest registration, the
//!   key the owning shard uses to route readiness back to a connection;
//! - [`Waker`] — a wake pipe for cross-thread signaling (shutdown,
//!   handoff of freshly accepted sockets to a shard);
//! - [`Notifier`] — readiness for *non-fd* event sources (the in-memory
//!   loopback transport used by deterministic benches), merged into the
//!   same [`Poller::poll`] call as socket events;
//! - [`DeadlineWheel`] — a hashed timing wheel for per-connection
//!   deadlines (establishment budgets, retry timers, idle expiry) so a
//!   shard tracks tens of thousands of timeouts without a heap
//!   operation per I/O event.
//!
//! The reactor deliberately has no opinion about protocols: it hands
//! back `(token, readable/writable/hangup)` triples and expired timer
//! tokens, and the gateway's shard loop owns everything else.

#![warn(missing_docs)]

pub mod poll;
pub mod sys;
pub mod wheel;

pub use poll::{Backend, Events, Notifier, Poller, Waker};
pub use wheel::{DeadlineWheel, TimerId};

/// Identifies one registered event source within a [`Poller`].
///
/// Tokens are caller-chosen `usize` keys (typically a slab index); the
/// reactor never interprets them. [`Token::WAKE`] is reserved for the
/// internal wake pipe and must not be used for registrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

impl Token {
    /// Reserved token for the internal wake pipe; registrations with
    /// this token are rejected.
    pub const WAKE: Token = Token(usize::MAX);
}

/// Which readiness conditions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the source has bytes to read (or has hung up).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the source can accept writes.
    pub const WRITABLE: Interest = Interest(0b10);
    /// Wake on either condition.
    pub const BOTH: Interest = Interest(0b11);

    /// Combines two interests.
    #[must_use]
    pub fn union(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    #[must_use]
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    #[must_use]
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

/// One readiness event delivered by [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the source was registered (or notifier created) with.
    pub token: Token,
    /// The source is readable — which includes hangup/error, so the
    /// handler observes EOF or the error from the actual read.
    pub readable: bool,
    /// The source is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; readable is also set.
    pub hangup: bool,
}
