//! Raw libc bindings for the selector backends.
//!
//! The build environment has no crates.io access, so — like the in-repo
//! `proptest`/`criterion` shims — we declare the handful of syscall
//! wrappers we need directly against the platform C library instead of
//! pulling in `libc`/`mio`. Only the symbols the reactor actually uses
//! are declared, with x86/x86_64 Linux layout notes where the ABI is
//! subtle (`epoll_event` is packed there).

#![allow(clippy::missing_safety_doc)]

use std::io;

/// A raw file descriptor (`std::os::unix::io::RawFd` without the cfg
/// dance — this module is only compiled on unix targets).
pub type RawFd = i32;

/// `poll(2)` interest/result record.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch (negative entries are ignored by the kernel).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

/// `poll(2)` readable.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` writable.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// `poll(2)` hangup (always reported, never requested).
pub const POLLHUP: i16 = 0x010;

/// `epoll` readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll` writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll` error condition.
pub const EPOLLERR: u32 = 0x008;
/// `epoll` hangup.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll` peer shut down the write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// Add a descriptor to an epoll set.
pub const EPOLL_CTL_ADD: i32 = 1;
/// Remove a descriptor from an epoll set.
pub const EPOLL_CTL_DEL: i32 = 2;
/// Change the registered interest of a descriptor.
pub const EPOLL_CTL_MOD: i32 = 3;
/// Close the epoll fd on exec.
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `O_NONBLOCK` for `pipe2`.
pub const O_NONBLOCK: i32 = 0o4000;
/// `O_CLOEXEC` for `pipe2`.
pub const O_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`.
///
/// On x86 and x86_64 Linux the struct is declared
/// `__attribute__((packed))` so the 64-bit payload sits at offset 4;
/// everywhere else it has natural alignment. Getting this wrong corrupts
/// the token payload on every event, so both layouts are spelled out.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-owned payload — we store the registration token.
    pub data: u64,
}

/// The kernel's `struct epoll_event` (naturally aligned variant).
#[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-owned payload — we store the registration token.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates an epoll instance (`EPOLL_CLOEXEC`).
pub fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the returned fd is owned by the caller.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds/modifies/removes `fd` in the epoll set `epfd`.
pub fn sys_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` outlives the call; the kernel copies it synchronously.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for events on `epfd`, retrying on `EINTR`.
pub fn sys_epoll_wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `buf` is a valid writable slice; `maxevents` matches its
        // length, so the kernel never writes past the end.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Waits for events with `poll(2)`, retrying on `EINTR`.
pub fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid mutable slice and `nfds` matches it.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Creates a non-blocking close-on-exec pipe, returning `(read, write)`.
pub fn sys_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0i32; 2];
    // SAFETY: `fds` is a valid 2-element array as `pipe2` requires.
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((fds[0], fds[1]))
}

/// Non-blocking single-buffer read; `Ok(0)` means EOF.
pub fn sys_read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is valid for writes of `buf.len()` bytes.
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Non-blocking single-buffer write.
pub fn sys_write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is valid for reads of `buf.len()` bytes.
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Closes a descriptor, ignoring errors (close is best-effort in drops).
pub fn sys_close(fd: RawFd) {
    // SAFETY: closing an fd we own; double-close is excluded by ownership.
    let _ = unsafe { close(fd) };
}
