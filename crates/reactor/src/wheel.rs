//! A hashed timing wheel for per-connection deadlines.
//!
//! A shard juggles one or two live timers per connection (establishment
//! budget, retry backoff, idle expiry) across tens of thousands of
//! connections. A binary heap would pay `O(log n)` per reschedule and
//! make cancellation awkward; the wheel makes `schedule`/`cancel` O(1)
//! and amortizes expiry over slot visits, with lazy removal so a
//! cancelled timer costs nothing until its slot comes around.

use std::collections::HashMap;

use crate::Token;

/// Handle to one scheduled deadline, used to cancel or reschedule it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

struct TimerEntry {
    /// The wheel tick this timer fires at (deadline rounded *up* to the
    /// granule boundary — a timer never fires early).
    tick: u64,
    token: Token,
}

/// The wheel. Time is caller-supplied milliseconds (the gateway feeds
/// it the same monotonic clock it stamps telemetry with), so the wheel
/// itself is deterministic and directly proptestable against a naive
/// model.
pub struct DeadlineWheel {
    granularity_ms: u64,
    /// `slots[tick % slots.len()]` holds the ids parked at that tick —
    /// possibly a future lap; entries carry their absolute tick and only
    /// fire once the cursor passes it.
    slots: Vec<Vec<u64>>,
    live: HashMap<u64, TimerEntry>,
    next_id: u64,
    /// Last tick `advance` has fully processed.
    cursor_tick: u64,
    now_ms: u64,
}

impl DeadlineWheel {
    /// Creates a wheel with `slots` buckets of `granularity_ms` each.
    ///
    /// Deadlines resolve no finer than `granularity_ms` (rounded up, so
    /// timers fire late by at most one granule, never early); a full lap
    /// is `slots * granularity_ms` and longer deadlines simply survive
    /// extra laps.
    ///
    /// # Panics
    ///
    /// Panics if `granularity_ms` or `slots` is zero.
    #[must_use]
    pub fn new(granularity_ms: u64, slots: usize) -> DeadlineWheel {
        assert!(granularity_ms > 0, "granularity must be positive");
        assert!(slots > 0, "wheel needs at least one slot");
        DeadlineWheel {
            granularity_ms,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            live: HashMap::new(),
            next_id: 1,
            cursor_tick: 0,
            now_ms: 0,
        }
    }

    /// A wheel tuned for gateway use: 16 ms buckets, 512 slots (~8 s
    /// lap, longer deadlines lap transparently).
    #[must_use]
    pub fn for_gateway() -> DeadlineWheel {
        DeadlineWheel::new(16, 512)
    }

    /// Number of live (scheduled, uncancelled, unexpired) timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no timers are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `token` to fire once `deadline_ms` passes (against the
    /// clock fed to [`DeadlineWheel::advance`]). Already-due deadlines
    /// fire on the next tick-crossing `advance` call.
    pub fn schedule(&mut self, token: Token, deadline_ms: u64) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        // Round up so the timer never fires before its deadline, and
        // never park at or behind the cursor (that tick is already
        // processed and would only come around again a lap later).
        let tick = deadline_ms
            .div_ceil(self.granularity_ms)
            .max(self.cursor_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(id);
        self.live.insert(id, TimerEntry { tick, token });
        TimerId(id)
    }

    /// Cancels a timer; returns false if it already fired or was
    /// cancelled. O(1) — the slot entry is garbage-collected when its
    /// slot is next visited.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.live.remove(&id.0).is_some()
    }

    /// Advances the wheel to `now_ms`, appending `(id, token)` for every
    /// expired timer to `out`. Time never goes backwards; a stale
    /// `now_ms` is a no-op.
    pub fn advance(&mut self, now_ms: u64, out: &mut Vec<(TimerId, Token)>) {
        if now_ms < self.now_ms {
            return;
        }
        self.now_ms = now_ms;
        let target_tick = now_ms / self.granularity_ms;
        if target_tick <= self.cursor_tick {
            return;
        }
        let nslots = self.slots.len() as u64;
        // A jump past a full lap visits every slot exactly once.
        let first = if target_tick - self.cursor_tick >= nslots {
            target_tick - nslots + 1
        } else {
            self.cursor_tick + 1
        };
        for tick in first..=target_tick {
            let slot = (tick % nslots) as usize;
            let ids = std::mem::take(&mut self.slots[slot]);
            for id in ids {
                match self.live.get(&id) {
                    None => {} // cancelled: drop lazily
                    Some(entry) if entry.tick <= target_tick => {
                        let entry = self.live.remove(&id).expect("entry just observed");
                        out.push((TimerId(id), entry.token));
                    }
                    Some(_) => self.slots[slot].push(id), // future lap
                }
            }
        }
        self.cursor_tick = target_tick;
    }

    /// A poll timeout that will not oversleep the earliest timer: one
    /// wheel granule when anything is live, `None` (block forever) when
    /// idle. Coarse by design — the shard loop re-advances on every
    /// wakeup anyway.
    #[must_use]
    pub fn next_timeout_ms(&self) -> Option<u64> {
        if self.live.is_empty() {
            None
        } else {
            Some(self.granularity_ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fires_once_deadline_passes() {
        let mut wheel = DeadlineWheel::new(10, 8);
        let id = wheel.schedule(Token(1), 35);
        let mut out = Vec::new();
        wheel.advance(30, &mut out);
        assert!(out.is_empty());
        wheel.advance(40, &mut out);
        assert_eq!(out, vec![(id, Token(1))]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn sub_granule_future_deadline_fires_next_granule_not_next_lap() {
        let mut wheel = DeadlineWheel::new(10, 8); // 80 ms lap
        let id = wheel.schedule(Token(4), 35);
        let mut out = Vec::new();
        wheel.advance(32, &mut out); // same granule as the deadline
        assert!(out.is_empty());
        wheel.advance(41, &mut out); // next granule — must fire now,
        assert_eq!(out, vec![(id, Token(4))]); // not at 35 + lap
    }

    #[test]
    fn cancel_prevents_fire() {
        let mut wheel = DeadlineWheel::new(10, 8);
        let id = wheel.schedule(Token(1), 35);
        assert!(wheel.cancel(id));
        assert!(!wheel.cancel(id));
        let mut out = Vec::new();
        wheel.advance(1000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn long_deadline_survives_laps() {
        let mut wheel = DeadlineWheel::new(10, 4); // 40 ms lap
        let id = wheel.schedule(Token(9), 205);
        let mut out = Vec::new();
        for now in (10..=200).step_by(10) {
            wheel.advance(now, &mut out);
            assert!(out.is_empty(), "fired early at {now}");
        }
        wheel.advance(210, &mut out);
        assert_eq!(out, vec![(id, Token(9))]);
    }

    #[test]
    fn already_due_fires_on_next_advance() {
        let mut wheel = DeadlineWheel::new(10, 8);
        let mut out = Vec::new();
        wheel.advance(500, &mut out);
        let id = wheel.schedule(Token(2), 100); // long past due
        wheel.advance(520, &mut out);
        assert_eq!(out, vec![(id, Token(2))]);
    }

    #[test]
    fn big_jump_does_not_revisit_forever() {
        let mut wheel = DeadlineWheel::new(1, 16);
        let id = wheel.schedule(Token(5), 3);
        let mut out = Vec::new();
        wheel.advance(1_000_000, &mut out); // a huge jump: one lap max
        assert_eq!(out, vec![(id, Token(5))]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_naive_model(
            granularity in 1u64..20,
            nslots in 1usize..32,
            ops in proptest::collection::vec(any::<u32>(), 1..120),
        ) {
            let mut wheel = DeadlineWheel::new(granularity, nslots);
            // Naive model: live timers as (id, effective tick, token),
            // fired when a processed advance passes their tick.
            let mut live: Vec<(TimerId, u64, Token)> = Vec::new();
            let mut cursor = 0u64;
            let mut now = 0u64;
            let mut issued: Vec<TimerId> = Vec::new();

            for word in ops {
                let (op, arg) = ((word >> 16) as u8, word as u16);
                match op % 3 {
                    0 => {
                        let deadline = now + u64::from(arg % 2000);
                        let token = Token(usize::from(arg));
                        let id = wheel.schedule(token, deadline);
                        let eff = deadline.div_ceil(granularity).max(cursor + 1);
                        live.push((id, eff, token));
                        issued.push(id);
                    }
                    1 => {
                        if !issued.is_empty() {
                            let id = issued[usize::from(arg) % issued.len()];
                            let wheel_had = wheel.cancel(id);
                            let model_had = live.iter().any(|(m, _, _)| *m == id);
                            live.retain(|(m, _, _)| *m != id);
                            prop_assert_eq!(wheel_had, model_had);
                        }
                    }
                    _ => {
                        now += u64::from(arg % 500);
                        let mut fired = Vec::new();
                        wheel.advance(now, &mut fired);
                        let target = now / granularity;
                        let mut expect: Vec<(TimerId, Token)> = Vec::new();
                        if target > cursor {
                            expect = live
                                .iter()
                                .filter(|(_, t, _)| *t <= target)
                                .map(|(i, _, t)| (*i, *t))
                                .collect();
                            live.retain(|(_, t, _)| *t > target);
                            cursor = target;
                        }
                        fired.sort_by_key(|(i, _)| *i);
                        expect.sort_by_key(|(i, _)| *i);
                        prop_assert_eq!(&fired, &expect, "at now={}", now);
                        prop_assert_eq!(wheel.len(), live.len());
                    }
                }
            }
        }
    }
}
