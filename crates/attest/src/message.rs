//! Protocol messages and their wire encoding.
//!
//! An `attreq` carries a response scope (whole-memory, segmented, or
//! history with its `since_round` parameter), a freshness field (nonce,
//! counter or timestamp — or nothing, for the unprotected strawman), a
//! 16-byte challenge, and an authenticator computed over the serialized
//! header. The paper assumes requests fit in one primitive block (§4.1);
//! our largest header (history × nonce) is 43 bytes, within a single
//! 64-byte HMAC block.

use crate::error::AttestError;

/// Size of the challenge the verifier includes in each request.
pub const CHALLENGE_SIZE: usize = 16;

/// Size of a nonce in the nonce-history policy.
pub const NONCE_SIZE: usize = 16;

/// Protocol version byte.
pub const VERSION: u8 = 1;

/// Which response construction the verifier is asking for. The scope is
/// part of the authenticated header, so an adversary cannot downgrade a
/// segmented request into a whole-memory one (or vice versa) without
/// failing the authentication check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttestScope {
    /// One MAC over the whole writable memory — the paper's §3.1
    /// construction.
    #[default]
    Whole,
    /// `MAC(K, header ‖ seg-header ‖ d_0 ‖ … ‖ d_{n-1})` over per-segment
    /// SHA-1 digests, served from the prover's dirty-bit-invalidated
    /// segment cache (see [`crate::segcache`]).
    Segmented,
    /// "Which segments were written since round `since_round`, and what
    /// do the written ones contain now?" — answered from the hardware
    /// last-write epoch log in near-constant time. The response
    /// authenticates the modified-segment *set* (the TOCTOU evidence a
    /// snapshot MAC cannot give) plus fresh digests of exactly those
    /// segments.
    History {
        /// The last round the verifier holds a verified view of; `0`
        /// bootstraps (every segment reported modified).
        since_round: u64,
    },
}

impl AttestScope {
    fn scope_byte(self) -> u8 {
        match self {
            AttestScope::Whole => 0,
            AttestScope::Segmented => 1,
            AttestScope::History { .. } => 2,
        }
    }
}

/// The freshness field of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreshnessField {
    /// No freshness information (vulnerable strawman).
    None,
    /// A unique random nonce.
    Nonce([u8; NONCE_SIZE]),
    /// A monotonically increasing counter.
    Counter(u64),
    /// A verifier timestamp in milliseconds.
    Timestamp(u64),
}

impl FreshnessField {
    fn kind_byte(&self) -> u8 {
        match self {
            FreshnessField::None => 0,
            FreshnessField::Nonce(_) => 1,
            FreshnessField::Counter(_) => 2,
            FreshnessField::Timestamp(_) => 3,
        }
    }
}

/// An attestation request (`attreq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestRequest {
    /// Requested response construction.
    pub scope: AttestScope,
    /// Freshness field.
    pub freshness: FreshnessField,
    /// Verifier challenge, bound into the response MAC.
    pub challenge: [u8; CHALLENGE_SIZE],
    /// Authenticator over the serialized header (MAC tag or ECDSA
    /// signature bytes); empty when the configuration does not
    /// authenticate requests.
    pub auth: Vec<u8>,
}

impl AttestRequest {
    /// The bytes the authenticator covers: everything except `auth`.
    #[must_use]
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + 8 + 16 + CHALLENGE_SIZE);
        out.push(VERSION);
        out.push(self.scope.scope_byte());
        // The scope *parameter* sits under the authenticator next to its
        // byte: tampering with `since_round` (to widen or narrow the
        // window) is a cheap `BadAuth` reject like any other downgrade.
        if let AttestScope::History { since_round } = self.scope {
            out.extend_from_slice(&since_round.to_be_bytes());
        }
        out.push(self.freshness.kind_byte());
        match self.freshness {
            FreshnessField::None => {}
            FreshnessField::Nonce(n) => out.extend_from_slice(&n),
            FreshnessField::Counter(c) => out.extend_from_slice(&c.to_be_bytes()),
            FreshnessField::Timestamp(t) => out.extend_from_slice(&t.to_be_bytes()),
        }
        out.extend_from_slice(&self.challenge);
        out
    }

    /// Serializes the full request (header ‖ auth-length ‖ auth).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.signed_bytes();
        out.extend_from_slice(&(self.auth.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.auth);
        out
    }

    /// Parses a request serialized by [`AttestRequest::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation or unknown fields.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AttestError> {
        let malformed = |reason: &str| AttestError::MalformedMessage {
            reason: reason.to_string(),
        };
        let mut idx = 0usize;
        let take = |idx: &mut usize, n: usize| -> Result<&[u8], AttestError> {
            let end = idx
                .checked_add(n)
                .ok_or_else(|| malformed("length overflow"))?;
            if end > bytes.len() {
                return Err(malformed("truncated message"));
            }
            let slice = &bytes[*idx..end];
            *idx = end;
            Ok(slice)
        };

        let version = take(&mut idx, 1)?[0];
        if version != VERSION {
            return Err(malformed("unsupported version"));
        }
        let scope = match take(&mut idx, 1)?[0] {
            0 => AttestScope::Whole,
            1 => AttestScope::Segmented,
            2 => AttestScope::History {
                since_round: u64::from_be_bytes(
                    take(&mut idx, 8)?.try_into().expect("slice is 8 bytes"),
                ),
            },
            _ => return Err(malformed("unknown scope")),
        };
        let kind = take(&mut idx, 1)?[0];
        let freshness = match kind {
            0 => FreshnessField::None,
            1 => {
                let mut n = [0u8; NONCE_SIZE];
                n.copy_from_slice(take(&mut idx, NONCE_SIZE)?);
                FreshnessField::Nonce(n)
            }
            2 => FreshnessField::Counter(u64::from_be_bytes(
                take(&mut idx, 8)?.try_into().expect("slice is 8 bytes"),
            )),
            3 => FreshnessField::Timestamp(u64::from_be_bytes(
                take(&mut idx, 8)?.try_into().expect("slice is 8 bytes"),
            )),
            _ => return Err(malformed("unknown freshness kind")),
        };
        let mut challenge = [0u8; CHALLENGE_SIZE];
        challenge.copy_from_slice(take(&mut idx, CHALLENGE_SIZE)?);
        let auth_len =
            u16::from_be_bytes(take(&mut idx, 2)?.try_into().expect("slice is 2 bytes")) as usize;
        let auth = take(&mut idx, auth_len)?.to_vec();
        if idx != bytes.len() {
            return Err(malformed("trailing bytes"));
        }
        Ok(AttestRequest {
            scope,
            freshness,
            challenge,
            auth,
        })
    }
}

/// An attestation response: the MAC over the prover's memory, bound to the
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestResponse {
    /// `MAC(K_Attest, request_header ‖ memory)`.
    pub report: Vec<u8>,
}

impl AttestResponse {
    /// Serializes the response.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.report.len());
        out.extend_from_slice(&(self.report.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.report);
        out
    }

    /// Parses a response serialized by [`AttestResponse::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AttestError> {
        if bytes.len() < 2 {
            return Err(AttestError::MalformedMessage {
                reason: "truncated".to_string(),
            });
        }
        let len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() != 2 + len {
            return Err(AttestError::MalformedMessage {
                reason: "length mismatch".to_string(),
            });
        }
        Ok(AttestResponse {
            report: bytes[2..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(freshness: FreshnessField) -> AttestRequest {
        AttestRequest {
            scope: AttestScope::Whole,
            freshness,
            challenge: [7; CHALLENGE_SIZE],
            auth: vec![1, 2, 3],
        }
    }

    #[test]
    fn roundtrip_all_freshness_kinds() {
        for f in [
            FreshnessField::None,
            FreshnessField::Nonce([9; NONCE_SIZE]),
            FreshnessField::Counter(u64::MAX),
            FreshnessField::Timestamp(123_456),
        ] {
            let req = sample(f);
            let parsed = AttestRequest::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(parsed, req);
        }
    }

    #[test]
    fn signed_bytes_exclude_auth() {
        let mut req = sample(FreshnessField::Counter(5));
        let signed = req.signed_bytes();
        req.auth = vec![9, 9, 9, 9];
        assert_eq!(
            req.signed_bytes(),
            signed,
            "auth must not affect signed bytes"
        );
    }

    #[test]
    fn header_fits_one_hmac_block() {
        let req = sample(FreshnessField::Nonce([0; NONCE_SIZE]));
        assert!(
            req.signed_bytes().len() <= 64,
            "header must fit one 64-byte block"
        );
    }

    #[test]
    fn truncated_request_rejected() {
        let bytes = sample(FreshnessField::Counter(1)).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                AttestRequest::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample(FreshnessField::None).to_bytes();
        bytes.push(0);
        assert!(AttestRequest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_kind_scope_and_version_rejected() {
        let mut bytes = sample(FreshnessField::None).to_bytes();
        bytes[2] = 7; // freshness kind
        assert!(AttestRequest::from_bytes(&bytes).is_err());
        let mut bytes = sample(FreshnessField::None).to_bytes();
        bytes[1] = 9; // scope
        assert!(AttestRequest::from_bytes(&bytes).is_err());
        let mut bytes = sample(FreshnessField::None).to_bytes();
        bytes[0] = 99; // version
        assert!(AttestRequest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn scope_roundtrips_and_is_signed() {
        let mut req = sample(FreshnessField::Counter(4));
        req.scope = AttestScope::Segmented;
        let parsed = AttestRequest::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(parsed.scope, AttestScope::Segmented);
        // The scope byte is under the authenticator: changing it changes
        // the signed bytes, so a downgrade flips the MAC check downstream.
        let mut whole = req.clone();
        whole.scope = AttestScope::Whole;
        assert_ne!(req.signed_bytes(), whole.signed_bytes());
    }

    #[test]
    fn history_scope_roundtrips_with_since_round_signed() {
        for since_round in [0u64, 1, 7, u64::MAX] {
            let mut req = sample(FreshnessField::Counter(4));
            req.scope = AttestScope::History { since_round };
            let parsed = AttestRequest::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(parsed, req);
            assert!(
                parsed.signed_bytes().len() <= 64,
                "history header must fit one HMAC block"
            );
        }
        // `since_round` is under the authenticator: widening the window
        // by one round changes the signed bytes.
        let mut a = sample(FreshnessField::Counter(4));
        a.scope = AttestScope::History { since_round: 3 };
        let mut b = a.clone();
        b.scope = AttestScope::History { since_round: 4 };
        assert_ne!(a.signed_bytes(), b.signed_bytes());
    }

    #[test]
    fn truncated_history_request_rejected() {
        let mut req = sample(FreshnessField::Nonce([5; NONCE_SIZE]));
        req.scope = AttestScope::History { since_round: 9 };
        let bytes = req.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                AttestRequest::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = AttestResponse {
            report: vec![0xab; 20],
        };
        assert_eq!(AttestResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        assert!(AttestResponse::from_bytes(&resp.to_bytes()[..5]).is_err());
        assert!(AttestResponse::from_bytes(&[]).is_err());
    }
}
