//! Fleet-wide verifier-side expected-image cache.
//!
//! At fleet scale most devices run one of a handful of firmware versions,
//! and with segmented attestation (DESIGN §12) the per-segment digests
//! `d_i` depend only on memory *contents* — they are identical across
//! every device on the same image. Only the outer keyed, counter-bound
//! MAC differs per device. This module interns each distinct expected
//! image once, precomputes its digest vector once, and lets every
//! verification of a same-image device reuse both: verifying N devices on
//! one firmware costs N outer MACs + 1 digest sweep instead of N full
//! recomputes.
//!
//! Structure:
//!
//! - [`ImageKey`] — content-addressed cache key: a domain-separated SHA-1
//!   over `(segment_len, image_len, image_bytes)`. Binding `segment_len`
//!   into the key is the "scope" dimension: the same bytes deployed at a
//!   different digest granularity (or whole-memory-only, `segment_len =
//!   0`) are a *different* cache entry, so a digest vector can never be
//!   consulted at the wrong granularity. The derivation is frozen by
//!   golden vectors (`tests/golden_vectors.rs`).
//! - [`CachedImage`] — one interned baseline: the image bytes plus its
//!   precomputed digest vector, immutable behind an [`Arc`] so gateway
//!   shards and worker threads share it without copying.
//! - [`ImageCache`] — the LRU-bounded shared map from key to
//!   [`CachedImage`], with atomic hit/miss/eviction/invalidation stats
//!   that satisfy a CI-checked conservation law
//!   ([`ImageCacheSnapshot::conservation_holds`]).
//! - [`ExpectedView`] — what the verifier actually checks against: the
//!   (freshness-patched) expected bytes plus, when available, the
//!   baseline digest vector and the list of segments the patch touched.
//!   Segmented and History verification re-digest only the patched
//!   segments; everything else comes straight from the baseline.
//!
//! **Why outer MACs stay per-device:** the combine MAC
//! (`MAC(K, header ‖ … ‖ d_0 … d_{n-1})`, DESIGN §12) is keyed with the
//! per-device `K_Attest` and bound to the per-request counter and
//! challenge. Caching it would be both useless (it never repeats) and
//! unsound (it is the only thing tying a response to *this* device and
//! *this* request). Only the unkeyed, content-only `d_i` are shared.
//!
//! **Invalidation rules:** an entry is dropped when a campaign wave or
//! `UpdateFirmware` re-targets devices away from it
//! ([`ImageCache::invalidate`], driven by
//! `CampaignController::drain_retargets`), and the per-device scratch +
//! patched-segment list is rebuilt whenever the device's expected image
//! changes (`DeviceDirectory::set_expected_memory`) — History-scope
//! rounds therefore never consult digests cached before the claimed
//! epoch: the view they see is always derived from the *current*
//! baseline.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proverguard_crypto::sha1::{Sha1, DIGEST_SIZE};
use proverguard_telemetry::metrics;

use crate::segcache;

/// Domain-separation prefix for [`ImageKey::derive`]. Versioned so a
/// future change to the key layout cannot collide with today's keys.
pub const IMAGE_KEY_DOMAIN: &[u8; 21] = b"proverguard-imgkey-v1";

/// Default number of distinct images the cache retains before LRU
/// eviction. Fleets run a handful of firmware versions; 32 is generous.
pub const DEFAULT_IMAGE_CAPACITY: usize = 32;

/// Content-addressed identity of one expected image at one digest
/// granularity: `SHA1(domain ‖ segment_len ‖ image_len ‖ image)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageKey([u8; DIGEST_SIZE]);

impl ImageKey {
    /// Derives the key for `image` deployed at `segment_len` digest
    /// granularity (`0` = whole-memory-only deployment, no digest
    /// vector).
    #[must_use]
    pub fn derive(image: &[u8], segment_len: u32) -> Self {
        let mut h = Sha1::new();
        h.update(IMAGE_KEY_DOMAIN);
        h.update(&segment_len.to_le_bytes());
        h.update(&(image.len() as u64).to_le_bytes());
        h.update(image);
        ImageKey(h.finalize())
    }

    /// The raw 20-byte key.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; DIGEST_SIZE] {
        &self.0
    }

    /// Lower-case hex rendering (golden vectors, logs).
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// One interned expected image: the baseline bytes plus the digest vector
/// precomputed at interning time. Immutable — shared across every device
/// on this firmware via `Arc`.
#[derive(Debug)]
pub struct CachedImage {
    key: ImageKey,
    bytes: Vec<u8>,
    segment_len: u32,
    digests: Vec<[u8; DIGEST_SIZE]>,
}

impl CachedImage {
    /// Digests `image` at `segment_len` granularity (one full sweep) and
    /// wraps it. `segment_len = 0` interns the bytes without a digest
    /// vector (whole-memory deployments still skip the per-attempt image
    /// clone).
    #[must_use]
    pub fn compute(image: Vec<u8>, segment_len: u32) -> Self {
        let key = ImageKey::derive(&image, segment_len);
        let digests = if segment_len == 0 {
            Vec::new()
        } else {
            segcache::segment_digests(&image, segment_len as usize)
        };
        CachedImage {
            key,
            bytes: image,
            segment_len,
            digests,
        }
    }

    /// The content-addressed key.
    #[must_use]
    pub fn key(&self) -> &ImageKey {
        &self.key
    }

    /// The baseline image bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The digest granularity this entry was interned at (0 = none).
    #[must_use]
    pub fn segment_len(&self) -> u32 {
        self.segment_len
    }

    /// The precomputed per-segment digest vector (empty when
    /// `segment_len = 0`).
    #[must_use]
    pub fn digests(&self) -> &[[u8; DIGEST_SIZE]] {
        &self.digests
    }
}

/// Point-in-time copy of the cache counters. All counters are cumulative
/// since cache construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImageCacheSnapshot {
    /// Key lookups: one per [`ImageCache::intern`] + one per
    /// [`ImageCache::touch`] (i.e. one per verification attempt).
    pub lookups: u64,
    /// Lookups satisfied by a resident entry.
    pub hits: u64,
    /// Lookups that found no resident entry.
    pub misses: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
    /// Entries dropped explicitly (campaign retarget / firmware update).
    pub invalidations: u64,
    /// Misses repaired for free from a caller-held `Arc` (no digest
    /// recompute) — an evicted entry re-inserted by `touch`.
    pub refills: u64,
    /// Distinct keys ever interned.
    pub distinct_keys: u64,
    /// Full digest sweeps performed at interning time.
    pub digest_sweeps: u64,
    /// Per-device scratch buffers (re)built — once per registration or
    /// expected-image change, **never** per verification attempt. The
    /// allocation-free steady-state regression asserts exactly this.
    pub scratch_rebuilds: u64,
}

impl ImageCacheSnapshot {
    /// The CI-checked conservation law: every lookup is a hit or a miss,
    /// and every distinct key missed at least once except where an
    /// eviction was repaired by a refill.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.lookups == self.hits + self.misses
            && self.misses >= self.distinct_keys
            && self.misses >= self.refills + self.distinct_keys.saturating_sub(self.evictions)
    }

    /// Hit fraction over all lookups (0 when none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Difference of two snapshots (for measuring one phase of a run).
impl std::ops::Sub for ImageCacheSnapshot {
    type Output = ImageCacheSnapshot;

    fn sub(self, rhs: ImageCacheSnapshot) -> ImageCacheSnapshot {
        ImageCacheSnapshot {
            lookups: self.lookups.saturating_sub(rhs.lookups),
            hits: self.hits.saturating_sub(rhs.hits),
            misses: self.misses.saturating_sub(rhs.misses),
            evictions: self.evictions.saturating_sub(rhs.evictions),
            invalidations: self.invalidations.saturating_sub(rhs.invalidations),
            refills: self.refills.saturating_sub(rhs.refills),
            distinct_keys: self.distinct_keys.saturating_sub(rhs.distinct_keys),
            digest_sweeps: self.digest_sweeps.saturating_sub(rhs.digest_sweeps),
            scratch_rebuilds: self.scratch_rebuilds.saturating_sub(rhs.scratch_rebuilds),
        }
    }
}

#[derive(Debug)]
struct Slot {
    image: Arc<CachedImage>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Slot>,
    seen: HashSet<[u8; DIGEST_SIZE]>,
    tick: u64,
}

/// The shared, LRU-bounded map from [`ImageKey`] to [`CachedImage`].
///
/// One instance is shared by every gateway driver (thread-pool workers
/// and reactor shards alike) behind an `Arc`: the critical section under
/// the mutex is a short vector scan + counter bumps — the expensive work
/// (the digest sweep) happens at most once per distinct image, and the
/// returned `Arc<CachedImage>` is read lock-free afterwards.
#[derive(Debug)]
pub struct ImageCache {
    capacity: usize,
    inner: Mutex<Inner>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    refills: AtomicU64,
    distinct_keys: AtomicU64,
    digest_sweeps: AtomicU64,
    scratch_rebuilds: AtomicU64,
}

impl Default for ImageCache {
    fn default() -> Self {
        ImageCache::new(DEFAULT_IMAGE_CAPACITY)
    }
}

impl ImageCache {
    /// Creates a cache retaining at most `capacity` distinct images
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ImageCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            distinct_keys: AtomicU64::new(0),
            digest_sweeps: AtomicU64::new(0),
            scratch_rebuilds: AtomicU64::new(0),
        }
    }

    /// Maximum resident entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("image cache poisoned").slots.len()
    }

    /// Whether no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `image` at `segment_len` granularity: returns the resident
    /// entry if the identical image is already cached (hit), otherwise
    /// performs the one digest sweep, inserts, and LRU-evicts past
    /// capacity.
    pub fn intern(&self, image: &[u8], segment_len: u32) -> Arc<CachedImage> {
        let key = ImageKey::derive(image, segment_len);
        self.lookups.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("imagecache.lookup", 1);
        {
            let mut inner = self.inner.lock().expect("image cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.iter_mut().find(|s| *s.image.key() == key) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::counter_add("imagecache.hit", 1);
                return Arc::clone(&slot.image);
            }
        }
        // Miss: digest outside the lock (the sweep is the expensive part
        // and the image is function-local).
        self.misses.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("imagecache.miss", 1);
        if segment_len != 0 {
            self.digest_sweeps.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("imagecache.digest_sweep", 1);
        }
        let entry = Arc::new(CachedImage::compute(image.to_vec(), segment_len));
        self.insert(Arc::clone(&entry));
        entry
    }

    /// Per-verification accounting for a caller that already holds the
    /// entry's `Arc`: counts a hit while the entry is resident; if LRU
    /// pressure evicted it, re-inserts the held copy for free (a *refill*
    /// — no digest recompute) and counts a miss.
    pub fn touch(&self, handle: &Arc<CachedImage>) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("imagecache.lookup", 1);
        let key = *handle.key();
        {
            let mut inner = self.inner.lock().expect("image cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.iter_mut().find(|s| *s.image.key() == key) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics::counter_add("imagecache.hit", 1);
                return;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.refills.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("imagecache.miss", 1);
        metrics::counter_add("imagecache.refill", 1);
        self.insert(Arc::clone(handle));
    }

    fn insert(&self, entry: Arc<CachedImage>) {
        let mut inner = self.inner.lock().expect("image cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let key = *entry.key();
        // A racing thread may have inserted the same key while we were
        // digesting; keep the resident one.
        if let Some(slot) = inner.slots.iter_mut().find(|s| *s.image.key() == key) {
            slot.last_used = tick;
            return;
        }
        if inner.seen.insert(*key.as_bytes()) {
            self.distinct_keys.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("imagecache.distinct_key", 1);
        }
        while inner.slots.len() >= self.capacity {
            let (lru, _) = inner
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, s)| (i, s.last_used))
                .expect("capacity >= 1, so a resident slot exists");
            inner.slots.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("imagecache.eviction", 1);
        }
        inner.slots.push(Slot {
            image: entry,
            last_used: tick,
        });
    }

    /// Drops the entry for `key` (campaign retarget / firmware update).
    /// Returns whether an entry was resident.
    pub fn invalidate(&self, key: &ImageKey) -> bool {
        let mut inner = self.inner.lock().expect("image cache poisoned");
        let before = inner.slots.len();
        inner.slots.retain(|s| s.image.key() != key);
        let removed = inner.slots.len() < before;
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            metrics::counter_add("imagecache.invalidation", 1);
        }
        removed
    }

    /// Drops every resident entry. Returns how many were dropped.
    pub fn invalidate_all(&self) -> usize {
        let mut inner = self.inner.lock().expect("image cache poisoned");
        let dropped = inner.slots.len();
        inner.slots.clear();
        if dropped > 0 {
            self.invalidations
                .fetch_add(dropped as u64, Ordering::Relaxed);
            metrics::counter_add("imagecache.invalidation", dropped as u64);
        }
        dropped
    }

    /// Records one per-device scratch-buffer (re)build — called by the
    /// device directory at registration and expected-image changes so
    /// tests can assert the steady state performs none.
    pub fn note_scratch_rebuild(&self) {
        self.scratch_rebuilds.fetch_add(1, Ordering::Relaxed);
        metrics::counter_add("imagecache.scratch_rebuild", 1);
    }

    /// Snapshots the counters.
    #[must_use]
    pub fn stats(&self) -> ImageCacheSnapshot {
        ImageCacheSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            refills: self.refills.load(Ordering::Relaxed),
            distinct_keys: self.distinct_keys.load(Ordering::Relaxed),
            digest_sweeps: self.digest_sweeps.load(Ordering::Relaxed),
            scratch_rebuilds: self.scratch_rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// What the verifier checks a response against: the freshness-patched
/// expected bytes, plus — when the device's expected image is interned —
/// the baseline digest vector and the indices of the segments the patch
/// diverged from that baseline. Verification re-digests only those.
#[derive(Debug, Clone, Copy)]
pub struct ExpectedView<'a> {
    memory: &'a [u8],
    baseline: Option<&'a CachedImage>,
    patched: &'a [usize],
}

impl<'a> ExpectedView<'a> {
    /// A view with no baseline: every digest is computed from `memory`
    /// from scratch. The legacy byte-slice verifier APIs wrap themselves
    /// in this.
    #[must_use]
    pub fn uncached(memory: &'a [u8]) -> Self {
        ExpectedView {
            memory,
            baseline: None,
            patched: &[],
        }
    }

    /// A view of `memory` known to equal `baseline` everywhere except the
    /// segments listed in `patched`. Falls back to uncached behaviour if
    /// the lengths disagree (a stale handle after an image change — the
    /// verdict stays correct, only the sharing is lost).
    #[must_use]
    pub fn cached(memory: &'a [u8], baseline: &'a CachedImage, patched: &'a [usize]) -> Self {
        let baseline = (memory.len() == baseline.bytes().len()).then_some(baseline);
        ExpectedView {
            memory,
            baseline,
            patched,
        }
    }

    /// The patched expected bytes.
    #[must_use]
    pub fn memory(&self) -> &[u8] {
        self.memory
    }

    fn baseline_at(&self, segment_len: usize) -> Option<&'a CachedImage> {
        let base = self.baseline?;
        (base.segment_len() as usize == segment_len
            && base.digests().len() == self.memory.len().div_ceil(segment_len.max(1)))
        .then_some(base)
    }

    /// The full digest vector of [`Self::memory`] at `segment_len`
    /// granularity: the baseline vector with only the patched segments
    /// re-digested when a matching baseline is present, a full sweep
    /// otherwise.
    #[must_use]
    pub fn digests(&self, segment_len: usize) -> Vec<[u8; DIGEST_SIZE]> {
        let seg_len = segment_len.max(1);
        if let Some(base) = self.baseline_at(seg_len) {
            let mut out = base.digests().to_vec();
            for &i in self.patched {
                if let Some(slot) = out.get_mut(i) {
                    *slot = self.digest_of(i, seg_len);
                }
            }
            metrics::counter_add("imagecache.digest_patched", self.patched.len() as u64);
            out
        } else {
            metrics::counter_add("imagecache.digest_sweep_fallback", 1);
            segcache::segment_digests(self.memory, seg_len)
        }
    }

    /// The digest of segment `index` alone: straight from the baseline
    /// when it is valid for that segment, recomputed from the patched
    /// bytes otherwise.
    #[must_use]
    pub fn segment_digest_at(&self, index: usize, segment_len: usize) -> [u8; DIGEST_SIZE] {
        let seg_len = segment_len.max(1);
        if !self.patched.contains(&index) {
            if let Some(base) = self.baseline_at(seg_len) {
                if let Some(d) = base.digests().get(index) {
                    return *d;
                }
            }
        }
        self.digest_of(index, seg_len)
    }

    fn digest_of(&self, index: usize, seg_len: usize) -> [u8; DIGEST_SIZE] {
        let start = (index * seg_len).min(self.memory.len());
        let end = (start + seg_len).min(self.memory.len());
        segcache::segment_digest(index as u32, &self.memory[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| fill ^ (i as u8)).collect()
    }

    #[test]
    fn key_binds_contents_length_and_granularity() {
        let a = ImageKey::derive(&image(1, 512), 256);
        assert_eq!(a, ImageKey::derive(&image(1, 512), 256));
        assert_ne!(a, ImageKey::derive(&image(2, 512), 256));
        assert_ne!(a, ImageKey::derive(&image(1, 513), 256));
        assert_ne!(a, ImageKey::derive(&image(1, 512), 128));
        assert_ne!(a, ImageKey::derive(&image(1, 512), 0));
        assert_eq!(a.to_hex().len(), 2 * DIGEST_SIZE);
    }

    #[test]
    fn intern_hits_on_identical_images_and_sweeps_once() {
        let cache = ImageCache::new(4);
        let img = image(7, 1024);
        let a = cache.intern(&img, 256);
        let b = cache.intern(&img, 256);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.digests().len(), 4);
        assert_eq!(a.digests(), &segcache::segment_digests(&img, 256)[..]);
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.digest_sweeps, 1);
        assert!(s.conservation_holds());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ImageCache::new(2);
        let a = cache.intern(&image(1, 128), 64);
        let _b = cache.intern(&image(2, 128), 64);
        cache.touch(&a); // a most recent; b is now LRU
        let _c = cache.intern(&image(3, 128), 64);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        // a survived, b did not.
        cache.touch(&a);
        assert_eq!(cache.stats().hits, s.hits + 1);
        assert!(cache.stats().conservation_holds());
    }

    #[test]
    fn touch_refills_evicted_entry_without_recompute() {
        let cache = ImageCache::new(1);
        let a = cache.intern(&image(1, 128), 64);
        let _b = cache.intern(&image(2, 128), 64); // evicts a
        let sweeps_before = cache.stats().digest_sweeps;
        cache.touch(&a); // refill, no sweep
        let s = cache.stats();
        assert_eq!(s.refills, 1);
        assert_eq!(s.digest_sweeps, sweeps_before);
        assert!(s.conservation_holds());
        // a is resident again.
        cache.touch(&a);
        assert!(cache.stats().conservation_holds());
    }

    #[test]
    fn invalidate_drops_entry_and_counts() {
        let cache = ImageCache::new(4);
        let a = cache.intern(&image(1, 128), 64);
        assert!(cache.invalidate(a.key()));
        assert!(!cache.invalidate(a.key()));
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.is_empty());
        let _ = cache.intern(&image(1, 128), 64);
        let _ = cache.intern(&image(2, 128), 64);
        assert_eq!(cache.invalidate_all(), 2);
        assert!(cache.stats().conservation_holds());
    }

    #[test]
    fn view_patched_digests_match_full_sweep() {
        let base_img = image(9, 1000); // trailing partial segment
        let baseline = CachedImage::compute(base_img.clone(), 256);
        let mut patched_img = base_img.clone();
        patched_img[0] ^= 0xff; // segment 0
        patched_img[999] ^= 0xff; // segment 3 (partial)
        let patched = [0usize, 3];
        let view = ExpectedView::cached(&patched_img, &baseline, &patched);
        assert_eq!(
            view.digests(256),
            segcache::segment_digests(&patched_img, 256)
        );
        for i in 0..4 {
            assert_eq!(
                view.segment_digest_at(i, 256),
                segcache::segment_digests(&patched_img, 256)[i]
            );
        }
        // Uncached view agrees too.
        assert_eq!(
            ExpectedView::uncached(&patched_img).digests(256),
            segcache::segment_digests(&patched_img, 256)
        );
    }

    #[test]
    fn view_falls_back_on_mismatched_baseline() {
        let baseline = CachedImage::compute(image(9, 1024), 256);
        let other = image(9, 512); // different length
        let view = ExpectedView::cached(&other, &baseline, &[]);
        assert_eq!(view.digests(256), segcache::segment_digests(&other, 256));
        // Granularity mismatch: baseline at 256, asked at 128.
        let img = image(9, 1024);
        let view = ExpectedView::cached(&img, &baseline, &[]);
        assert_eq!(view.digests(128), segcache::segment_digests(&img, 128));
    }
}
