//! Per-segment digest cache for incremental attestation.
//!
//! The paper's whole-memory MAC chains the request header *first* and the
//! 512 KiB of RAM after it, so no intermediate HMAC state can be reused
//! across requests — every request pays the full ~754 ms sweep (§3.1).
//! The segmented construction restructures the response so that the
//! per-request binding happens *last*:
//!
//! ```text
//! d_i       = SHA1(SEGMENT_DOMAIN ‖ i ‖ len_i ‖ segment_i)      (cacheable)
//! response  = MAC(K, header ‖ COMBINE_MAGIC ‖ seg_len ‖ n ‖ d_0 ‖ … ‖ d_{n-1})
//! ```
//!
//! The `d_i` depend only on memory contents, so the prover may keep them
//! in a [`SegmentCache`] and recompute only the segments whose hardware
//! dirty bit is set — a repeat attestation with k dirty segments costs
//! ≈ k segment digests plus one short combine MAC instead of a full
//! sweep. The keyed combine still binds every response to the fresh,
//! authenticated header, so replaying a stale digest list under a new
//! request is exactly as hard as forging the MAC.
//!
//! **Why caching is sound** (the `Adv_roam` argument, DESIGN.md §12): a
//! cached `d_i` is trusted only while the segment's dirty bit is clear,
//! and the bit is set synchronously by the memory controller on *every*
//! RAM write while the clear path is PC-gated to `Code_Attest`
//! ([`proverguard_mcu::device::Mcu::acknowledge_segment`]). Compromised
//! application code can dirty segments at will (costing itself cycles),
//! but can never clear a bit to freeze a stale digest into the next
//! report. The cache itself is volatile host-side state of `Code_Attest`
//! — it is *not* sealed into the freshness record, and a reboot or an
//! observed EA-MPU violation drops it wholesale.

use proverguard_crypto::sha1::{Sha1, DIGEST_SIZE};

use crate::error::AttestError;

/// Domain-separation prefix for per-segment digests. A segment digest can
/// never be confused with a whole-memory MAC input or any other SHA-1 use
/// in the protocol.
pub const SEGMENT_DOMAIN: &[u8; 18] = b"proverguard-seg-v1";

/// Magic introducing the segment header inside the combine-MAC input,
/// separating the segmented construction from the whole-memory one (whose
/// MAC input continues with raw RAM bytes at this position).
pub const COMBINE_MAGIC: &[u8; 6] = b"PGSEG1";

/// Bytes digested per segment in addition to its contents: the domain
/// prefix, the 4-byte segment index and the 4-byte segment length.
pub const SEGMENT_PREFIX_LEN: usize = SEGMENT_DOMAIN.len() + 8;

/// Configuration of the segmented mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentedParams {
    /// Dirty-tracking/digest granularity in bytes (power of two, ≥ 64,
    /// ≤ the RAM size).
    pub segment_len: u32,
}

impl Default for SegmentedParams {
    fn default() -> Self {
        SegmentedParams {
            segment_len: proverguard_mcu::DEFAULT_SEGMENT_LEN,
        }
    }
}

impl SegmentedParams {
    /// Validates the parameters against the device constraints.
    ///
    /// # Errors
    ///
    /// [`AttestError::BadConfig`] for a segment length the dirty-tracking
    /// hardware cannot be strapped to.
    pub fn validate(&self) -> Result<(), AttestError> {
        if !self.segment_len.is_power_of_two()
            || self.segment_len < proverguard_mcu::MIN_SEGMENT_LEN
            || self.segment_len > proverguard_mcu::map::RAM.len()
        {
            return Err(AttestError::BadConfig {
                reason: format!(
                    "segment length {} is not a power of two in [{}, {}]",
                    self.segment_len,
                    proverguard_mcu::MIN_SEGMENT_LEN,
                    proverguard_mcu::map::RAM.len()
                ),
            });
        }
        Ok(())
    }
}

/// The unkeyed digest of one memory segment. Binding the index and length
/// into the digest means segments cannot be swapped, and a digest of a
/// short trailing segment cannot stand in for a full one.
#[must_use]
pub fn segment_digest(index: u32, bytes: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha1::new();
    h.update(SEGMENT_DOMAIN);
    h.update(&index.to_le_bytes());
    h.update(&(bytes.len() as u32).to_le_bytes());
    h.update(bytes);
    h.finalize()
}

/// Digests every segment of `memory` from scratch — the verifier's
/// expected-side computation, and the coherence oracle the property tests
/// compare the cache against. A trailing partial segment is digested at
/// its real length.
#[must_use]
pub fn segment_digests(memory: &[u8], segment_len: usize) -> Vec<[u8; DIGEST_SIZE]> {
    memory
        .chunks(segment_len.max(1))
        .enumerate()
        .map(|(i, chunk)| segment_digest(i as u32, chunk))
        .collect()
}

/// Builds the combine-MAC input:
/// `message ‖ COMBINE_MAGIC ‖ segment_len ‖ digest count ‖ d_0 ‖ … ‖ d_{n-1}`.
#[must_use]
pub fn combined_input(message: &[u8], segment_len: u32, digests: &[[u8; DIGEST_SIZE]]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(message.len() + COMBINE_MAGIC.len() + 8 + digests.len() * DIGEST_SIZE);
    out.extend_from_slice(message);
    out.extend_from_slice(COMBINE_MAGIC);
    out.extend_from_slice(&segment_len.to_le_bytes());
    out.extend_from_slice(&(digests.len() as u32).to_le_bytes());
    for d in digests {
        out.extend_from_slice(d);
    }
    out
}

/// Magic introducing the history header inside the response-MAC input,
/// separating the history construction from both the whole-memory and
/// segmented ones.
pub const HISTORY_MAGIC: &[u8; 7] = b"PGHIST1";

/// The plaintext body of a `History`-scope response: which round the
/// prover just executed and which segments its hardware epoch log says
/// were written since the request's `since_round`.
///
/// Only this set travels on the wire — the fresh digests of the modified
/// segments enter the response MAC ([`history_input`]) but are recomputed
/// by the verifier from its expected image, keeping the response size
/// near-constant (8 + 4 bytes + one bit per segment + one tag). The MAC
/// binds the set, so malware cannot shrink it to hide a write; growing it
/// only volunteers more digests to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryReport {
    /// The prover's round number for this attestation (its epoch register
    /// at response time; the verifier quotes it back as `since_round`).
    pub round: u64,
    /// One flag per segment: `true` iff the segment's last-write epoch is
    /// newer than the request's `since_round`.
    pub modified: Vec<bool>,
}

impl HistoryReport {
    /// Indices of the modified segments, in order.
    #[must_use]
    pub fn modified_indices(&self) -> Vec<usize> {
        (0..self.modified.len())
            .filter(|&i| self.modified[i])
            .collect()
    }

    /// Length of [`HistoryReport::encode`]'s output in bytes (the
    /// response MAC starts at this offset in the wire report).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        12 + self.modified.len().div_ceil(8)
    }

    /// Serializes the plaintext body: round (u64 BE) ‖ segment count
    /// (u32 BE) ‖ bitmap (LSB-first within each byte, padding bits zero).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.modified.len().div_ceil(8));
        out.extend_from_slice(&self.round.to_be_bytes());
        out.extend_from_slice(&(self.modified.len() as u32).to_be_bytes());
        let mut bits = vec![0u8; self.modified.len().div_ceil(8)];
        for (i, &m) in self.modified.iter().enumerate() {
            if m {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bits);
        out
    }

    /// Parses a body serialized by [`HistoryReport::encode`] from the
    /// front of `bytes`; returns the report and the remaining suffix (the
    /// response MAC). `None` on truncation, a segment count above
    /// `max_segments`, or a nonzero padding bit — strict parsing keeps
    /// the encoding canonical so the MAC covers exactly one byte string
    /// per report.
    #[must_use]
    pub fn decode(bytes: &[u8], max_segments: usize) -> Option<(Self, &[u8])> {
        if bytes.len() < 12 {
            return None;
        }
        let round = u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes"));
        let count = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        if count > max_segments {
            return None;
        }
        let bitmap_len = count.div_ceil(8);
        let rest = bytes.get(12..)?;
        if rest.len() < bitmap_len {
            return None;
        }
        let (bits, tag) = rest.split_at(bitmap_len);
        let modified: Vec<bool> = (0..count)
            .map(|i| bits[i / 8] & (1 << (i % 8)) != 0)
            .collect();
        // Padding bits beyond `count` must be zero.
        if !count.is_multiple_of(8) && bits[bitmap_len - 1] >> (count % 8) != 0 {
            return None;
        }
        Some((HistoryReport { round, modified }, tag))
    }
}

/// Builds the history response-MAC input:
/// `message ‖ HISTORY_MAGIC ‖ round ‖ segment_len ‖ report bitmap ‖
/// fresh digests of the modified segments (in index order)`.
///
/// `message` is the authenticated request header, which already contains
/// the scope byte and `since_round` — so the tag binds the window being
/// answered, the round answering it, the modified set, and the current
/// contents of every segment in that set.
#[must_use]
pub fn history_input(
    message: &[u8],
    segment_len: u32,
    report: &HistoryReport,
    modified_digests: &[[u8; DIGEST_SIZE]],
) -> Vec<u8> {
    let body = report.encode();
    let mut out = Vec::with_capacity(
        message.len() + HISTORY_MAGIC.len() + 4 + body.len() + modified_digests.len() * DIGEST_SIZE,
    );
    out.extend_from_slice(message);
    out.extend_from_slice(HISTORY_MAGIC);
    out.extend_from_slice(&segment_len.to_le_bytes());
    out.extend_from_slice(&body);
    for d in modified_digests {
        out.extend_from_slice(d);
    }
    out
}

/// Volatile per-segment digest store kept by `Code_Attest`.
#[derive(Debug, Clone)]
pub struct SegmentCache {
    segment_len: usize,
    digests: Vec<Option<[u8; DIGEST_SIZE]>>,
}

impl SegmentCache {
    /// An empty cache for a `memory_len`-byte region at `segment_len`
    /// granularity.
    #[must_use]
    pub fn new(segment_len: usize, memory_len: usize) -> Self {
        let count = memory_len.div_ceil(segment_len.max(1));
        SegmentCache {
            segment_len: segment_len.max(1),
            digests: vec![None; count],
        }
    }

    /// Granularity in bytes.
    #[must_use]
    pub fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Number of segments tracked.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.digests.len()
    }

    /// `true` when segment `index` has a live digest.
    #[must_use]
    pub fn has(&self, index: usize) -> bool {
        matches!(self.digests.get(index), Some(Some(_)))
    }

    /// Number of live digests.
    #[must_use]
    pub fn cached_count(&self) -> usize {
        self.digests.iter().filter(|d| d.is_some()).count()
    }

    /// Stores the digest of segment `index` (out of range is ignored).
    pub fn store(&mut self, index: usize, digest: [u8; DIGEST_SIZE]) {
        if let Some(slot) = self.digests.get_mut(index) {
            *slot = Some(digest);
        }
    }

    /// Drops every cached digest — the `ClearCache` path taken on reboot,
    /// on an observed EA-MPU violation, or on explicit request.
    pub fn invalidate_all(&mut self) {
        self.digests.fill(None);
    }

    /// All digests in segment order, or `None` if any segment is missing
    /// (the combine step requires full coverage).
    #[must_use]
    pub fn all(&self) -> Option<Vec<[u8; DIGEST_SIZE]>> {
        self.digests.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_digest_binds_index_and_length() {
        let bytes = [0u8; 64];
        assert_ne!(segment_digest(0, &bytes), segment_digest(1, &bytes));
        assert_ne!(segment_digest(0, &bytes), segment_digest(0, &bytes[..32]));
        assert_ne!(
            segment_digest(0, &bytes).as_slice(),
            Sha1::digest(&bytes).as_slice()
        );
    }

    #[test]
    fn segment_digests_cover_trailing_partial_segment() {
        let memory = vec![7u8; 100];
        let ds = segment_digests(&memory, 64);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0], segment_digest(0, &memory[..64]));
        assert_eq!(ds[1], segment_digest(1, &memory[64..]));
    }

    #[test]
    fn combined_input_layout() {
        let ds = segment_digests(&[1u8; 128], 64);
        let input = combined_input(b"hdr", 64, &ds);
        assert_eq!(&input[..3], b"hdr");
        assert_eq!(&input[3..9], COMBINE_MAGIC);
        assert_eq!(input[9..13], 64u32.to_le_bytes());
        assert_eq!(input[13..17], 2u32.to_le_bytes());
        assert_eq!(input.len(), 17 + 2 * DIGEST_SIZE);
        assert_eq!(&input[17..37], &ds[0]);
    }

    #[test]
    fn history_report_roundtrip_and_strictness() {
        for count in [0usize, 1, 7, 8, 9, 64] {
            let report = HistoryReport {
                round: 0xDEAD_BEEF,
                modified: (0..count).map(|i| i % 3 == 0).collect(),
            };
            let mut bytes = report.encode();
            bytes.extend_from_slice(&[0xAA; 20]); // the tag suffix
            let (parsed, tag) = HistoryReport::decode(&bytes, 64).unwrap();
            assert_eq!(parsed, report);
            assert_eq!(tag, &[0xAA; 20]);
        }
        // Truncation, count overflow and dirty padding bits all refuse.
        let report = HistoryReport {
            round: 1,
            modified: vec![true; 9],
        };
        let bytes = report.encode();
        assert!(HistoryReport::decode(&bytes[..11], 64).is_none());
        assert!(HistoryReport::decode(&bytes, 8).is_none());
        let mut dirty_pad = bytes.clone();
        *dirty_pad.last_mut().unwrap() |= 0x80;
        assert!(HistoryReport::decode(&dirty_pad, 64).is_none());
    }

    #[test]
    fn history_input_binds_round_set_and_digests() {
        let report = HistoryReport {
            round: 5,
            modified: vec![true, false, true, false],
        };
        let ds = [[1u8; DIGEST_SIZE], [2u8; DIGEST_SIZE]];
        let base = history_input(b"hdr", 64, &report, &ds);
        let mut other_round = report.clone();
        other_round.round = 6;
        assert_ne!(base, history_input(b"hdr", 64, &other_round, &ds));
        let mut other_set = report.clone();
        other_set.modified[1] = true;
        assert_ne!(base, history_input(b"hdr", 64, &other_set, &ds));
        assert_ne!(base, history_input(b"hdr", 64, &report, &ds[..1]));
        assert_ne!(base, history_input(b"hdr", 128, &report, &ds));
    }

    #[test]
    fn cache_roundtrip_and_invalidate() {
        let mut cache = SegmentCache::new(64, 256);
        assert_eq!(cache.segment_count(), 4);
        assert_eq!(cache.all(), None);
        for i in 0..4 {
            assert!(!cache.has(i));
            cache.store(i, [i as u8; DIGEST_SIZE]);
        }
        assert_eq!(cache.cached_count(), 4);
        let all = cache.all().unwrap();
        assert_eq!(all[2], [2u8; DIGEST_SIZE]);
        cache.invalidate_all();
        assert_eq!(cache.cached_count(), 0);
        assert_eq!(cache.all(), None);
        // Out-of-range store is a no-op, not a panic.
        cache.store(99, [0; DIGEST_SIZE]);
        assert_eq!(cache.cached_count(), 0);
    }

    #[test]
    fn cache_covers_partial_trailing_segment() {
        let cache = SegmentCache::new(64, 100);
        assert_eq!(cache.segment_count(), 2);
    }

    #[test]
    fn params_validation() {
        assert!(SegmentedParams::default().validate().is_ok());
        assert!(SegmentedParams { segment_len: 64 }.validate().is_ok());
        for bad in [0u32, 63, 4000, 1 << 20] {
            assert!(SegmentedParams { segment_len: bad }.validate().is_err());
        }
    }
}
